"""MAILBOX-PERF — the mailbox bench versus ``BENCH_mailbox.json``.

Two guards with different portability, mirroring the perf suite:

* The *simulated* side of every scenario (latency, throughput in
  simulated seconds, lifecycle counters, the read-set digest) is
  deterministic — it must match the committed blob bit-for-bit on any
  host.  A mismatch means the delivery lifecycle changed behaviour,
  not that the machine got slower.
* The *wall-clock* side (``mail_ops_per_sec``) moves with the host;
  the smoke gate allows a 25% regression against the committed number
  before failing, plus a deliberately loose absolute floor that
  catches catastrophic slowdowns (an accidental O(n^2), a debug path
  left on) on any machine.
"""

import json
from pathlib import Path

from repro.bench.mailbox_experiments import BASELINE, run_mailbox_bench

BENCH_MAILBOX = Path(__file__).resolve().parents[1] / "BENCH_mailbox.json"

_SIMULATED_KEYS = (
    "counts", "lifecycle", "read_digest", "received", "latency_mean_s",
    "latency_p95_s", "latency_max_s", "makespan_s", "delivered",
    "throughput_mail_per_s",
)


def _blob():
    if not hasattr(_blob, "cached"):
        _blob.cached = run_mailbox_bench(repeats=2)
    return _blob.cached


def test_committed_blob_matches_module_baseline():
    committed = json.loads(BENCH_MAILBOX.read_text())
    assert committed["baseline"] == BASELINE, (
        "BENCH_mailbox.json is out of sync with "
        "repro.bench.mailbox_experiments.BASELINE — regenerate it with "
        "`python -m repro bench mailbox --out BENCH_mailbox.json`"
    )


def test_simulated_results_are_bit_identical_to_committed(show):
    committed = json.loads(BENCH_MAILBOX.read_text())
    measured = _blob()["current"]["scenarios"]
    for name, pinned in committed["current"]["scenarios"].items():
        current = measured[name]
        for key in _SIMULATED_KEYS:
            assert current[key] == pinned[key], (
                f"scenario {name!r}: simulated {key} diverged from the "
                f"committed BENCH_mailbox.json ({current[key]!r} vs "
                f"{pinned[key]!r}) — the delivery lifecycle changed "
                "behaviour"
            )
        show(
            f"{name:<12} delivered={current['delivered']} "
            f"mean={current['latency_mean_s'] * 1e3:.3f}ms "
            f"p95={current['latency_p95_s'] * 1e3:.3f}ms "
            f"digest={current['read_digest'][:12]} (matches committed)"
        )


def test_mail_ops_within_25pct_of_committed(show):
    committed = json.loads(BENCH_MAILBOX.read_text())
    pinned = committed["baseline"]["mail_ops_per_sec"]
    measured = _blob()["current"]["mail_ops_per_sec"]
    show(
        f"mail ops: {measured:,.0f}/s wall "
        f"(committed {pinned:,.0f}/s, ratio {measured / pinned:.2f})"
    )
    assert measured >= 0.75 * pinned, (
        f"mailbox wall throughput regressed >25% against the committed "
        f"BENCH_mailbox.json baseline ({measured:,.0f}/s vs "
        f"{pinned:,.0f}/s)"
    )
    # Loose absolute floor: catches disasters regardless of host speed.
    assert measured > 1_000
