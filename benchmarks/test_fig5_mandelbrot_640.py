"""FIG5 — Figure 5: Mandelbrot at 640×640.

Same sweep as Figure 4 at four times the pixel count.  Larger blocks
shift the balance further toward MESSENGERS at every grid.

The default run trims the processor sweep to keep the suite quick;
``REPRO_FULL=1`` restores the paper's full 1–32 range.
"""

from conftest import full_scale

from repro.bench import PAPER_GRIDS, PAPER_PROCESSOR_COUNTS, run_figure

IMAGE = 640


def _sweep():
    processor_counts = (
        PAPER_PROCESSOR_COUNTS if full_scale() else (1, 2, 8, 32)
    )
    return run_figure(
        IMAGE, grids=PAPER_GRIDS, processor_counts=processor_counts
    )


def test_fig5_mandelbrot_640(measured):
    sweep = measured(_sweep)

    seq = sweep.sequential_seconds

    # Clear parallel speedup at every grid by 8 processors.
    for grid in PAPER_GRIDS:
        assert sweep.seconds(grid, "messengers", 8) < seq / 3
        assert sweep.seconds(grid, "pvm", 8) < seq

    # Coarse-grid MESSENGERS advantage grows with processors.
    ratio_2 = sweep.seconds(8, "pvm", 2) / sweep.seconds(
        8, "messengers", 2
    )
    ratio_32 = sweep.seconds(8, "pvm", 32) / sweep.seconds(
        8, "messengers", 32
    )
    assert ratio_32 > ratio_2
    assert ratio_32 > 2.0

    # At the finest grid and 2 processors the two are comparable,
    # PVM no worse than ~10% behind (paper: PVM slightly better).
    assert sweep.seconds(32, "pvm", 2) < 1.1 * sweep.seconds(
        32, "messengers", 2
    )
