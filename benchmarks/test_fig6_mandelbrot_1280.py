"""FIG6 — Figure 6: Mandelbrot at 1280×1280.

The largest image.  The paper: "When the granularity is sufficiently
large, Messengers performance surpasses that of PVM", with the most
favourable case (8×8 grid, 32 processors) measured separately in
Figure 7.

The default run trims the sweep (grids 8×8 and 32×32; 4 processor
counts); ``REPRO_FULL=1`` restores the paper's full ranges.
"""

from conftest import full_scale

from repro.bench import PAPER_GRIDS, PAPER_PROCESSOR_COUNTS, run_figure

IMAGE = 1280


def _sweep():
    if full_scale():
        grids = PAPER_GRIDS
        processor_counts = PAPER_PROCESSOR_COUNTS
    else:
        grids = (8, 32)
        processor_counts = (1, 2, 8, 32)
    return run_figure(IMAGE, grids=grids, processor_counts=processor_counts)


def test_fig6_mandelbrot_1280(measured):
    sweep = measured(_sweep)

    seq = sweep.sequential_seconds

    # Both systems achieve speedup over sequential C at 2 processors.
    assert sweep.seconds(8, "messengers", 2) < seq
    assert sweep.seconds(8, "pvm", 2) < seq

    # Coarse grain: MESSENGERS surpasses PVM at every processor count
    # beyond 2.
    for procs in (8, 32):
        assert sweep.seconds(8, "messengers", procs) < sweep.seconds(
            8, "pvm", procs
        )

    # Strong MESSENGERS scaling in the most favourable case.  (The
    # paper reports near-linear; our model's 3.3 MB result convergecast
    # over the shared 10 Mb/s wire floors the time at ~3 s, capping
    # efficiency at 32 processors around 40% — see EXPERIMENTS.md.)
    t32 = sweep.seconds(8, "messengers", 32)
    assert seq / t32 > 0.4 * 32
