"""Memory guard: idle logical nodes must stay near-zero-cost.

The scale layer's claim is that an *idle* LogicalNode — created, maybe
hopped through later, holding no variables and no links yet — costs a
fixed small number of bytes, so a 1M-node logical network fits in
hundreds of MB rather than GB.  ``__slots__`` plus lazy
``variables``/``links`` materialisation is what makes that true; this
guard pins it with ``tracemalloc`` at 100k nodes so an accidental
``__dict__`` regrowth or an eagerly-allocated per-node dict shows up as
a hard failure, not a slow drift.

The budget covers *everything* attributable to a node: the object
itself, its name string, and its share of all three LogicalNetwork
indices (global table, per-daemon shard, name bucket).  Measured
~570 bytes/node at introduction; the budget leaves ~25% headroom for
interpreter variance without letting a per-node dict (+~200 bytes)
sneak in.
"""

from __future__ import annotations

import tracemalloc

from repro.messengers.logical import LogicalNetwork

N_NODES = 100_000
N_DAEMONS = 32
BUDGET_BYTES_PER_NODE = 720


def test_idle_node_memory_budget():
    net = LogicalNetwork()
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        for index in range(N_NODES):
            net.create_node(f"n{index}", f"d{index % N_DAEMONS}")
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    per_node = (after - before) / N_NODES
    assert per_node <= BUDGET_BYTES_PER_NODE, (
        f"idle LogicalNode costs {per_node:.0f} bytes "
        f"(budget {BUDGET_BYTES_PER_NODE}) — did a per-node dict or "
        f"eager variables/links allocation creep back in?"
    )


def test_idle_nodes_stay_lazy():
    """Creating and indexing nodes must not materialise their dicts."""
    net = LogicalNetwork()
    node = net.create_node("lazy", "d0")
    # Queries that must not force materialisation.
    assert net.find_named("lazy") == [node]
    assert list(net.nodes_on("d0")) == [node]
    assert node.degree() == 0
    assert node.neighbors() == []
    assert node._variables is None and node._links is None
    # First real use materialises, once.
    node.variables["x"] = 1
    other = net.create_node("other", "d0")
    net.create_link("l", node, other)
    assert node._variables == {"x": 1}
    assert node.degree() == 1
