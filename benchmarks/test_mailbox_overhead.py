"""MAILBOX-GUARD — the mailbox layer's wall-clock overhead budget.

The armed-but-idle contract: a cluster built with
``ClusterConfig(mailbox=...)`` arms one parked delivery pump per daemon,
registers one failure listener, and opts the (otherwise unused) mailbox
port into reliable delivery — none of which may perturb a run that
never touches mail.  Delivery, replay, and consumers only cost when
mail actually flows, the same pay-only-when-perturbing rule the
observability, fault, and resilience layers follow.

Budget (wall clock, min-of-N so scheduler noise can only help): the
armed-but-idle cluster <= 2% over a cluster without the layer.
Simulated seconds must be *identical*.
"""

import time

import pytest

from repro import Cluster, ClusterConfig, MailboxConfig

pytestmark = pytest.mark.obs_guard

ROUNDS = 120
REPEATS = 3
STORM = "f() { create(ALL); hop(ll = $last); }"


def _timed(mailbox):
    config = ClusterConfig(
        n_hosts=4, mailbox=(MailboxConfig() if mailbox else None)
    )
    c = Cluster(config=config)
    start = time.perf_counter()
    for _ in range(ROUNDS):
        c.inject(STORM, daemon="host0")
        c.run_to_quiescence()
    return time.perf_counter() - start, c.now, c


@pytest.fixture(scope="module")
def timings():
    # Warm up once so import and compile costs land outside the race.
    _timed(False)
    walls: dict[str, float] = {}
    sims: dict[str, float] = {}
    # Interleave the modes so drift hits both equally; keep the minimum.
    for _ in range(REPEATS):
        for name, armed in (("off", False), ("armed", True)):
            wall, simulated, _ = _timed(armed)
            walls[name] = min(walls.get(name, float("inf")), wall)
            sims[name] = simulated
    return walls, sims


class TestMailboxOverhead:
    def test_idle_mailbox_does_not_perturb_timeline(self, timings):
        _, sims = timings
        assert sims["armed"] == sims["off"]

    def test_idle_mailbox_within_budget(self, timings):
        walls, _ = timings
        assert walls["armed"] <= walls["off"] * 1.02 + 0.010


class TestMailboxGating:
    def test_armed_but_idle_counts_nothing(self):
        _, _, c = _timed(True)
        # The storm never touched mail: every lifecycle counter is zero
        # and nothing ever entered the in-flight ledger.
        assert c.mail_stats == {}
        assert c.mail._pending == {}
        assert c.mail.latencies == []

    def test_unarmed_cluster_never_builds_the_layer(self):
        _, _, c = _timed(False)
        assert c._mail is None
        assert c.mail_stats == {}
