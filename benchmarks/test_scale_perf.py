"""SCALE-PERF — the scale sweep versus ``BENCH_scale.json``.

Two guards with different portability, same contract as the other perf
suites:

* The *simulated* side (final sim time, event count, remote-hop count
  at every grid point, identical under both schedulers) is
  deterministic — the truncated smoke grid must match the committed
  blob bit-for-bit on any host.  Any divergence means the scale path
  changed simulated behaviour, which the calendar queue / sharding /
  pooling work is contractually forbidden from doing.
* ``events_per_sec`` is wall-clock.  The regression gate is
  host-normalised so machine speed cancels out: the *scale degradation
  ratio* (largest smoke point's throughput over the smallest
  measurement-grade point's) may lose at most 25% versus the same
  ratio in the committed blob.  An accidental O(log n) or O(n) creep
  in the per-event path shows up exactly there.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.scale_experiments import (
    BASELINE,
    SMOKE_FACTORS,
    run_scale_bench,
)

BENCH_SCALE = Path(__file__).resolve().parents[1] / "BENCH_scale.json"

_SIMULATED_KEYS = ("daemons", "nodes", "messengers", "sim_seconds",
                   "events", "remote_hops")

#: The wall gate compares the throughput *ratio* largest/normaliser.
#: Factor 1 runs ~10 ms of wall — too noisy to normalise by — so the
#: mid smoke point is the normaliser and the largest the gated point.
GATE_FACTOR = SMOKE_FACTORS[-1]
NORM_FACTOR = SMOKE_FACTORS[-2]
ALLOWED_REGRESSION = 0.25


def _blob():
    if not hasattr(_blob, "cached"):
        # run_scale_bench itself asserts scheduler equivalence and
        # bit-identity against the module BASELINE at every point.
        _blob.cached = run_scale_bench(factors=SMOKE_FACTORS, repeats=2)
    return _blob.cached


def _point(report, factor):
    for point in report["points"]:
        if point["factor"] == factor:
            return point
    raise AssertionError(f"factor {factor} missing from scale report")


def test_committed_blob_matches_module_baseline():
    committed = json.loads(BENCH_SCALE.read_text())
    assert committed["baseline"] == BASELINE, (
        "BENCH_scale.json is out of sync with "
        "repro.bench.scale_experiments.BASELINE — regenerate it with "
        "`python -m repro bench scale --out BENCH_scale.json`"
    )


def test_committed_full_grid_met_the_2x_target():
    committed = json.loads(BENCH_SCALE.read_text())
    current = committed["current"]
    assert current["within_2x"] is True
    for kind, ratio in current["largest_vs_smallest_evps"].items():
        assert ratio >= 0.5, (
            f"committed blob shows {kind} throughput at 1000x fell "
            f"below half of small-scale ({ratio:.2f}x)"
        )


def test_smoke_grid_is_bit_identical_to_committed(show):
    committed = json.loads(BENCH_SCALE.read_text())
    for factor in SMOKE_FACTORS:
        pinned = _point(committed["current"], factor)
        current = _point(_blob()["current"], factor)
        for key in _SIMULATED_KEYS:
            assert current[key] == pinned[key], (
                f"factor {factor}: simulated {key} diverged from the "
                f"committed BENCH_scale.json ({current[key]!r} vs "
                f"{pinned[key]!r}) — the scale path changed behaviour"
            )
    show(f"smoke factors {SMOKE_FACTORS}: simulated results bit-identical")


def test_throughput_ratio_regression_gate(show):
    committed = json.loads(BENCH_SCALE.read_text())
    for kind in ("calendar", "heap"):
        pinned_ratio = (
            _point(committed["current"], GATE_FACTOR)["events_per_sec"][kind]
            / _point(committed["current"], NORM_FACTOR)["events_per_sec"][kind]
        )
        current_ratio = (
            _point(_blob()["current"], GATE_FACTOR)["events_per_sec"][kind]
            / _point(_blob()["current"], NORM_FACTOR)["events_per_sec"][kind]
        )
        floor = pinned_ratio * (1.0 - ALLOWED_REGRESSION)
        show(
            f"{kind}: evps ratio {GATE_FACTOR}x/{NORM_FACTOR}x = "
            f"{current_ratio:.3f} (committed {pinned_ratio:.3f}, "
            f"floor {floor:.3f})"
        )
        assert current_ratio >= floor, (
            f"{kind} scheduler: throughput at factor {GATE_FACTOR} "
            f"degraded {(1 - current_ratio / pinned_ratio) * 100:.0f}% "
            f"relative to factor {NORM_FACTOR} vs the committed blob — "
            f"per-event cost is no longer scale-independent"
        )
