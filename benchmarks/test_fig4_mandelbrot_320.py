"""FIG4 — Figure 4: Mandelbrot at 320×320.

Paper: MESSENGERS, PVM 3.3, and sequential C on 1–32 SPARCstation 5s;
region (−2.0, −1.2, 0.4, 1.2), 512 colors, grids 8×8 / 16×16 / 32×32.

Claims checked:
* both parallel systems beat sequential C from a few processors on;
* PVM is (slightly) better when the grid is finest and the processor
  count low; MESSENGERS overtakes as granularity grows.
"""

from repro.bench import (
    PAPER_GRIDS,
    PAPER_PROCESSOR_COUNTS,
    assert_roughly_monotone,
    run_figure,
)

IMAGE = 320


def _sweep():
    return run_figure(
        IMAGE,
        grids=PAPER_GRIDS,
        processor_counts=PAPER_PROCESSOR_COUNTS,
    )


def test_fig4_mandelbrot_320(measured):
    sweep = measured(_sweep)

    seq = sweep.sequential_seconds

    # Speedup over sequential C "in most cases, even when only two
    # processors are used" — at the coarse grid already at P=2.
    assert sweep.seconds(8, "messengers", 2) < seq
    assert sweep.seconds(8, "pvm", 2) < seq
    assert sweep.seconds(8, "messengers", 8) < seq / 3

    # PVM slightly better at the finest grid / low processor counts.
    assert sweep.seconds(32, "pvm", 2) < sweep.seconds(
        32, "messengers", 2
    )

    # MESSENGERS surpasses PVM once granularity is sufficiently large.
    for procs in (8, 16, 32):
        assert sweep.seconds(8, "messengers", procs) < sweep.seconds(
            8, "pvm", procs
        )

    # MESSENGERS keeps scaling out to 32 processors at the coarse grid.
    msgr_curve = [
        sweep.seconds(8, "messengers", p) for p in PAPER_PROCESSOR_COUNTS
    ]
    assert_roughly_monotone(
        msgr_curve, decreasing=True, label="messengers-8x8"
    )
