"""ABL-GVT — ablation: conservative versus optimistic virtual time.

§2.2: "the choice between the different implementation strategies
generally depends on the type of applications."  We run both standalone
kernels on three workloads with different causal structure and compare
their simulated completion times and rollback behaviour:

* **pipeline** — perfect lookahead: both engines should be close, the
  conservative one losing only its per-advance sync rounds;
* **skewed load** — one slow LP: optimism lets the fast LPs run ahead;
* **phold** — dense cross-traffic: optimism pays for itself with
  rollbacks but avoids a sync round per advance.

Final LP states are asserted identical between engines on every
workload (determinism of the reproduction).
"""

from repro.des import Simulator
from repro.gvt import (
    ConservativeKernel,
    TimeWarpKernel,
    phold,
    pipeline,
    skewed_load,
)
from repro.bench import format_table

WORKLOADS = {
    "pipeline": lambda: pipeline(stages=6, items=20),
    "skewed": lambda: skewed_load(n_lps=6, rounds=12, slow_factor=30),
    "phold": lambda: phold(n_lps=4, population=10, hops=25, seed=11),
}


def _canonical(states):
    out = {}
    for name, state in states.items():
        fixed = dict(state)
        if "jobs_seen" in fixed:
            fixed["jobs_seen"] = sorted(fixed["jobs_seen"])
        out[name] = fixed
    return out


def _run_all():
    rows = []
    for name, build in WORKLOADS.items():
        specs_c, initial_c = build()
        sim_c = Simulator()
        conservative = ConservativeKernel(sim_c, specs_c)
        for event in initial_c:
            conservative.post(event)
        stats_c = conservative.run()
        states_c = {s.name: dict(s.state) for s in specs_c}

        specs_o, initial_o = build()
        sim_o = Simulator()
        optimistic = TimeWarpKernel(sim_o, specs_o, gvt_interval_s=0.01)
        for event in initial_o:
            optimistic.post(event)
        stats_o = optimistic.run()
        states_o = {
            s.name: dict(optimistic.state_of(s.name)) for s in specs_o
        }

        assert _canonical(states_c) == _canonical(states_o), name
        rows.append(
            {
                "workload": name,
                "conservative_s": stats_c.wallclock_s,
                "optimistic_s": stats_o.wallclock_s,
                "rollbacks": stats_o.rollbacks,
                "efficiency": stats_o.efficiency,
                "sync_rounds": stats_c.gvt_advances,
            }
        )
    return rows


def test_ablation_gvt(benchmark, show):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    show(
        format_table(
            ["workload", "conservative_s", "optimistic_s", "rollbacks",
             "tw_efficiency", "sync_rounds"],
            [
                [r["workload"], r["conservative_s"], r["optimistic_s"],
                 r["rollbacks"], r["efficiency"], r["sync_rounds"]]
                for r in rows
            ],
            title="Conservative vs Time-Warp GVT (simulated seconds)",
        )
    )
    by_name = {r["workload"]: r for r in rows}

    # The conservative engine pays one sync round per GVT advance; on
    # the pipeline workload (many advances, perfect lookahead) the
    # optimistic engine avoids that cost.
    assert (
        by_name["pipeline"]["optimistic_s"]
        < by_name["pipeline"]["conservative_s"]
    )

    # Time-Warp efficiency stays sane everywhere (no rollback storms).
    for row in rows:
        assert row["efficiency"] > 0.5
