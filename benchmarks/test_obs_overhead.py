"""OBS-GUARD — the observability layer's wall-clock overhead budget.

The zero-cost-when-disabled contract: instrumented code checks
``sim.metrics is None`` (or a pre-resolved handle) at every site, so a
run without a registry must pay essentially nothing, and a run with a
registry enabled must stay within a few percent — otherwise every
benchmark in this suite would silently be measuring the instrumentation
instead of the simulation.

Budgets (wall clock, min-of-N so scheduler noise can only help):

* ``metrics=None`` (the default): <= 3% over baseline-equivalent —
  this is the exact code path every benchmark takes;
* ``MetricsRegistry()`` enabled: <= 5% over the no-registry run;
* ``MetricsRegistry(enabled=False)``: <= 3% (null-object path).

These are wall-clock-sensitive tests, hence the ``obs_guard`` marker;
``python -m repro stats``-style simulated-seconds results are asserted
identical across all three modes, which is the part that can never
flake.
"""

import time

import pytest

from repro.apps.mandelbrot.kernel import TaskGrid
from repro.apps.mandelbrot.messengers_app import run_messengers
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.obs_guard

GRID = TaskGrid(96, 4)
PROCS = 3
REPEATS = 3


def _timed(metrics):
    start = time.perf_counter()
    result = run_messengers(GRID, PROCS, metrics=metrics)
    return time.perf_counter() - start, result.seconds


@pytest.fixture(scope="module")
def timings():
    # Warm up once: the Mandelbrot kernel memoizes block computations,
    # so the first run pays numpy + compilation costs the rest don't.
    _timed(None)
    modes = {
        "off": lambda: None,
        "disabled": lambda: MetricsRegistry(enabled=False),
        "enabled": lambda: MetricsRegistry(),
    }
    walls: dict[str, float] = {}
    sims: dict[str, float] = {}
    # Interleave the modes so drift (thermal, other processes) hits all
    # three equally; keep the minimum per mode.
    for _ in range(REPEATS):
        for name, factory in modes.items():
            wall, simulated = _timed(factory())
            walls[name] = min(walls.get(name, float("inf")), wall)
            sims[name] = simulated
    return walls, sims


class TestObsOverhead:
    def test_results_identical_across_modes(self, timings):
        _, sims = timings
        assert sims["off"] == sims["disabled"] == sims["enabled"]

    def test_disabled_registry_is_free(self, timings):
        walls, _ = timings
        assert walls["disabled"] <= walls["off"] * 1.03 + 0.005

    def test_enabled_overhead_within_budget(self, timings):
        walls, _ = timings
        assert walls["enabled"] <= walls["off"] * 1.05 + 0.010


class TestObsOverheadOpcodeCounts:
    def test_opcode_counting_documented_as_costly(self):
        # Per-opcode counting hooks the VM's per-instruction loop; it
        # is opt-in precisely because it is allowed to cost more than
        # the 5% budget.  Assert the default stays off.
        registry = MetricsRegistry()
        assert registry.opcode_counts is False
        disabled = MetricsRegistry(enabled=False, opcode_counts=True)
        assert disabled.opcode_counts is False
