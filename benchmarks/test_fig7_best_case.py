"""FIG7 — Figure 7: the case most favourable to MESSENGERS.

Paper: the largest image (1280×1280) with the coarsest grid (8×8);
"Messengers is five times faster than PVM on 32 processors" and
"achieves an almost linear speedup on as many as 32 processors".

What we reproduce (and how it differs — see EXPERIMENTS.md):

* the *shape*: the MESSENGERS advantage is >1 everywhere and grows
  monotonically with processor count; MESSENGERS scales far beyond
  PVM's plateau;
* the *magnitude* depends on the compute-to-overhead ratio.  At
  1280×1280 our model's gap at 32 processors is ≈1.5× (PVM's spawn,
  copies and wire inefficiency amortize against 115 simulated seconds
  of compute).  The paper's full 5× is reproduced in the
  overhead-dominated regime (320×320, same grid), which this benchmark
  also measures.  The unmodeled remainder at 1280 is PVM's pathological
  behaviour under 32-way bursty traffic (collision collapse,
  retransmission storms) that a clean shared-medium model does not
  exhibit.
"""

from repro.bench import best_case_comparison, format_table

PROCS = (1, 2, 4, 8, 16, 32)


def _run():
    return {
        1280: best_case_comparison(1280, 8, PROCS),
        320: best_case_comparison(320, 8, PROCS),
    }


def _show_table(show, data, image):
    rows = data[image]["rows"]
    show(
        format_table(
            ["procs", "pvm_s", "messengers_s", "pvm_speedup",
             "messengers_speedup", "pvm/messengers"],
            [
                [r["procs"], r["pvm_s"], r["messengers_s"],
                 r["pvm_speedup"], r["messengers_speedup"], r["ratio"]]
                for r in rows
            ],
            title=(
                f"Figure 7: Mandelbrot {image}x{image}, 8x8 grid "
                f"(sequential = {data[image]['sequential_s']:.2f}s)"
            ),
        )
    )


def test_fig7_best_case(measured, show):
    data = measured(_run, render=None)
    _show_table(show, data, 1280)
    _show_table(show, data, 320)

    large = {r["procs"]: r for r in data[1280]["rows"]}
    small = {r["procs"]: r for r in data[320]["rows"]}

    # The MESSENGERS advantage grows monotonically with processors.
    ratios = [large[p]["ratio"] for p in PROCS]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert large[32]["ratio"] > 1.3

    # MESSENGERS scales well past PVM's plateau at 1280.
    assert large[32]["messengers_speedup"] > 1.4 * large[32]["pvm_speedup"]
    assert large[32]["messengers_speedup"] > 13

    # In the overhead-dominated regime the paper's ~5x gap appears.
    assert small[32]["ratio"] > 4.0
