"""RESILIENCE-GUARD — the resilience layer's wall-clock overhead budget.

The empty-policy-arms-nothing contract: a :class:`ResilienceSuite` built
from an empty :class:`ResiliencePolicy` registers no listeners, starts
no monitor processes, and sets no flow control — so attaching one to a
run must cost essentially nothing and must never perturb the simulated
timeline.  Detectors, supervision, and invariants only cost when armed,
which is the same pay-only-when-perturbing rule the observability and
fault layers follow.

Budget (wall clock, min-of-N so scheduler noise can only help): an
empty policy attached <= 2% over no policy at all.  Simulated seconds
must be *identical*.
"""

import time

import pytest

from repro.apps.mandelbrot.kernel import TaskGrid
from repro.apps.mandelbrot.messengers_app import run_messengers
from repro.apps.mandelbrot.pvm_app import run_pvm
from repro.des import Simulator
from repro.netsim import build_lan
from repro.resilience import ResiliencePolicy, ResilienceSuite

pytestmark = pytest.mark.obs_guard

GRID = TaskGrid(96, 4)
PROCS = 3
REPEATS = 3


def _timed(runner, policy):
    start = time.perf_counter()
    result = runner(GRID, PROCS, resilience=policy)
    return time.perf_counter() - start, result.seconds


@pytest.fixture(scope="module", params=[run_messengers, run_pvm],
                ids=["messengers", "pvm"])
def timings(request):
    runner = request.param
    # Warm up once: the Mandelbrot kernel memoizes block computations,
    # so the first run pays numpy + compilation costs the rest don't.
    _timed(runner, None)
    walls: dict[str, float] = {}
    sims: dict[str, float] = {}
    # Interleave the modes so drift hits both equally; keep the minimum.
    for _ in range(REPEATS):
        for name, policy in (("off", None), ("empty", ResiliencePolicy())):
            wall, simulated = _timed(runner, policy)
            walls[name] = min(walls.get(name, float("inf")), wall)
            sims[name] = simulated
    return walls, sims


class TestResilienceOverhead:
    def test_empty_policy_does_not_perturb_timeline(self, timings):
        _, sims = timings
        assert sims["empty"] == sims["off"]

    def test_empty_policy_within_budget(self, timings):
        walls, _ = timings
        assert walls["empty"] <= walls["off"] * 1.02 + 0.010


class TestResilienceGating:
    def test_empty_policy_arms_nothing(self):
        sim = Simulator()
        network = build_lan(sim, 2)
        before = (
            len(network._crash_listeners),
            len(network._failure_listeners),
            len(network._restart_listeners),
            len(sim._queue),
        )
        suite = ResilienceSuite(network, ResiliencePolicy())
        after = (
            len(network._crash_listeners),
            len(network._failure_listeners),
            len(network._restart_listeners),
            len(sim._queue),
        )
        assert suite.policy.empty
        assert suite.detector is None
        assert suite.supervisor is None
        assert suite.monitor is None
        assert after == before  # no listeners, no processes started
        assert network._flow_credits is None
        assert not network.detection_enabled

    def test_empty_suite_stats_are_minimal(self):
        sim = Simulator()
        network = build_lan(sim, 2)
        suite = ResilienceSuite(network, ResiliencePolicy())
        assert suite.stats() == {"empty": True}
