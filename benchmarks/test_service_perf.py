"""SERVICE-PERF — the service bench versus ``BENCH_service.json``.

Two guards with different portability, same contract as the other
perf suites:

* The *simulated* side (goodput, outcome counts, latency percentiles,
  the event-trace digest of every scenario, the schedule-search
  verdict) is deterministic — it must match the committed blob
  bit-for-bit on any host.  The quick gate replays only the
  below-saturation offered-load point (one run per system, well under
  a second); the full-grid comparison rides along with the wall gate.
* ``requests_per_sec`` is wall-clock; the smoke gate allows a 25%
  regression against the committed number before failing, plus a
  loose absolute floor that catches catastrophic slowdowns (an
  accidental O(n^2), a debug path left on) on any machine.
"""

import json
from pathlib import Path

from repro.bench.service_experiments import (
    BASELINE,
    BELOW_RPS,
    run_service_bench,
    run_service_scenario,
)

BENCH_SERVICE = Path(__file__).resolve().parents[1] / "BENCH_service.json"

_SIMULATED_KEYS = ("goodput_rps", "latency_ms", "outcomes", "trace_digest")


def _blob():
    if not hasattr(_blob, "cached"):
        _blob.cached = run_service_bench(repeats=2)
    return _blob.cached


def test_committed_blob_matches_module_baseline():
    committed = json.loads(BENCH_SERVICE.read_text())
    assert committed["baseline"] == BASELINE, (
        "BENCH_service.json is out of sync with "
        "repro.bench.service_experiments.BASELINE — regenerate it with "
        "`python -m repro bench service --out BENCH_service.json`"
    )


def test_below_saturation_point_is_bit_identical_to_committed(show):
    # The cheap trace-divergence gate: one below-saturation run per
    # system, compared field-for-field (including the whole-run event
    # digest) against the committed blob.
    committed = json.loads(BENCH_SERVICE.read_text())
    for system in ("messengers", "pvm"):
        pinned = committed["current"]["scenarios"][f"{system}/below"]
        current = run_service_scenario(system, BELOW_RPS)
        for key in _SIMULATED_KEYS:
            assert current[key] == pinned[key], (
                f"{system}/below: simulated {key} diverged from the "
                f"committed BENCH_service.json ({current[key]!r} vs "
                f"{pinned[key]!r}) — the service path changed behaviour"
            )
        show(
            f"{system:<11} goodput={current['goodput_rps']:.1f} rps "
            f"p99={current['latency_ms']['p99']:.1f}ms "
            f"digest={current['trace_digest'][:12]} (matches committed)"
        )


def test_full_grid_stays_identical_and_search_stays_clean(show):
    blob = _blob()
    assert blob["vs_baseline"]["simulated_identical"], (
        "service bench simulated results diverged from BASELINE — "
        "compare against BENCH_service.json to see which scenario moved"
    )
    search = blob["current"]["search"]
    assert search["clean"], search["violations"]
    assert search["schedules_run"] >= 100
    for system, verdict in sorted(blob["current"]["verdicts"].items()):
        assert verdict["stable_brownout"], (system, verdict)
        assert verdict["collapse_demonstrated"], (system, verdict)
        show(
            f"{system:<11} peak={verdict['peak_goodput_rps']:.1f} rps "
            f"brownout={verdict['brownout_fraction']:.2f} "
            f"collapse={verdict['collapse_fraction']:.2f}"
        )


def test_wall_throughput_within_25pct_of_committed(show):
    committed = json.loads(BENCH_SERVICE.read_text())
    pinned = committed["baseline"]["requests_per_sec"]
    measured = _blob()["current"]["requests_per_sec"]
    show(
        f"service requests: {measured:,.0f}/s wall "
        f"(committed {pinned:,.0f}/s, ratio {measured / pinned:.2f})"
    )
    assert measured >= 0.75 * pinned, (
        f"service wall throughput regressed >25% against the committed "
        f"BENCH_service.json baseline ({measured:,.0f}/s vs "
        f"{pinned:,.0f}/s)"
    )
    # Loose absolute floor: catches disasters regardless of host speed.
    assert measured > 500
