"""CONVERSATIONS-PERF — the conversations bench versus
``BENCH_conversations.json``.

Two guards with different portability, mirroring the mailbox suite:

* The *simulated* side of every scenario (chain outcomes, per-side
  goodput during the partition, convergence time after heal, the
  lifecycle and read-set digests, the anti-entropy counters) is
  deterministic — it must match the committed blob bit-for-bit on any
  host.  A mismatch means replication or the delivery lifecycle
  changed behaviour, not that the machine got slower.
* The *wall-clock* side (``conv_ops_per_sec``) moves with the host;
  the smoke gate allows a 25% regression against the committed number
  before failing, plus a deliberately loose absolute floor that
  catches catastrophic slowdowns on any machine.
"""

import json
from pathlib import Path

from repro.bench.conversations_experiments import (
    BASELINE,
    run_conversations_bench,
)

BENCH_CONVERSATIONS = (
    Path(__file__).resolve().parents[1] / "BENCH_conversations.json"
)

_SIMULATED_KEYS = (
    "chains", "compensated_work_items", "delivered", "read_digest",
    "lifecycle_digest", "replicas_converged", "makespan_s",
    "mail_counts", "replication", "pending_at_quiescence",
)
_PARTITION_KEYS = ("goodput_during_partition", "convergence_time_s")


def _blob():
    if not hasattr(_blob, "cached"):
        _blob.cached = run_conversations_bench(repeats=2)
    return _blob.cached


def test_committed_blob_matches_module_baseline():
    committed = json.loads(BENCH_CONVERSATIONS.read_text())
    assert committed["baseline"] == BASELINE, (
        "BENCH_conversations.json is out of sync with "
        "repro.bench.conversations_experiments.BASELINE — regenerate "
        "it with `python -m repro bench conversations "
        "--out BENCH_conversations.json`"
    )


def test_simulated_results_are_bit_identical_to_committed(show):
    committed = json.loads(BENCH_CONVERSATIONS.read_text())
    measured = _blob()["current"]["scenarios"]
    for name, pinned in committed["current"]["scenarios"].items():
        current = measured[name]
        keys = _SIMULATED_KEYS + (
            _PARTITION_KEYS if name == "partition" else ()
        )
        for key in keys:
            assert current[key] == pinned[key], (
                f"scenario {name!r}: simulated {key} diverged from the "
                f"committed BENCH_conversations.json ({current[key]!r} "
                f"vs {pinned[key]!r}) — replication changed behaviour"
            )
        show(
            f"{name:<13} chains={current['chains']} "
            f"delivered={current['delivered']} "
            f"digest={current['lifecycle_digest'][:12]} "
            "(matches committed)"
        )


def test_partition_scenario_shows_both_sides_accepting(show):
    committed = json.loads(BENCH_CONVERSATIONS.read_text())
    partition = committed["current"]["scenarios"]["partition"]
    goodput = partition["goodput_during_partition"]
    show(
        f"goodput during partition: side a={goodput['a']} "
        f"side b={goodput['b']}; convergence "
        f"{partition['convergence_time_s'] * 1e3:.1f}ms after heal"
    )
    # Both partition sides kept accepting quorum-acked mail, replicas
    # converged within a bounded window after heal.
    assert goodput["a"] > 0 and goodput["b"] > 0
    assert 0.0 < partition["convergence_time_s"] < 0.5
    assert partition["replicas_converged"]


def test_conv_ops_within_25pct_of_committed(show):
    committed = json.loads(BENCH_CONVERSATIONS.read_text())
    pinned = committed["baseline"]["conv_ops_per_sec"]
    measured = _blob()["current"]["conv_ops_per_sec"]
    show(
        f"conversation ops: {measured:,.0f}/s wall "
        f"(committed {pinned:,.0f}/s, ratio {measured / pinned:.2f})"
    )
    assert measured >= 0.75 * pinned, (
        f"conversations wall throughput regressed >25% against the "
        f"committed BENCH_conversations.json baseline "
        f"({measured:,.0f}/s vs {pinned:,.0f}/s)"
    )
    # Loose absolute floor: catches disasters regardless of host speed.
    assert measured > 500
