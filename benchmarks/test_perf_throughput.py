"""PERF — simulator throughput: the fast-path speedup assertions.

Three measurements (no pytest-benchmark dependency — the CI perf-smoke
job runs this file with plain pytest):

* the live DES kernel versus the frozen pre-optimisation kernel
  (:mod:`repro.perf.slowkernel`), raced back-to-back in one process —
  the tentpole ``>=2x`` events/sec claim;
* the absolute throughput suite (events/sec, opcodes/sec, packets/sec)
  with generous sanity floors;
* the regression guard against the committed ``BENCH_perf.json``.
  Raw events/sec is host-dependent, so the guard compares the
  *host-independent* number: the live-vs-reference speedup ratio now
  versus when the baseline was committed.  A >25% drop in that ratio
  means the kernel itself lost events/sec, not that CI got a slower
  machine;
* the closures-backend leg: the MCL basic-block closures compiler
  raced against the int-opcode interpreter (floor + the same 25%
  ratio-regression guard).  Its bit-identity gate lives in
  ``tests/test_perf_determinism.py`` and runs in the same CI job.
"""

import json
from functools import lru_cache
from pathlib import Path

from repro.perf import (
    des_speedup_vs_reference,
    throughput_suite,
    vm_backend_speedup,
)

BENCH_PERF = Path(__file__).resolve().parents[1] / "BENCH_perf.json"


@lru_cache(maxsize=None)
def _speedup(workload: str) -> dict:
    return des_speedup_vs_reference(n=60_000, rounds=25, workload=workload)


@lru_cache(maxsize=None)
def _backend_speedup() -> dict:
    return vm_backend_speedup(n=20_000, rounds=15)


def test_des_events_per_sec_at_least_2x(show):
    result = _speedup("chain")
    show(
        f"DES chain: live {result['live_per_sec']:,.0f} ev/s vs "
        f"reference {result['ref_per_sec']:,.0f} ev/s -> "
        f"{result['speedup']:.2f}x"
    )
    assert result["speedup"] >= 2.0


def test_des_process_lifecycle_speedup(show):
    # Spawn/park/complete is where the messenger layers spend their
    # time; the fast path must win there too, not just on the pure
    # event loop.
    result = _speedup("mixed")
    show(
        f"DES mixed: live {result['live_per_sec']:,.0f} ev/s vs "
        f"reference {result['ref_per_sec']:,.0f} ev/s -> "
        f"{result['speedup']:.2f}x"
    )
    assert result["speedup"] >= 1.6


def test_throughput_suite_floors(show):
    suite = throughput_suite(scale=0.25, repeats=3)
    for name, probe in sorted(suite.items()):
        show(f"{name:<14} {probe['per_sec']:>12,.0f}/s  (n={probe['n']})")
    # Deliberately loose floors — they catch catastrophic regressions
    # (an accidental O(n^2) or a debug path left on), not host speed.
    assert suite["des_events"]["per_sec"] > 200_000
    assert suite["store_events"]["per_sec"] > 150_000
    assert suite["vm_opcodes"]["per_sec"] > 1_000_000
    assert suite["net_packets"]["per_sec"] > 5_000


def test_no_regression_vs_committed_baseline(show):
    committed = json.loads(BENCH_PERF.read_text())
    recorded = committed["current"]["speedup_vs_reference"]
    for workload in ("chain", "mixed"):
        measured = _speedup(workload)["speedup"]
        pinned = recorded[workload]["speedup"]
        show(
            f"{workload}: speedup vs reference {measured:.2f}x "
            f"(committed {pinned:.2f}x)"
        )
        assert measured >= 0.75 * pinned, (
            f"{workload}: events/sec regressed >25% against the "
            f"committed BENCH_perf.json baseline "
            f"({measured:.2f}x vs {pinned:.2f}x)"
        )


def test_closures_backend_speedup_floor(show):
    # The closures-backend leg of the perf-smoke job.  The acceptance
    # target (>=3x, recorded in BENCH_perf.json) is measured on a quiet
    # host; the CI floor is deliberately looser, the same margin policy
    # the DES gates use.
    result = _backend_speedup()
    show(
        f"MCL closures: {result['closures_per_sec']:,.0f} op/s vs "
        f"interp {result['interp_per_sec']:,.0f} op/s -> "
        f"{result['speedup']:.2f}x"
    )
    assert result["speedup"] >= 2.0


def test_closures_no_regression_vs_committed_baseline(show):
    committed = json.loads(BENCH_PERF.read_text())
    pinned = committed["current"]["backends"]["closures_speedup"]
    measured = _backend_speedup()["speedup"]
    show(
        f"closures: speedup vs interp {measured:.2f}x "
        f"(committed {pinned:.2f}x)"
    )
    assert measured >= 0.75 * pinned, (
        "closures backend: opcodes/sec regressed >25% against the "
        f"committed BENCH_perf.json baseline "
        f"({measured:.2f}x vs {pinned:.2f}x)"
    )
