"""FIG12B — Figure 12(b): block matmul on a 3×3 grid of 170 MHz hosts.

Paper claims:
* "a block size of 20 on the 9-processor configuration" is where
  MESSENGERS starts beating PVM — i.e. the crossover falls *earlier*
  than the 2×2 configuration's;
* at 1500×1500 (block 500) the MESSENGERS speedup is 5.8× over the
  block-oriented sequential algorithm and 6.7× over the naive one.

The default sweep stops at block 300 (block 500 means 1500×1500 numpy
matmuls per point); ``REPRO_FULL=1`` runs the paper's full range.
"""

from conftest import full_scale

from repro.bench import (
    FIG12B_CPU_SCALE,
    PAPER_BLOCK_SIZES_3X3,
    assert_faster_beyond,
    crossover_interval,
    run_block_size_sweep,
)


def _sweep():
    block_sizes = (
        PAPER_BLOCK_SIZES_3X3 if full_scale() else (10, 20, 50, 100, 300)
    )
    return run_block_size_sweep(
        m=3, block_sizes=block_sizes, cpu_scale=FIG12B_CPU_SCALE
    )


def test_fig12b_matmul_3x3(measured, show):
    sweep = measured(_sweep)

    xs = sweep.block_sizes
    msgr = sweep.series("messengers")
    pvm = sweep.series("pvm")

    # PVM cheaper at the smallest blocks; crossover exists.
    assert pvm[0] < msgr[0]
    interval = crossover_interval(xs, pvm, msgr)
    assert interval is not None, "no PVM/MESSENGERS crossover found"
    show(f"measured 3x3 crossover interval: blocks {interval}")

    # MESSENGERS clearly ahead by block 100.
    assert_faster_beyond(
        xs, msgr, pvm, threshold_x=100, tolerance=1.0, label="fig12b"
    )

    # Paper: the 3x3 crossover falls earlier than the 2x2 one; checked
    # cross-panel in EXPERIMENTS.md (both panels' intervals recorded).
    largest = xs[-1]
    blocked = sweep.seconds(largest, "blocked")
    naive = sweep.seconds(largest, "naive")
    msgr_t = sweep.seconds(largest, "messengers")
    show(
        f"speedup at block {largest}: {blocked / msgr_t:.2f}x over "
        f"blocked, {naive / msgr_t:.2f}x over naive "
        "(paper: 5.8x / 6.7x at block 500)"
    )
    assert blocked / msgr_t > 2.0
    assert naive / msgr_t > 2.5
