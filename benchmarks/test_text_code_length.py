"""TXT-CODE — §3.1.1 / §3.2.1: the MESSENGERS programs are shorter.

Paper: "The Messengers program is considerably shorter … despite the
fact that the message-passing version is only written in pseudo code".

Figures 2/3 and 9/11 are *runnable programs* in this repository, so the
claim is directly measurable: we count effective lines (non-blank,
non-comment) of the MESSENGERS scripts versus the message-passing task
bodies for both applications.
"""

import inspect

from repro.apps.mandelbrot import MANAGER_WORKER_SCRIPT
from repro.apps.mandelbrot import pvm_app as mandelbrot_pvm
from repro.apps.matmul import DISTRIBUTE_A_SCRIPT, ROTATE_B_SCRIPT
from repro.apps.matmul import pvm_app as matmul_pvm
from repro.bench import format_table


def effective_mcl_lines(source: str) -> int:
    """Non-blank, non-comment MCL lines."""
    count = 0
    for raw in source.splitlines():
        line = raw.strip()
        if not line or line.startswith("//") or line.startswith("/*"):
            continue
        count += 1
    return count


def effective_python_lines(function) -> int:
    """Non-blank, non-comment, non-docstring lines of a behavior.

    Parses the source, drops the docstring, re-renders, and counts
    non-blank lines — immune to comment/docstring formatting.
    """
    import ast
    import textwrap

    source = textwrap.dedent(inspect.getsource(function))
    tree = ast.parse(source)
    function_def = tree.body[0]
    if (
        function_def.body
        and isinstance(function_def.body[0], ast.Expr)
        and isinstance(function_def.body[0].value, ast.Constant)
        and isinstance(function_def.body[0].value.value, str)
    ):
        function_def.body = function_def.body[1:]
    rendered = ast.unparse(tree)
    return sum(1 for line in rendered.splitlines() if line.strip())


def _measure():
    return {
        "mandelbrot": {
            "messengers": effective_mcl_lines(MANAGER_WORKER_SCRIPT),
            "message_passing": (
                effective_python_lines(mandelbrot_pvm._manager)
                + effective_python_lines(mandelbrot_pvm._worker)
            ),
        },
        "matmul": {
            "messengers": (
                effective_mcl_lines(DISTRIBUTE_A_SCRIPT)
                + effective_mcl_lines(ROTATE_B_SCRIPT)
            ),
            "message_passing": effective_python_lines(matmul_pvm._worker),
        },
    }


def test_text_code_length(benchmark, show):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)
    show(
        format_table(
            ["application", "messengers_lines", "message_passing_lines"],
            [
                [app, d["messengers"], d["message_passing"]]
                for app, d in data.items()
            ],
            title="Program length comparison (effective lines)",
        )
    )
    for app, d in data.items():
        assert d["messengers"] < d["message_passing"], app
