"""FIG12A — Figure 12(a): block matmul on a 2×2 grid of 110 MHz hosts.

Paper claims:
* "Messengers achieves speedup over PVM beyond a block size of
  approximately 150 on the 4-processor configuration";
* at 1000×1000 (block 500), MESSENGERS speedup is 3.7× over the
  block-oriented sequential algorithm and 4.5× over the naive one;
* parallel versions show significant speedup over both sequential
  algorithms, super-linear over naive in some cases.

We assert the qualitative shape: PVM cheaper at the small-block end, a
crossover, and MESSENGERS at least at parity beyond it; measured
crossover position and speedups are recorded in EXPERIMENTS.md.
"""

from conftest import full_scale

from repro.bench import (
    FIG12A_CPU_SCALE,
    PAPER_BLOCK_SIZES_2X2,
    assert_faster_beyond,
    crossover_interval,
    run_block_size_sweep,
)


def _sweep():
    block_sizes = (
        PAPER_BLOCK_SIZES_2X2 if full_scale() else (25, 50, 100, 200, 500)
    )
    return run_block_size_sweep(
        m=2, block_sizes=block_sizes, cpu_scale=FIG12A_CPU_SCALE
    )


def test_fig12a_matmul_2x2(measured, show):
    sweep = measured(_sweep)

    xs = sweep.block_sizes
    msgr = sweep.series("messengers")
    pvm = sweep.series("pvm")

    # PVM is cheaper at the smallest block size...
    assert pvm[0] < msgr[0]
    # ...and a crossover exists.
    interval = crossover_interval(xs, pvm, msgr)
    assert interval is not None, "no PVM/MESSENGERS crossover found"
    show(f"measured 2x2 crossover interval: blocks {interval}")

    # Beyond block 100 MESSENGERS is at least at parity (5% tolerance).
    assert_faster_beyond(
        xs, msgr, pvm, threshold_x=100, tolerance=1.05, label="fig12a"
    )

    # Parallel speedups at the largest block (paper: 3.7x / 4.5x).
    largest = xs[-1]
    blocked = sweep.seconds(largest, "blocked")
    naive = sweep.seconds(largest, "naive")
    msgr_t = sweep.seconds(largest, "messengers")
    assert blocked / msgr_t > 2.0
    assert naive / msgr_t > 2.5
    # Super-linear over naive is possible with 4 processors thanks to
    # caching; require at least clearly super-blocked scaling.
    show(
        f"speedup at block {largest}: {blocked / msgr_t:.2f}x over "
        f"blocked, {naive / msgr_t:.2f}x over naive "
        "(paper: 3.7x / 4.5x at block 500)"
    )
