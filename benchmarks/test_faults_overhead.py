"""FAULTS-GUARD — the fault layer's wall-clock overhead budget.

The pay-only-when-perturbing contract: an attached but *empty*
:class:`~repro.faults.FaultPlan` must cost essentially nothing.  A plan
with no loss rates and no partitions never arms the reliable-delivery
machinery (no sequence numbers, no acks, no retransmit timers), and a
plan with no crash events never arms hop-boundary checkpointing — so
the only residual work is one ``faults is None`` style check per
packet, exactly like the observability layer's ``sim.metrics is None``.

Budget (wall clock, min-of-N so scheduler noise can only help): an
empty plan attached <= 2% over no plan at all.  Simulated seconds must
be *identical* — an empty plan may never perturb the timeline.
"""

import time

import pytest

from repro.apps.mandelbrot.kernel import TaskGrid
from repro.apps.mandelbrot.messengers_app import run_messengers
from repro.apps.mandelbrot.pvm_app import run_pvm
from repro.faults import FaultPlan

pytestmark = pytest.mark.obs_guard

GRID = TaskGrid(96, 4)
PROCS = 3
REPEATS = 3


def _timed(runner, plan):
    start = time.perf_counter()
    if plan is None:
        result = runner(GRID, PROCS)
    else:
        result = runner(GRID, PROCS, faults=plan, seed=7)
    return time.perf_counter() - start, result.seconds


@pytest.fixture(scope="module", params=[run_messengers, run_pvm],
                ids=["messengers", "pvm"])
def timings(request):
    runner = request.param
    # Warm up once: the Mandelbrot kernel memoizes block computations,
    # so the first run pays numpy + compilation costs the rest don't.
    _timed(runner, None)
    walls: dict[str, float] = {}
    sims: dict[str, float] = {}
    # Interleave the modes so drift hits both equally; keep the minimum.
    for _ in range(REPEATS):
        for name, plan in (("off", None), ("empty", FaultPlan())):
            wall, simulated = _timed(runner, plan)
            walls[name] = min(walls.get(name, float("inf")), wall)
            sims[name] = simulated
    return walls, sims


class TestFaultsOverhead:
    def test_empty_plan_does_not_perturb_timeline(self, timings):
        _, sims = timings
        assert sims["empty"] == sims["off"]

    def test_empty_plan_within_budget(self, timings):
        walls, _ = timings
        assert walls["empty"] <= walls["off"] * 1.02 + 0.010


class TestFaultsGating:
    def test_empty_plan_arms_nothing(self):
        plan = FaultPlan()
        assert plan.empty
        assert not plan.lossy
        assert not plan.can_crash

    def test_loss_only_plan_does_not_checkpoint(self):
        plan = FaultPlan().drop(0.05)
        assert plan.lossy
        assert not plan.can_crash
