"""TXT-BLK — §3.2 in-text claim: blocking speeds up sequential matmul.

Paper: "on a 110 MHz SPARCstation 5 with 32MB of memory, partitioning a
1500×1500 matrix into 9 blocks of size 500×500 results in a speedup of
roughly 13%."

The cache model was calibrated against exactly this claim; the
benchmark checks the closed-form cost ratio at the paper's parameters
and verifies the same effect end-to-end (real arithmetic + simulated
time) at a size the suite can afford.
"""

import numpy as np

from repro.apps.matmul import make_matrices, run_blocked, run_naive
from repro.bench import blocking_speedup_model, format_table


def _model_points():
    return [blocking_speedup_model(n=n, m=3) for n in (600, 900, 1500)]


def test_text_blocking_speedup(benchmark, show):
    points = benchmark.pedantic(_model_points, rounds=1, iterations=1)
    show(
        format_table(
            ["n", "block", "naive_s", "blocked_s", "speedup_%"],
            [
                [p["n"], p["block"], p["naive_s"], p["blocked_s"],
                 p["speedup_pct"]]
                for p in points
            ],
            title="Sequential blocking speedup (cost model)",
        )
    )

    paper_point = points[-1]
    assert paper_point["n"] == 1500
    # Paper: "roughly 13%".
    assert 8.0 < paper_point["speedup_pct"] < 18.0

    # End-to-end check at an affordable size: same direction.
    a, b = make_matrices(900)
    naive = run_naive(a, b)
    blocked = run_blocked(a, b, 3)
    assert np.allclose(naive.c, blocked.c)
    assert blocked.seconds < naive.seconds
