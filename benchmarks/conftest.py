"""Shared configuration for the benchmark suite.

Each benchmark module regenerates one paper artifact (see DESIGN.md §5).
Benchmarks run each sweep exactly once (``rounds=1``): the *measured*
quantity of interest is simulated seconds inside the sweep, which is
deterministic; pytest-benchmark's wall-clock numbers just record how
long the simulation harness takes.

Set ``REPRO_FULL=1`` to run every figure at the paper's full parameter
ranges (the 640/1280 images default to a reduced processor sweep to
keep the default suite quick).
"""

import os

import pytest


def full_scale() -> bool:
    """True when the paper's complete parameter ranges are requested."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def show():
    """Print a regenerated table/figure under ``-s``."""

    def _show(text: str) -> None:
        print()
        print(text)

    return _show


@pytest.fixture
def measured(benchmark, show):
    """Run a sweep exactly once under pytest-benchmark and display it.

    Every figure benchmark shares the same shape — build the sweep
    once (``rounds=1``: the interesting quantity is deterministic
    simulated time, pytest-benchmark only records harness wall-clock),
    render it for ``-s``, hand it to the assertions.  ``render`` maps
    the sweep to the text to display; pass ``None`` for artifacts that
    print their own tables.
    """

    def _measured(sweep_fn, render=lambda s: s.as_figure().render()):
        sweep = benchmark.pedantic(sweep_fn, rounds=1, iterations=1)
        if render is not None:
            show(render(sweep))
        return sweep

    return _measured
