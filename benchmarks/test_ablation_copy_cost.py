"""ABL-COPY — ablation: the zero-copy argument, isolated.

§2.1 attributes part of MESSENGERS' advantage to hops not copying data
into/out of message buffers: "This extra copying can result in
performance degradation in message-passing systems."

We sweep the message-passing pack/unpack cost from zero (a hypothetical
zero-copy PVM) upward on two workloads:

* **matmul 2×2, block 300** — 720 kB blocks whose unpack sits on the
  critical path before every multiply: copies translate directly into
  execution time;
* **Mandelbrot 320, 8×8, 8 procs** — copies hide in manager idle time,
  demonstrating that the copy argument only bites when communication
  is on the critical path (a nuance the paper's §3.2 granularity
  discussion implies).

MESSENGERS times are asserted bit-identical across the sweep: hops
never touch the copy-cost knobs.
"""

from repro.apps.mandelbrot import TaskGrid, run_messengers as mandel_msgr
from repro.apps.mandelbrot import run_pvm as mandel_pvm
from repro.apps.matmul import make_matrices
from repro.apps.matmul import run_messengers as matmul_msgr
from repro.apps.matmul import run_pvm as matmul_pvm
from repro.bench import format_table
from repro.netsim import CostModel

COPY_COSTS_NS = (0, 50, 100, 200, 400)


def _sweep():
    a, b = make_matrices(600)
    grid = TaskGrid(320, 8)
    rows = []
    for copy_ns in COPY_COSTS_NS:
        costs = CostModel(
            pack_cost_per_byte_s=copy_ns * 1e-9,
            unpack_cost_per_byte_s=copy_ns * 1e-9,
        )
        rows.append(
            {
                "copy_ns_per_byte": copy_ns,
                "matmul_pvm_s": matmul_pvm(a, b, 2, costs).seconds,
                "matmul_msgr_s": matmul_msgr(a, b, 2, costs).seconds,
                "mandel_pvm_s": mandel_pvm(grid, 8, costs).seconds,
                "mandel_msgr_s": mandel_msgr(grid, 8, costs).seconds,
            }
        )
    return rows


def test_ablation_copy_cost(benchmark, show):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    show(
        format_table(
            ["copy_ns/B", "matmul_pvm", "matmul_msgr", "mandel_pvm",
             "mandel_msgr"],
            [
                [r["copy_ns_per_byte"], r["matmul_pvm_s"],
                 r["matmul_msgr_s"], r["mandel_pvm_s"],
                 r["mandel_msgr_s"]]
                for r in rows
            ],
            title=(
                "Copy-cost ablation (matmul 600x600 on 2x2; "
                "Mandelbrot 320 8x8 on 8 procs)"
            ),
        )
    )

    # MESSENGERS is exactly copy-cost-independent on both workloads.
    for key in ("matmul_msgr_s", "mandel_msgr_s"):
        values = [r[key] for r in rows]
        assert max(values) - min(values) < 1e-9, key

    # On the copy-bound workload, PVM degrades monotonically and
    # substantially: 400 ns/B costs it >5% end to end.
    matmul_pvm_times = [r["matmul_pvm_s"] for r in rows]
    assert all(
        b >= a for a, b in zip(matmul_pvm_times, matmul_pvm_times[1:])
    )
    assert matmul_pvm_times[-1] > matmul_pvm_times[0] * 1.05

    # On the compute-bound workload the same copies hide in idle time.
    mandel_pvm_times = [r["mandel_pvm_s"] for r in rows]
    assert mandel_pvm_times[-1] < mandel_pvm_times[0] * 1.05
