"""Individual-based simulation: an ecosystem of Messengers.

The paper's introduction singles out "individual-based systems,
distributed interactive simulations" as applications that want a
persistent logical network (§1) and system-level virtual time (§2.2).
This example runs one: grazing creatures on a toroidal world, where

* the world is logical nodes (grass lives in node variables),
* every creature is a Messenger carrying its energy in messenger
  variables, moving with directed hops,
* GVT keeps all creatures in per-tick lockstep across daemons,
* thriving creatures *inject new Messengers* at runtime.

Run:  python examples/swarm_simulation.py [ticks]
"""

import sys

from repro.apps.swarm import CREATURE_SCRIPT, run_swarm


def grass_bar(level: float, maximum: float = 10.0) -> str:
    filled = int(round(level / maximum * 8))
    return "▓" * filled + "░" * (8 - filled)


def main() -> None:
    ticks = int(sys.argv[1]) if len(sys.argv) > 1 else 25

    print("The creature behavior (one Messenger per creature):")
    print(CREATURE_SCRIPT)

    result = run_swarm(
        rows=6, cols=6, n_hosts=4,
        population=8, ticks=ticks,
        initial_energy=5.0, bite=3.0, metabolism=2.0,
        repro_threshold=14.0, seed=3,
    )

    print(f"after {result.ticks} virtual ticks "
          f"({result.gvt_rounds} GVT rounds, "
          f"{result.seconds:.3f} simulated seconds):")
    print(f"  founders   {result.initial_population}")
    print(f"  born       {result.born}")
    print(f"  starved    {len(result.starved)} "
          f"{[f'#{i}@t{t}' for i, t in result.starved]}")
    print(f"  survivors  {result.final_population}")
    if result.survivors:
        best = max(result.survivors, key=result.survivors.get)
        print(f"  fattest    #{best} "
              f"(energy {result.survivors[best]:.1f})")

    print()
    print("grazing pressure (visits per cell):")
    rows = sorted({name.split(",")[0] for name in result.visits})
    for r in rows:
        cells = [
            result.visits[f"{r},{c}"]
            for c in range(len(rows))
        ]
        print("  " + "  ".join(f"{v:3d}" for v in cells))
    print()
    print(f"grass remaining: {result.total_grass_left:.0f} / "
          f"{6 * 6 * 10} units")


if __name__ == "__main__":
    main()
