"""Quickstart: your first Messengers on a simulated cluster.

Builds a 4-workstation LAN with the one-call facade, and injects two
Messengers:

1. ``hello`` — clones itself onto every neighbouring daemon with
   ``create(ALL)`` and reports where it landed;
2. ``collector`` — injected *afterwards*, it navigates the logical
   network the first Messenger left behind (the network is persistent!)
   and gathers the greetings into the central node's variables.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    # 1. The whole platform in one call: four simulated workstations on
    #    one shared Ethernet, a daemon on each, an `init` logical node
    #    per daemon, and a native-function registry.  (The long form —
    #    Simulator + build_lan + MessengersSystem — still works and is
    #    what the benchmarks use.)
    c = repro.cluster(4)

    # 2. Native-mode functions are plain Python callables.
    @c.natives.register
    def greet(env):
        env.node_vars["greeting"] = f"hello from {env.daemon.name}"
        return 0

    @c.natives.register
    def collect(env, text):
        env.node_vars.setdefault("greetings", []).append(text)
        return 0

    # 3. Inject a Messenger written in MCL (the paper's C-subset).
    #    create(ALL) replicates it into a new logical node on every
    #    neighbouring daemon, connected back to init by an unnamed link.
    c.inject(
        """
        hello() {
            create(ALL);
            greet();
            M_log("arrived at", $address);
        }
        """,
        daemon="host0",
    )
    c.run_to_quiescence()

    print("--- hello messengers ---")
    for line in c.messengers.log_lines:
        print(line)

    # 4. The logical network persists after its creators terminated.
    #    A second Messenger walks the same links: out over every spoke
    #    (replicating 3-ways), then home along $last to deliver.
    c.inject(
        """
        collector() {
            hop();                  /* fan out over all links */
            msg = node_get("greeting", "");
            hop(ll = $last);        /* back to init */
            collect(msg);
        }
        """,
        daemon="host0",
    )
    c.run_to_quiescence()

    central = c.daemon("host0").init_node
    print("--- collected at", central.display_name, "on host0 ---")
    for text in sorted(central.variables["greetings"]):
        print(" ", text)

    print(f"--- {c.logical.node_count()} logical nodes, "
          f"simulated time {c.now * 1e3:.2f} ms ---")


if __name__ == "__main__":
    main()
