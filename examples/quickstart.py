"""Quickstart: your first Messengers on a simulated cluster.

Builds a 4-workstation LAN, starts the MESSENGERS system on it, and
injects two Messengers:

1. ``hello`` — clones itself onto every neighbouring daemon with
   ``create(ALL)`` and reports where it landed;
2. ``collector`` — injected *afterwards*, it navigates the logical
   network the first Messenger left behind (the network is persistent!)
   and gathers the greetings into the central node's variables.

Run:  python examples/quickstart.py
"""

from repro.des import Simulator
from repro.netsim import build_lan
from repro.messengers import MessengersSystem


def main() -> None:
    # 1. The physical substrate: four hosts on one shared Ethernet.
    sim = Simulator()
    network = build_lan(sim, 4)

    # 2. The MESSENGERS runtime: one daemon per host, an `init` logical
    #    node on each, and a native-function registry.
    system = MessengersSystem(network)

    # 3. Native-mode functions are plain Python callables.
    @system.natives.register
    def greet(env):
        env.node_vars["greeting"] = f"hello from {env.daemon.name}"
        return 0

    @system.natives.register
    def collect(env, text):
        env.node_vars.setdefault("greetings", []).append(text)
        return 0

    # 4. Inject a Messenger written in MCL (the paper's C-subset).
    #    create(ALL) replicates it into a new logical node on every
    #    neighbouring daemon, connected back to init by an unnamed link.
    system.inject(
        """
        hello() {
            create(ALL);
            greet();
            M_log("arrived at", $address);
        }
        """,
        daemon="host0",
    )
    system.run_to_quiescence()

    print("--- hello messengers ---")
    for line in system.log_lines:
        print(line)

    # 5. The logical network persists after its creators terminated.
    #    A second Messenger walks the same links: out over every spoke
    #    (replicating 3-ways), then home along $last to deliver.
    system.inject(
        """
        collector() {
            hop();                  /* fan out over all links */
            msg = node_get("greeting", "");
            hop(ll = $last);        /* back to init */
            collect(msg);
        }
        """,
        daemon="host0",
    )
    system.run_to_quiescence()

    central = system.daemon("host0").init_node
    print("--- collected at", central.display_name, "on host0 ---")
    for text in sorted(central.variables["greetings"]):
        print(" ", text)

    print(f"--- {system.logical.node_count()} logical nodes, "
          f"simulated time {sim.now * 1e3:.2f} ms ---")


if __name__ == "__main__":
    main()
