"""Messages versus Messengers on the paper's first application (§3.1).

Computes the same Mandelbrot image three ways — sequential, PVM-style
manager/worker (Figure 2), and the MESSENGERS smart-worker script
(Figure 3) — verifies the images are identical, prints the simulated
execution times, and renders the set as ASCII art.

Run:  python examples/mandelbrot_comparison.py [image_size] [workers]
"""

import sys

import numpy as np

from repro.apps.mandelbrot import (
    MANAGER_WORKER_SCRIPT,
    TaskGrid,
    run_messengers,
    run_pvm,
    run_sequential,
)

ASCII_RAMP = " .:-=+*#%@"


def render_ascii(image: "np.ndarray", width: int = 72) -> str:
    """Downsample the color image to terminal art."""
    step = max(1, image.shape[1] // width)
    rows = []
    for r in range(0, image.shape[0], step * 2):  # chars are ~2x tall
        row = []
        for c in range(0, image.shape[1], step):
            color = image[r, c]
            # color 0 = inside the set (never escaped) = densest glyph
            if color == 0:
                row.append(ASCII_RAMP[-1])
            else:
                shade = min(int(color), len(ASCII_RAMP) - 2)
                row.append(ASCII_RAMP[shade % (len(ASCII_RAMP) - 1)])
        rows.append("".join(row))
    return "\n".join(rows)


def main() -> None:
    image_size = int(sys.argv[1]) if len(sys.argv) > 1 else 160
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    grid = TaskGrid(image_size, 8)

    print(f"Mandelbrot {image_size}x{image_size}, 8x8 task grid, "
          f"{workers} workers")
    print()
    print("The Figure-3 Messenger script driving the workers:")
    print(MANAGER_WORKER_SCRIPT)

    sequential = run_sequential(grid)
    pvm = run_pvm(grid, workers)
    messengers = run_messengers(grid, workers)

    assert np.array_equal(sequential.image, pvm.image)
    assert np.array_equal(sequential.image, messengers.image)
    print("all three implementations produced identical images\n")

    print(f"{'system':<22}{'simulated seconds':>18}{'speedup':>10}")
    for name, seconds in (
        ("sequential C", sequential.seconds),
        ("PVM manager/worker", pvm.seconds),
        ("MESSENGERS", messengers.seconds),
    ):
        print(f"{name:<22}{seconds:>18.3f}"
              f"{sequential.seconds / seconds:>9.2f}x")

    print()
    print(f"MESSENGERS moved {messengers.hops_remote} Messengers between "
          f"daemons and interpreted {messengers.instructions} bytecode "
          "instructions;")
    print(f"PVM exchanged {pvm.messages} messages.")
    print()
    print(render_ascii(sequential.image))


if __name__ == "__main__":
    main()
