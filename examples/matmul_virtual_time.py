"""Temporal coordination with Global Virtual Time (§2.2 + §3.2).

Runs the paper's data-centric matrix multiplication: the Figure-10
logical grid, one ``distribute_A`` and one ``rotate_B`` Messenger per
node (Figure 11), synchronized only through virtual time — A-blocks
move at integer ticks, multiplications happen at half ticks.

The example traces each virtual-time tick so you can watch the two
Messenger families alternate, then compares against PVM and the
sequential baselines.

Run:  python examples/matmul_virtual_time.py [n] [m]
"""

import sys

import numpy as np

from repro.apps.matmul import (
    DISTRIBUTE_A_SCRIPT,
    ROTATE_B_SCRIPT,
    make_matrices,
    run_blocked,
    run_messengers,
    run_naive,
    run_pvm,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 240
    m = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    a, b = make_matrices(n)
    reference = a @ b

    print(f"{n}x{n} matrices on an {m}x{m} processor grid "
          f"(blocks of {n // m}x{n // m})\n")
    print("distribute_A (wakes at integer virtual ticks):")
    print(DISTRIBUTE_A_SCRIPT)
    print("rotate_B (multiplies at half ticks, then shifts its block "
          "up the column ring):")
    print(ROTATE_B_SCRIPT)

    results = {
        "naive sequential": run_naive(a, b),
        "blocked sequential": run_blocked(a, b, m),
        "PVM (Figure 9)": run_pvm(a, b, m),
        "MESSENGERS (Figure 11)": run_messengers(a, b, m),
    }
    for name, result in results.items():
        assert np.allclose(result.c, reference), name
    print("all four implementations agree with numpy's A @ B\n")

    baseline = results["naive sequential"].seconds
    print(f"{'system':<24}{'simulated seconds':>18}{'vs naive':>10}")
    for name, result in results.items():
        print(f"{name:<24}{result.seconds:>18.3f}"
              f"{baseline / result.seconds:>9.2f}x")

    messengers = results["MESSENGERS (Figure 11)"]
    print()
    print(f"virtual time advanced through {messengers.gvt_rounds} "
          "conservative GVT rounds")
    print(f"{messengers.hops_remote} block-carrying hops crossed the "
          "network (zero marshalling copies)")


if __name__ == "__main__":
    main()
