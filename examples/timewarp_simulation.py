"""Conservative versus optimistic virtual time (§2.2).

The paper: "MESSENGERS supports both a conservative and an optimistic
approach … the choice between the different implementation strategies
generally depends on the type of applications."

This example runs the same three logical-process workloads on both
standalone kernels (:mod:`repro.gvt`), verifies that the final states
are identical — rollback and anti-messengers preserve causality — and
shows where each strategy wins.

Run:  python examples/timewarp_simulation.py
"""

from repro.des import Simulator
from repro.gvt import (
    ConservativeKernel,
    TimeWarpKernel,
    phold,
    pipeline,
    skewed_load,
)

WORKLOADS = [
    ("pipeline (perfect lookahead)",
     lambda: pipeline(stages=6, items=25)),
    ("skewed load (one slow LP)",
     lambda: skewed_load(n_lps=6, rounds=15, slow_factor=25)),
    ("PHOLD (dense cross-traffic)",
     lambda: phold(n_lps=5, population=12, hops=30, seed=7)),
]


def canonical(states):
    out = {}
    for name, state in states.items():
        fixed = dict(state)
        if "jobs_seen" in fixed:
            fixed["jobs_seen"] = sorted(fixed["jobs_seen"])
        out[name] = fixed
    return out


def main() -> None:
    print(f"{'workload':<32}{'conservative':>14}{'time warp':>12}"
          f"{'rollbacks':>11}{'efficiency':>12}")
    for label, build in WORKLOADS:
        specs, initial = build()
        kernel_c = ConservativeKernel(Simulator(), specs)
        for event in initial:
            kernel_c.post(event)
        stats_c = kernel_c.run()
        states_c = canonical({s.name: dict(s.state) for s in specs})

        specs, initial = build()
        kernel_o = TimeWarpKernel(Simulator(), specs, gvt_interval_s=0.01)
        for event in initial:
            kernel_o.post(event)
        stats_o = kernel_o.run()
        states_o = canonical(
            {s.name: dict(kernel_o.state_of(s.name)) for s in specs}
        )

        assert states_c == states_o, f"{label}: engines disagree!"
        print(f"{label:<32}{stats_c.wallclock_s:>13.4f}s"
              f"{stats_o.wallclock_s:>11.4f}s"
              f"{stats_o.rollbacks:>11d}"
              f"{stats_o.efficiency:>11.0%}")

    print()
    print("Both engines committed identical final states on every "
          "workload:")
    print("Time Warp's straggler rollbacks and anti-messengers preserve "
          "exactly the event order")
    print("the conservative engine enforces up front — at very "
          "different synchronization costs.")


if __name__ == "__main__":
    main()
