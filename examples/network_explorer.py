"""Navigational programming on an irregular logical network.

The paper's §1 argues the logical network is an "exogenous skeleton":
a persistent structure that computations navigate.  This example builds
an irregular campus-like topology from a net_builder topology file,
then solves two classic distributed problems purely with navigation:

1. **flooding exploration** — a Messenger replicates over every link,
   marking nodes with their first-visit distance (a BFS tree in node
   variables, no central coordinator);
2. **leader election by rendezvous** — each site injects a candidate
   Messenger that virtual-hops to a well-known node; non-preemptive
   scheduling makes the election critical-section-free.

Run:  python examples/network_explorer.py
"""

import repro
from repro.messengers import build_from_text

CAMPUS = """
# an irregular campus network: three buildings, bridged
node gateway @ host0
node lab-a    @ host1
node lab-b    @ host1
node office-1 @ host2
node office-2 @ host2
node server   @ host3
node archive  @ host3

link gateway -- lab-a    : fiber
link gateway -- office-1 : fiber
link gateway -- server   : fiber
link lab-a   -- lab-b    : lan
link office-1 -- office-2 : lan
link server  -- archive  : lan
link lab-b   -- server   : bridge
link office-2 -- server  : bridge
"""

# After hop() each replica resumes at the top of the loop, one step
# deeper in the flood (hop replicates over *all* links; replicas landing
# on already-visited nodes return and cease).
EXPLORER_FULL = """
explore(dist) {
    while (1) {
        prev = node_get("distance", -1);
        if (prev != -1 && prev <= dist) {
            return;
        }
        node_set("distance", dist);
        record($node, dist);
        dist = dist + 1;
        hop();
    }
}
"""

CANDIDATE = """
candidate(site_id) {
    hop(ln = "gateway"; ll = virtual);
    best = node_get("leader", -1);
    if (best == -1 || site_id < best) {
        node_set("leader", site_id);
    }
}
"""


def main() -> None:
    # The facade owns the simulator and LAN; the net_builder service
    # grafts the campus topology onto its MESSENGERS runtime.
    c = repro.cluster(4)
    nodes = build_from_text(c.messengers, CAMPUS)

    distances = {}

    @c.natives.register
    def record(env, node_name, dist):
        distances[node_name] = min(
            dist, distances.get(node_name, float("inf"))
        )
        return 0

    print("topology: 7 nodes / 8 links over 4 hosts")
    print()

    # -- flooding exploration -------------------------------------------
    c.inject(EXPLORER_FULL, args=(0,), daemon="host0", node="gateway")
    c.run_to_quiescence()

    print("breadth-first distances from the gateway "
          "(computed by replicating Messengers):")
    for name in sorted(nodes):
        print(f"  {name:<10} distance {nodes[name].variables['distance']}")

    # -- leader election ---------------------------------------------------
    for site_id, (name, node) in enumerate(sorted(nodes.items())):
        if name == "gateway":
            continue
        c.inject(
            CANDIDATE, args=(site_id,), daemon=node.daemon, node=name
        )
    c.run_to_quiescence()
    print()
    print(f"leader elected at the gateway rendezvous: site "
          f"{nodes['gateway'].variables['leader']}")

    # -- inspect with the shell -----------------------------------------------
    shell = c.shell()
    print()
    print("shell> stats")
    print(shell.execute("stats"))
    print(f"(simulated time {c.now * 1e3:.2f} ms)")


if __name__ == "__main__":
    main()
