"""Driving MESSENGERS from the command shell (§1: "injected by the user
from the outside (the command shell) at runtime").

Replays a scripted interactive session against a live system: choosing
injection daemons, injecting inline Messengers, inspecting the logical
network, Messenger population, per-daemon statistics and virtual time.

Run:  python examples/shell_session.py
Pass ``-i`` for a real interactive prompt afterwards.
"""

import sys

from repro.des import Simulator
from repro.netsim import build_lan
from repro.messengers import MessengersSystem, Shell

SESSION = """
help
nodes
inject! { builder() { create(ln = "work-a", "work-b"; ll = "spoke", "spoke"); } }
run
nodes
links
at host2
inject! { pinger(n) { for (k = 0; k < n; k++) { hop(ln = init; ll = virtual); hop(ln = "work-a"; ll = virtual); } } } 3
messengers
run
stats
inject! { sleeper() { M_sched_time_abs(10); M_log("woke at gvt", $gvt); } }
gvt
run
gvt
"""


def main() -> None:
    sim = Simulator()
    system = MessengersSystem(build_lan(sim, 3))
    shell = Shell(system)

    for line in SESSION.strip().splitlines():
        print(f"messengers[{shell.current_daemon}]> {line}")
        output = shell.execute(line)
        if output:
            print(output)
        print()

    for line in system.log_lines:
        print("log:", line)

    if "-i" in sys.argv:  # pragma: no cover - interactive
        shell.repl()


if __name__ == "__main__":
    main()
