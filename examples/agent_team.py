"""An agent team coordinating over durable mailboxes.

A lead node farms four tasks out to two workers by mail; each worker's
poll-mode consumer mails a report back to the lead.  Every mail walks
the full delivery lifecycle (sent -> delivered -> seen -> processed ->
read) exactly once, and the whole exchange is deterministic simulated
time — all through the typed-config facade, in under twenty lines.

Run:  python examples/agent_team.py
"""

import repro


def main() -> None:
    c = repro.cluster(config=repro.ClusterConfig(
        n_hosts=3, mailbox=repro.MailboxConfig(poll_interval_s=0.01)))
    lead = c.add_node("lead", daemon="host0")
    reports = []
    c.consumer(lead, lambda m: reports.append(f"{m.sender}: {m.body}"))
    for i in (1, 2):
        worker = c.add_node(f"worker{i}", daemon=f"host{i}")
        c.consumer(worker, lambda m, w=worker: c.send_mail(
            lead, f"done: {m.body}", subject=m.subject, frm=w))
    for n, task in enumerate(("parse", "index", "rank", "report")):
        c.send_mail(f"worker{n % 2 + 1}", task, subject=f"task-{n}")
    c.run_to_quiescence()
    for line in sorted(reports):
        print("lead <-", line)
    print(f"{len(reports)} reports, {c.mail_stats['read']} mails read, "
          f"{c.now * 1e3:.1f} ms simulated")


if __name__ == "__main__":
    main()
