"""Tests for MCL subscripting (arrays/dicts) and container natives."""

import pytest

from repro.des import Simulator
from repro.netsim import build_lan
from repro.messengers import MessengersSystem
from repro.messengers.mcl import (
    DoneCommand,
    Frame,
    MclRuntimeError,
    compile_source,
    run,
)
from repro.messengers.natives import NativeRegistry


def execute(source, mvars=None):
    registry = NativeRegistry()
    program = compile_source(source)
    frame = Frame(program)
    variables = mvars if mvars is not None else {}

    def call(name, args):
        return registry.lookup(name)(None, *args)

    command = run(frame, variables, {}, lambda n: None, call)
    assert isinstance(command, DoneCommand)
    return variables


class TestIndexing:
    def test_read_and_write(self):
        mvars = execute(
            """
            f() {
                arr = list_new(4, 0);
                arr[0] = 10;
                arr[3] = 40;
                a = arr[0];
                b = arr[3];
                n = len(arr);
            }
            """
        )
        assert mvars["arr"] == [10, 0, 0, 40]
        assert (mvars["a"], mvars["b"], mvars["n"]) == (10, 40, 4)

    def test_augmented_index_assignment(self):
        mvars = execute(
            """
            f() {
                arr = list_new(3, 5);
                arr[1] += 2;
                arr[2] *= 3;
                arr[0] -= 1;
            }
            """
        )
        assert mvars["arr"] == [4, 7, 15]

    def test_loop_building_histogram(self):
        mvars = execute(
            """
            f() {
                hist = list_new(4, 0);
                for (k = 0; k < 12; k++) {
                    hist[k mod 4] += 1;
                }
            }
            """
        )
        assert mvars["hist"] == [3, 3, 3, 3]

    def test_nested_subscripts(self):
        mvars = execute(
            """
            f(matrix) {
                value = matrix[1][0];
            }
            """,
            mvars={"matrix": [[1, 2], [3, 4]]},
        )
        assert mvars["value"] == 3

    def test_float_index_coerced(self):
        mvars = execute(
            """
            f() {
                arr = list_new(4, 9);
                half = 4 / 2;
                x = arr[half];
            }
            """
        )
        assert mvars["x"] == 9

    def test_index_in_expression_context(self):
        mvars = execute(
            """
            f(data) {
                total = data[0] + data[1] * 2;
            }
            """,
            mvars={"data": [3, 4]},
        )
        assert mvars["total"] == 11

    def test_out_of_range_raises(self):
        with pytest.raises(MclRuntimeError):
            execute("f() { arr = list_new(2, 0); x = arr[5]; }")

    def test_store_out_of_range_raises(self):
        with pytest.raises(MclRuntimeError):
            execute("f() { arr = list_new(2, 0); arr[5] = 1; }")

    def test_append_native(self):
        mvars = execute(
            """
            f() {
                arr = list_new(0, 0);
                append(arr, 7);
                append(arr, 8);
                n = len(arr);
                last = arr[n - 1];
            }
            """
        )
        assert mvars["arr"] == [7, 8]
        assert mvars["last"] == 8

    def test_string_subscript(self):
        mvars = execute('f() { s = "hop"; c = s[1]; }')
        assert mvars["c"] == "o"


class TestIndexingAcrossHops:
    def test_array_travels_and_diverges(self):
        """Messenger variables holding lists deep-copy on replication."""
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 3))
        seen = []

        @system.natives.register
        def report(env, arr):
            seen.append(list(arr))
            return 0

        system.inject(
            """
            f() {
                arr = list_new(2, 0);
                arr[0] = 1;
                create(ALL);
                if ($address == "host1") arr[1] = 11;
                if ($address == "host2") arr[1] = 22;
                report(arr);
            }
            """,
            daemon="host0",
        )
        system.run_to_quiescence()
        assert sorted(seen) == [[1, 11], [1, 22]]

    def test_node_variable_array_shared(self):
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 1))

        system.inject(
            """
            w1() { node log; log = list_new(0, 0); append(log, 1); }
            """
        )
        system.run_to_quiescence()
        system.inject("w2() { node log; append(log, 2); }")
        system.run_to_quiescence()
        init = system.daemon("host0").init_node
        assert init.variables["log"] == [1, 2]
