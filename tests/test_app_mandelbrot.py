"""Tests for the Mandelbrot application (all three implementations)."""

import numpy as np
import pytest

from repro.apps.mandelbrot import (
    PAPER_COLORS,
    PAPER_REGION,
    TaskGrid,
    block_flops,
    compute_block,
    run_messengers,
    run_pvm,
    run_sequential,
)


@pytest.fixture(scope="module")
def small_grid():
    return TaskGrid(48, 4)


@pytest.fixture(scope="module")
def sequential(small_grid):
    return run_sequential(small_grid)


class TestTaskGrid:
    def test_paper_parameters(self):
        grid = TaskGrid(320, 8)
        assert grid.region == PAPER_REGION
        assert grid.colors == PAPER_COLORS
        assert len(grid) == 64

    def test_blocks_tile_image_exactly(self):
        grid = TaskGrid(100, 8)  # non-divisible: uneven blocks
        coverage = np.zeros((100, 100), dtype=int)
        for block in grid:
            coverage[
                block.row0 : block.row0 + block.rows,
                block.col0 : block.col0 + block.cols,
            ] += 1
        assert (coverage == 1).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskGrid(0, 4)
        with pytest.raises(ValueError):
            TaskGrid(8, 16)

    def test_assemble_rejects_missing_blocks(self, small_grid):
        with pytest.raises(ValueError, match="missing"):
            small_grid.assemble({0: np.zeros((12, 12), dtype=np.int16)})

    def test_result_bytes(self):
        grid = TaskGrid(64, 4)
        assert grid.block(0).result_bytes == 16 * 16 * 2


class TestKernel:
    def test_known_points(self, small_grid):
        image = run_sequential(small_grid).image
        # Center of the set (around -0.5+0i) never escapes -> color 0.
        # Map x=-0.5, y=0 to pixel coordinates.
        x_min, y_min, x_max, y_max = small_grid.region
        col = int((-0.5 - x_min) / (x_max - x_min) * 48)
        row = int((0.0 - y_min) / (y_max - y_min) * 48)
        assert image[row, col] == 0
        # Far corner escapes immediately -> small color.
        assert 0 < image[0, 0] <= 3

    def test_iterations_positive(self, small_grid):
        _colors, iterations = compute_block(
            small_grid, small_grid.block(0)
        )
        assert iterations > 0
        assert block_flops(iterations) == iterations * 10.0

    def test_work_is_nonuniform(self, small_grid):
        """The paper's motivation: per-block work varies wildly."""
        work = [
            compute_block(small_grid, block)[1] for block in small_grid
        ]
        assert max(work) > 3 * min(work)


class TestImplementationEquivalence:
    def test_pvm_matches_sequential(self, small_grid, sequential):
        result = run_pvm(small_grid, 3)
        assert np.array_equal(result.image, sequential.image)

    def test_messengers_matches_sequential(self, small_grid, sequential):
        result = run_messengers(small_grid, 3)
        assert np.array_equal(result.image, sequential.image)

    def test_single_worker(self, small_grid, sequential):
        assert np.array_equal(
            run_pvm(small_grid, 1).image, sequential.image
        )
        assert np.array_equal(
            run_messengers(small_grid, 1).image, sequential.image
        )

    def test_more_workers_than_tasks(self, sequential, small_grid):
        """Workers beyond the task count idle but nothing breaks."""
        grid = TaskGrid(48, 2)  # only 4 tasks
        seq = run_sequential(grid)
        assert np.array_equal(run_pvm(grid, 6).image, seq.image)
        assert np.array_equal(run_messengers(grid, 6).image, seq.image)

    def test_worker_count_validation(self, small_grid):
        with pytest.raises(ValueError):
            run_pvm(small_grid, 0)
        with pytest.raises(ValueError):
            run_messengers(small_grid, 0)


class TestPerformanceShape:
    """Coarse shape checks (benchmarks measure the full figures)."""

    def test_parallel_beats_sequential(self, small_grid, sequential):
        msgr = run_messengers(small_grid, 4)
        assert msgr.seconds < sequential.seconds

    def test_messengers_scales(self, small_grid):
        two = run_messengers(small_grid, 2).seconds
        four = run_messengers(small_grid, 4).seconds
        assert four < two

    def test_hops_accounted(self, small_grid):
        result = run_messengers(small_grid, 2)
        # per task: 2 remote hops; plus create(ALL) + initial hop back
        assert result.hops_remote >= 2 * len(small_grid)
        assert result.instructions > 0

    def test_pvm_message_count(self, small_grid):
        result = run_pvm(small_grid, 2)
        # 2 messages per task plus initial priming
        assert result.messages >= 2 * len(small_grid)
