"""Resilience layer: detectors, supervision, invariants, search.

Covers ``repro.resilience`` end to end: detection-driven crash recovery
(no oracle) staying bit-identical on both systems, the
false-suspicion-is-harmless contract, restart policies including
escalation, credit-based transport backpressure, the invariant monitor
failing fast inside the DES with an event excerpt, and the schedule
searcher finding and shrinking violations deterministically.
"""

import hashlib
from types import SimpleNamespace

import pytest

from repro.apps.mandelbrot.kernel import TaskGrid
from repro.apps.mandelbrot.messengers_app import run_messengers
from repro.apps.mandelbrot.pvm_app import run_pvm
from repro.des import SimOverloadError, SimulationError, Simulator
from repro.faults import FaultInjector, FaultPlan
from repro.netsim import Packet, build_lan
from repro.obs import MetricsRegistry
from repro.resilience import (
    CheckpointIntegrity,
    GIVE_UP,
    GvtMonotonic,
    InvariantViolation,
    LedgerIdentity,
    NoLostWork,
    ResiliencePolicy,
    ResilienceSuite,
    RestartPolicy,
    ScheduleSearcher,
    SupervisionEscalation,
    WorkLedger,
)

GRID = TaskGrid(64, 4)
PROCS = 3


def _image_hash(result):
    return hashlib.sha256(result.image.tobytes()).hexdigest()


def _crash_plan(clean_seconds):
    return FaultPlan().crash("host2", at=0.5 * clean_seconds)


class TestResiliencePolicy:
    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(detector="telepathy")

    def test_empty_policy_is_empty(self):
        assert ResiliencePolicy().empty
        assert not ResiliencePolicy(detector="heartbeat").empty
        assert not ResiliencePolicy(flow_credits=4).empty
        assert not ResiliencePolicy(supervision=RestartPolicy()).empty

    def test_detector_parameter_validation(self):
        sim = Simulator()
        network = build_lan(sim, 2)
        with pytest.raises(ValueError):
            ResilienceSuite(network, ResiliencePolicy(
                detector="heartbeat", heartbeat_misses=0,
            ))
        with pytest.raises(ValueError):
            ResilienceSuite(network, ResiliencePolicy(
                detector="phi", max_silence_s=0.01,
                heartbeat_interval_s=0.02,
            ))
        with pytest.raises(ValueError):
            ResilienceSuite(network, ResiliencePolicy(
                detector="phi", phi_threshold=-1.0,
            ))


class TestDetectionRecovery:
    """The tentpole property: recovery driven by *detection*, no oracle,
    still bit-identical to the fault-free run."""

    def test_messengers_recovers_via_heartbeat(self):
        clean = run_messengers(GRID, PROCS)
        policy = ResiliencePolicy(detector="heartbeat")
        faulty = run_messengers(
            GRID, PROCS, faults=_crash_plan(clean.seconds), seed=7,
            resilience=policy,
        )
        assert _image_hash(faulty) == _image_hash(clean)
        stats = faulty.stats["resilience"]
        assert stats["detections"] == 1
        assert stats["false_suspicions"] == 0
        assert 0.0 < stats["detection_latency_mean_s"] <= stats["horizon_s"]
        assert stats["undetected_crashes"] == []

    def test_pvm_recovers_via_phi(self):
        clean = run_pvm(GRID, PROCS)
        policy = ResiliencePolicy(detector="phi")
        faulty = run_pvm(
            GRID, PROCS, faults=_crash_plan(clean.seconds), seed=7,
            resilience=policy,
        )
        assert _image_hash(faulty) == _image_hash(clean)
        stats = faulty.stats["resilience"]
        assert stats["detections"] == 1
        assert stats["undetected_crashes"] == []

    def test_detection_recovery_is_deterministic(self):
        clean = run_messengers(GRID, PROCS)
        plan = _crash_plan(clean.seconds)
        policy = ResiliencePolicy(detector="heartbeat")
        runs = [
            run_messengers(GRID, PROCS, faults=plan, seed=7,
                           resilience=policy)
            for _ in range(2)
        ]
        assert runs[0].seconds == runs[1].seconds
        assert _image_hash(runs[0]) == _image_hash(runs[1])
        assert runs[0].stats["resilience"] == runs[1].stats["resilience"]

    def test_detection_slower_than_oracle_never_wrong(self):
        # The detector changes *when* recovery starts, never the result.
        clean = run_pvm(GRID, PROCS)
        plan = _crash_plan(clean.seconds)
        oracle = run_pvm(GRID, PROCS, faults=plan, seed=7)
        detected = run_pvm(
            GRID, PROCS, faults=plan, seed=7,
            resilience=ResiliencePolicy(detector="heartbeat"),
        )
        assert _image_hash(detected) == _image_hash(oracle)
        assert detected.seconds >= oracle.seconds


class TestFalseSuspicion:
    def test_announce_of_live_host_is_noop(self):
        sim = Simulator()
        network = build_lan(sim, 2)
        assert network.announce_failure("host1") is False
        assert not network.host("host1").crashed

    def test_hair_trigger_phi_cries_wolf_harmlessly(self):
        sim = Simulator()
        network = build_lan(sim, 3)
        suite = ResilienceSuite(
            network,
            ResiliencePolicy(detector="phi", phi_threshold=0.3),
        )

        def keep_alive():
            yield sim.timeout(0.5)

        sim.process(keep_alive())
        sim.run()
        stats = suite.stats()
        assert stats["false_suspicions"] > 0
        assert stats["detections"] == 0
        assert all(not network.host(n).crashed
                   for n in network.host_names)


class TestSupervision:
    def _cluster(self, restart_policy):
        sim = Simulator()
        network = build_lan(sim, 2)
        suite = ResilienceSuite(
            network, ResiliencePolicy(supervision=restart_policy)
        )
        return sim, network, suite

    def test_one_for_one_restarts_crashed_host(self):
        sim, network, suite = self._cluster(RestartPolicy(delay_s=0.01))
        FaultInjector(network, FaultPlan().crash("host1", at=0.05))

        def keep_alive():
            yield sim.timeout(0.2)

        sim.process(keep_alive())
        sim.run()
        assert not network.host("host1").crashed
        assert suite.stats()["supervision"] == {
            "strategy": "one_for_one", "restarts": 1, "gave_up": [],
        }

    def test_give_up_leaves_host_down_past_budget(self):
        sim, network, suite = self._cluster(
            RestartPolicy(strategy=GIVE_UP, max_restarts=1, delay_s=0.01)
        )

        def chaos():
            yield sim.timeout(0.05)
            network.crash_host("host1")  # restart #1 lands at ~0.06
            yield sim.timeout(0.05)
            network.crash_host("host1")  # budget spent: give up
            yield sim.timeout(0.1)

        sim.process(chaos())
        sim.run()
        assert network.host("host1").crashed
        stats = suite.stats()["supervision"]
        assert stats["restarts"] == 1
        assert stats["gave_up"] == ["host1"]

    def test_escalate_raises_past_budget(self):
        sim, network, _ = self._cluster(
            RestartPolicy(strategy="escalate", max_restarts=0)
        )
        FaultInjector(network, FaultPlan().crash("host1", at=0.05))

        def keep_alive():
            yield sim.timeout(0.2)

        sim.process(keep_alive())
        with pytest.raises(SupervisionEscalation) as excinfo:
            sim.run()
        assert excinfo.value.host == "host1"

    def test_restart_policy_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(strategy="all_for_one")
        with pytest.raises(ValueError):
            RestartPolicy(delay_s=-0.1)
        with pytest.raises(ValueError):
            RestartPolicy(max_restarts=-1)


class TestFlowControl:
    def test_credit_exhaustion_raises_typed_overload(self):
        sim = Simulator()
        network = build_lan(sim, 2)
        network.set_reliable("data")
        FaultInjector(network, FaultPlan().drop(0.01), seed=2)
        suite = ResilienceSuite(network, ResiliencePolicy(flow_credits=2))

        def packet(i):
            return Packet(src="host0", dst="host1", port="data",
                          payload=i, size_bytes=64)

        network.enqueue(packet(0))
        network.enqueue(packet(1))
        with pytest.raises(SimOverloadError):
            network.enqueue(packet(2))
        assert network.overloads == 1
        assert suite.stats()["overloads"] == 1

        sim.run()  # acks drain and release the credits
        network.enqueue(packet(3))
        sim.run()
        port = network.host("host1").port("data")
        delivered = sorted(p.payload for p in port.items)
        assert delivered == [0, 1, 3]

    def test_flow_control_validation(self):
        sim = Simulator()
        network = build_lan(sim, 2)
        with pytest.raises(ValueError):
            network.set_flow_control(0)


class TestInvariants:
    def test_gvt_monotonic(self):
        values = iter([1.0, 2.0, 1.5])
        inv = GvtMonotonic(lambda: next(values))
        assert inv.check(0.0) is None
        assert inv.check(0.1) is None
        assert "backwards" in inv.check(0.2)

    def test_no_lost_work_duplicate_and_lost(self):
        ledger = WorkLedger()
        inv = NoLostWork(ledger)
        ledger.issue("a")
        ledger.issue("b")
        ledger.complete("a")
        assert inv.check(0.0) is None
        assert "never completed" in inv.check_final(1.0)
        ledger.complete("a")
        assert "duplicate" in inv.check(1.0)

    def test_no_lost_work_unissued_completion(self):
        ledger = WorkLedger()
        ledger.complete("ghost")
        assert "never issued" in NoLostWork(ledger).check(0.0)

    def test_ledger_identity(self):
        metrics = MetricsRegistry()
        inv = LedgerIdentity(metrics, n_tracks=2)
        metrics.charge("compute", 1.0)
        assert inv.check(1.0) is None
        metrics.charge("wire", 1.5)
        assert "attributes" in inv.check(1.0)

    def test_checkpoint_integrity_catches_aliased_state(self):
        clone = SimpleNamespace(vt=1.0, hops=2, variables={"x": 1})
        checkpoint = SimpleNamespace(clone=clone, prev=None)
        system = SimpleNamespace(_checkpoints={7: checkpoint})
        inv = CheckpointIntegrity(system)
        assert inv.check(0.0) is None
        clone.variables["x"] = 99  # live state aliased into the snapshot
        assert "mutated" in inv.check(0.1)

    def test_monitor_fails_fast_inside_the_des(self):
        sim = Simulator()
        network = build_lan(sim, 2)
        suite = ResilienceSuite(network, ResiliencePolicy())
        ledger = WorkLedger()
        suite.add_invariant(NoLostWork(ledger))

        def workload():
            ledger.issue("a")
            ledger.complete("a")
            yield sim.timeout(0.06)
            ledger.complete("a")  # the bug: accepted twice
            yield sim.timeout(0.2)

        sim.process(workload())
        with pytest.raises(InvariantViolation) as excinfo:
            sim.run()
        assert excinfo.value.invariant == "no-lost-work"
        assert excinfo.value.t < 0.26  # first sweep after the bug, not the end

    def test_check_final_catches_lost_work(self):
        sim = Simulator()
        network = build_lan(sim, 2)
        suite = ResilienceSuite(network, ResiliencePolicy())
        ledger = WorkLedger()
        suite.add_invariant(NoLostWork(ledger))
        ledger.issue("a")
        sim.run()
        with pytest.raises(InvariantViolation):
            suite.check_final()

    def test_violation_message_carries_excerpt(self):
        err = InvariantViolation(
            "gvt-monotonic", "boom", 1.0,
            excerpt=[(0.5, "crash", {"host": "host1"})],
        )
        assert "recent events" in str(err)
        assert "crash" in str(err)

    def test_suite_reports_invariant_stats(self):
        sim = Simulator()
        network = build_lan(sim, 2)
        suite = ResilienceSuite(network, ResiliencePolicy())
        suite.add_invariant(NoLostWork(WorkLedger()))

        def keep_alive():
            yield sim.timeout(0.2)

        sim.process(keep_alive())
        sim.run()
        suite.check_final()
        stats = suite.stats()
        assert stats["invariants"] == ["no-lost-work"]
        assert stats["invariant_checks"] > 0

    def test_clean_crashy_run_passes_invariants(self):
        # A crash + detection-driven recovery violates nothing.
        clean = run_messengers(GRID, PROCS)
        faulty = run_messengers(
            GRID, PROCS, faults=_crash_plan(clean.seconds), seed=7,
            resilience=ResiliencePolicy(detector="heartbeat"),
        )
        assert _image_hash(faulty) == _image_hash(clean)


def _host1_is_load_bearing(plan, seed):
    """Fake workload: dies iff the schedule crashes host1."""
    for event in plan.sorted_events():
        if event.kind == "crash" and event.host == "host1":
            raise SimulationError("host1 is load-bearing")


class TestScheduleSearcher:
    def test_finds_and_shrinks_seeded_violation(self):
        searcher = ScheduleSearcher(
            _host1_is_load_bearing, ["host0", "host1"], 1.0, seed=3
        )
        report = searcher.search(max_schedules=40, max_depth=2)
        assert not report["clean"]
        assert report["violations"][0]["error"] == "SimulationError"
        assert report["minimal"]["atoms"] == [
            {"kind": "crash", "host": "host1", "at": 0.25}
        ]
        # The serialized reproducer replays verbatim.
        plan = FaultPlan.from_dict(report["minimal"]["plan"])
        with pytest.raises(SimulationError):
            _host1_is_load_bearing(plan, report["minimal"]["seed"])

    def test_shrink_drops_irrelevant_atoms(self):
        searcher = ScheduleSearcher(
            _host1_is_load_bearing, ["host0", "host1"], 1.0
        )
        # crash host0 @0.25, crash host1 @0.25, drop — only one matters.
        atoms = [searcher.atoms[0], searcher.atoms[3], searcher.atoms[6]]
        assert searcher.shrink(atoms) == [searcher.atoms[3]]

    def test_clean_run_explores_the_full_budget(self):
        searcher = ScheduleSearcher(
            lambda plan, seed: None,
            [f"host{i}" for i in range(4)], 2.0,
        )
        report = searcher.search(max_schedules=50, max_depth=2)
        assert report["clean"]
        assert report["schedules_run"] >= 50
        assert report["violations"] == []
        assert report["minimal"] is None

    def test_search_is_deterministic(self):
        reports = [
            ScheduleSearcher(
                _host1_is_load_bearing, ["host0", "host1"], 1.0, seed=11
            ).search(max_schedules=30)
            for _ in range(2)
        ]
        assert reports[0] == reports[1]

    def test_searcher_validation(self):
        with pytest.raises(ValueError):
            ScheduleSearcher(lambda p, s: None, [], 1.0, loss_rates=())
        with pytest.raises(ValueError):
            ScheduleSearcher(lambda p, s: None, ["host0"], 0.0)

    def test_real_workload_manager_crash_is_found(self):
        # The PVM workload cannot survive losing the manager host — the
        # searcher should find that violation and report it minimally.
        # (The run dies assembling an image with missing blocks, a
        # ValueError, so the searcher is told to count that type too.)
        grid = TaskGrid(32, 2)
        clean = run_pvm(grid, 2)

        def runner(plan, seed):
            run_pvm(grid, 2, faults=plan, seed=seed)

        searcher = ScheduleSearcher(
            runner, ["host0"], clean.seconds, crash_fractions=(0.5,),
            loss_rates=(),
            violation_types=(SimulationError, ValueError),
        )
        report = searcher.search(max_schedules=5, max_depth=1)
        assert not report["clean"]
        assert report["minimal"]["atoms"][0]["host"] == "host0"


class TestFacadeIntegration:
    def test_cluster_arms_resilience(self):
        import repro

        c = repro.cluster(
            2, resilience=repro.ResiliencePolicy(detector="heartbeat")
        )
        assert c.resilience is not None
        assert c.resilience_stats["detector"] == "heartbeat"

    def test_cluster_without_policy_has_no_suite(self):
        import repro

        c = repro.cluster(2)
        assert c.resilience is None
        assert c.resilience_stats == {}
