"""Smoke tests: every shipped example must run and produce its output.

Examples are the public face of the library; these tests run each one
in a subprocess (small parameters) and check its key output lines, so
API drift can never silently break them.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "hello from host1" in out
        assert "hello from host3" in out
        assert "logical nodes" in out

    def test_quickstart_uses_facade(self):
        # The quickstart is the library's front door: it must showcase
        # the one-call facade, not hand-assembled layers.
        source = (EXAMPLES / "quickstart.py").read_text()
        assert "repro.cluster(" in source

    def test_network_explorer_uses_facade(self):
        source = (EXAMPLES / "network_explorer.py").read_text()
        assert "repro.cluster(" in source

    def test_mandelbrot_comparison(self):
        out = run_example("mandelbrot_comparison.py", "64", "3")
        assert "identical images" in out
        assert "MESSENGERS" in out and "PVM" in out
        assert "@" in out  # the ASCII-art set

    def test_matmul_virtual_time(self):
        out = run_example("matmul_virtual_time.py", "60", "2")
        assert "agree with numpy" in out
        assert "GVT rounds" in out

    def test_network_explorer(self):
        out = run_example("network_explorer.py")
        assert "distance 0" in out  # gateway
        assert "distance 2" in out  # far buildings
        assert "leader elected" in out

    def test_timewarp_simulation(self):
        out = run_example("timewarp_simulation.py")
        assert "identical final states" in out
        assert "PHOLD" in out

    def test_shell_session(self):
        out = run_example("shell_session.py")
        assert "injected messenger" in out
        assert "gvt=10" in out

    def test_agent_team(self):
        out = run_example("agent_team.py")
        assert "lead <- worker1: done: parse" in out
        assert "lead <- worker2: done: report" in out
        assert "4 reports, 8 mails read" in out

    def test_agent_team_uses_typed_config(self):
        # The mailbox example is the front door for the typed-config
        # API: ClusterConfig + MailboxConfig, no legacy kwargs.
        source = (EXAMPLES / "agent_team.py").read_text()
        assert "repro.ClusterConfig(" in source
        assert "repro.MailboxConfig(" in source

    def test_swarm_simulation(self):
        out = run_example("swarm_simulation.py", "12")
        assert "founders" in out
        assert "grass remaining" in out
