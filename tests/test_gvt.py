"""Tests for the standalone virtual-time kernels (conservative + Time Warp)."""

import pytest

from repro.des import Simulator
from repro.gvt import (
    ConservativeKernel,
    Event,
    LpSpec,
    TimeWarpKernel,
    VirtualTimeKernelError,
    phold,
    pipeline,
    skewed_load,
)


def run_conservative(specs, initial, **kwargs):
    sim = Simulator()
    kernel = ConservativeKernel(sim, specs, **kwargs)
    for event in initial:
        kernel.post(event)
    stats = kernel.run()
    states = {spec.name: dict(spec.state) for spec in specs}
    return stats, states


def run_timewarp(specs, initial, **kwargs):
    sim = Simulator()
    kernel = TimeWarpKernel(sim, specs, **kwargs)
    for event in initial:
        kernel.post(event)
    stats = kernel.run()
    states = {spec.name: dict(kernel.state_of(spec.name)) for spec in specs}
    return stats, states


def canonical(states):
    """Normalize states for comparison: sort event logs."""
    out = {}
    for name, state in states.items():
        fixed = dict(state)
        if "jobs_seen" in fixed:
            fixed["jobs_seen"] = sorted(fixed["jobs_seen"])
        out[name] = fixed
    return out


class TestConservativeKernel:
    def test_single_lp_event_order(self):
        order = []

        def handler(state, event):
            order.append(event.timestamp)
            return []

        specs = [LpSpec("a", handler)]
        _stats, _ = run_conservative(
            specs, [Event(3.0, "a"), Event(1.0, "a"), Event(2.0, "a")]
        )
        assert order == [1.0, 2.0, 3.0]

    def test_chained_events(self):
        def handler(state, event):
            state["count"] = state.get("count", 0) + 1
            if state["count"] < 5:
                return [Event(event.timestamp + 1, "a")]
            return []

        stats, states = run_conservative(
            [LpSpec("a", handler)], [Event(1.0, "a")]
        )
        assert states["a"]["count"] == 5
        assert stats.events_processed == 5
        assert stats.final_gvt == 5.0
        assert stats.efficiency == 1.0

    def test_round_cost_charged(self):
        def handler(state, event):
            return []

        specs = [LpSpec(f"lp{i}", handler) for i in range(4)]
        stats, _ = run_conservative(
            specs, [Event(float(t), "lp0") for t in range(1, 6)]
        )
        assert stats.gvt_advances == 5
        assert stats.wallclock_s > 0

    def test_zero_lookahead_rejected(self):
        def handler(state, event):
            return [Event(event.timestamp, "a")]  # no lookahead!

        sim = Simulator()
        kernel = ConservativeKernel(sim, [LpSpec("a", handler)])
        kernel.post(Event(1.0, "a"))
        with pytest.raises(VirtualTimeKernelError, match="lookahead"):
            kernel.run()

    def test_unknown_target_rejected(self):
        sim = Simulator()
        kernel = ConservativeKernel(sim, [LpSpec("a", lambda s, e: [])])
        with pytest.raises(VirtualTimeKernelError):
            kernel.post(Event(1.0, "ghost"))

    def test_anti_message_rejected(self):
        sim = Simulator()
        kernel = ConservativeKernel(sim, [LpSpec("a", lambda s, e: [])])
        with pytest.raises(VirtualTimeKernelError):
            kernel.post(Event(1.0, "a").as_anti())

    def test_duplicate_lp_rejected(self):
        sim = Simulator()
        with pytest.raises(VirtualTimeKernelError):
            ConservativeKernel(
                sim,
                [LpSpec("a", lambda s, e: []), LpSpec("a", lambda s, e: [])],
            )

    def test_until_vt_cutoff(self):
        def handler(state, event):
            state["count"] = state.get("count", 0) + 1
            return [Event(event.timestamp + 1, "a")]

        sim = Simulator()
        specs = [LpSpec("a", handler)]
        kernel = ConservativeKernel(sim, specs)
        kernel.post(Event(1.0, "a"))
        stats = kernel.run(until_vt=10.0)
        assert specs[0].state["count"] == 10


class TestTimeWarpKernel:
    def test_simple_chain_matches_conservative(self):
        def make_handler():
            def handler(state, event):
                state["count"] = state.get("count", 0) + 1
                if state["count"] < 5:
                    return [Event(event.timestamp + 1, "a")]
                return []

            return handler

        _s1, conservative = run_conservative(
            [LpSpec("a", make_handler())], [Event(1.0, "a")]
        )
        _s2, optimistic = run_timewarp(
            [LpSpec("a", make_handler())], [Event(1.0, "a")]
        )
        assert conservative == optimistic

    def test_rollback_happens_and_state_correct(self):
        """A fast LP speculates ahead; a slow LP's message arrives late
        in wall-clock but early in virtual time → rollback."""

        log = []

        def fast_handler(state, event):
            state.setdefault("seen", []).append(event.timestamp)
            log.append(event.timestamp)
            return []

        def slow_handler(state, event):
            # Emits an event into fast's virtual past (relative to what
            # fast will have optimistically processed by then).
            return [Event(event.timestamp + 0.5, "fast")]

        specs = [
            LpSpec("fast", fast_handler, cost_s=1e-6),
            LpSpec("slow", slow_handler, cost_s=5e-2),  # very slow
        ]
        sim = Simulator()
        kernel = TimeWarpKernel(
            sim, specs, message_latency_s=1e-3, gvt_interval_s=0.01
        )
        # fast gets a pile of later events it will chew through early
        for t in (2.0, 3.0, 4.0, 5.0):
            kernel.post(Event(t, "fast"))
        kernel.post(Event(1.0, "slow"))  # produces Event(1.5, "fast")
        stats = kernel.run()
        assert kernel.state_of("fast")["seen"] == [1.5, 2.0, 3.0, 4.0, 5.0]
        assert stats.rollbacks >= 1
        assert stats.events_rolled_back >= 1
        assert stats.efficiency < 1.0

    def test_anti_message_cancels_unprocessed_twin(self):
        """Rolled-back sends must be annihilated at the receiver."""

        def source_handler(state, event):
            if event.payload == "first-attempt":
                return [Event(event.timestamp + 10.0, "sink",
                              payload="speculative")]
            return []

        def sink_handler(state, event):
            state.setdefault("got", []).append(event.payload)
            return []

        # A second source event at an earlier timestamp forces the
        # source to roll back its first handling — but the handler is
        # deterministic on payload, so re-execution re-sends the same
        # logical message.  To *observe* annihilation we make the sink
        # record everything and check no duplicates survived.
        specs = [
            LpSpec("source", source_handler, cost_s=2e-2),
            LpSpec("sink", sink_handler, cost_s=1e-6),
        ]
        sim = Simulator()
        kernel = TimeWarpKernel(
            sim, specs, message_latency_s=1e-3, gvt_interval_s=0.01
        )
        kernel.post(Event(5.0, "source", payload="first-attempt"))

        def late_straggler(sim_):
            yield sim_.timeout(1e-4)
            kernel._send(Event(1.0, "source", payload="straggler"))

        sim.process(late_straggler(sim))
        stats = kernel.run()
        got = kernel.state_of("sink").get("got", [])
        assert got == ["speculative"]  # exactly once despite rollback
        assert stats.anti_messages >= 0  # annihilation path exercised

    def test_phold_equivalence(self):
        specs_c, initial_c = phold(n_lps=3, population=5, hops=10, seed=42)
        specs_o, initial_o = phold(n_lps=3, population=5, hops=10, seed=42)
        _s1, conservative = run_conservative(specs_c, initial_c)
        _s2, optimistic = run_timewarp(
            specs_o, initial_o, gvt_interval_s=0.01
        )
        assert canonical(conservative) == canonical(optimistic)

    def test_pipeline_equivalence(self):
        specs_c, initial_c = pipeline(stages=4, items=6)
        specs_o, initial_o = pipeline(stages=4, items=6)
        _s1, conservative = run_conservative(specs_c, initial_c)
        _s2, optimistic = run_timewarp(specs_o, initial_o)
        assert canonical(conservative) == canonical(optimistic)

    def test_skewed_load_equivalence_and_speed(self):
        specs_c, initial_c = skewed_load(n_lps=4, rounds=8)
        specs_o, initial_o = skewed_load(n_lps=4, rounds=8)
        stats_c, conservative = run_conservative(specs_c, initial_c)
        stats_o, optimistic = run_timewarp(
            specs_o, initial_o, gvt_interval_s=0.005
        )
        assert canonical(conservative) == canonical(optimistic)
        # The ring serializes everything, but conservative also pays a
        # sync round per advance; Time Warp should not be slower by more
        # than its GVT sampling granularity.
        assert stats_o.wallclock_s < stats_c.wallclock_s * 3

    def test_fossil_collection_bounds_history(self):
        specs, initial = pipeline(stages=3, items=30)
        sim = Simulator()
        kernel = TimeWarpKernel(sim, specs, gvt_interval_s=0.001)
        for event in initial:
            kernel.post(event)
        kernel.run()
        assert kernel.stats.gvt_advances > 0
        for name in ("stage0", "stage1", "stage2"):
            lp = kernel._lps[name]
            # history strictly bounded by what GVT left uncommitted
            assert len(lp.processed) <= 90

    def test_gvt_monotone_and_final(self):
        specs, initial = phold(n_lps=2, population=3, hops=6, seed=7)
        sim = Simulator()
        kernel = TimeWarpKernel(sim, specs, gvt_interval_s=0.01)
        for event in initial:
            kernel.post(event)
        stats = kernel.run()
        assert stats.events_processed >= 18  # 3 jobs x 6 hops committed

    def test_empty_run_finishes(self):
        sim = Simulator()
        kernel = TimeWarpKernel(sim, [LpSpec("a", lambda s, e: [])])
        stats = kernel.run()
        assert stats.events_processed == 0
