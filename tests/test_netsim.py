"""Unit tests for the physical substrate: costs, hosts, Ethernet, network."""

import pytest

from repro.des import Simulator
from repro.netsim import (
    CacheModel,
    CostModel,
    EthernetSegment,
    Host,
    Network,
    Packet,
    build_lan,
)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def costs():
    return CostModel()


class TestCacheModel:
    def test_in_cache_is_free(self):
        cache = CacheModel(capacity_bytes=1 << 20, penalty=3.0)
        assert cache.factor(1000) == 1.0
        assert cache.factor(1 << 20) == 1.0

    def test_factor_monotone_in_working_set(self):
        cache = CacheModel(capacity_bytes=1 << 20, penalty=3.0)
        sizes = [2 << 20, 8 << 20, 64 << 20, 1 << 30]
        factors = [cache.factor(s) for s in sizes]
        assert factors == sorted(factors)
        assert all(f > 1.0 for f in factors)

    def test_factor_saturates_at_penalty(self):
        cache = CacheModel(capacity_bytes=1024, penalty=2.5)
        assert cache.factor(1e15) == pytest.approx(3.5, rel=1e-6)


class TestCostModel:
    def test_with_overrides(self, costs):
        modified = costs.with_(cpu_flops=1e9)
        assert modified.cpu_flops == 1e9
        assert costs.cpu_flops != 1e9  # original untouched (frozen)

    def test_compute_seconds_scales_with_cpu(self, costs):
        base = costs.compute_seconds(1e6)
        fast = costs.compute_seconds(1e6, cpu_scale=2.0)
        assert fast == pytest.approx(base / 2)

    def test_compute_seconds_cache_penalty(self, costs):
        small = costs.compute_seconds(1e6, working_set_bytes=1024)
        large = costs.compute_seconds(1e6, working_set_bytes=1 << 28)
        assert large > small

    def test_wire_seconds(self, costs):
        t = costs.wire_seconds(10_000)
        assert t == pytest.approx(
            costs.wire_latency_s + 10_000 / costs.bandwidth_bytes_per_s
        )


class TestHost:
    def test_compute_charges_time(self, sim, costs):
        host = Host(sim, "h0", costs)

        def proc(sim):
            yield sim.process(host.compute(costs.cpu_flops))  # 1 second

        p = sim.process(proc(sim))
        sim.run(until=p)
        assert sim.now == pytest.approx(1.0)
        assert host.busy_seconds == pytest.approx(1.0)

    def test_cpu_serializes_jobs(self, sim, costs):
        host = Host(sim, "h0", costs)

        def job(sim):
            yield sim.process(host.compute(costs.cpu_flops))

        sim.process(job(sim))
        sim.process(job(sim))
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_cpu_scale_validation(self, sim, costs):
        with pytest.raises(ValueError):
            Host(sim, "bad", costs, cpu_scale=0)

    def test_negative_busy_rejected(self, sim, costs):
        host = Host(sim, "h0", costs)
        with pytest.raises(ValueError):
            host.busy(-1)

    def test_ports_created_on_demand(self, sim, costs):
        host = Host(sim, "h0", costs)
        q = host.port("pvm")
        assert host.port("pvm") is q
        assert host.port_names == ["pvm"]


class TestEthernet:
    def test_transmission_time(self, sim, costs):
        segment = EthernetSegment(sim, costs)

        def proc(sim):
            yield sim.process(segment.transmit(1000))

        p = sim.process(proc(sim))
        sim.run(until=p)
        assert sim.now == pytest.approx(costs.wire_seconds(1000))
        assert segment.bytes_carried == 1000
        assert segment.frames_carried == 1

    def test_fragmentation(self, sim, costs):
        segment = EthernetSegment(sim, costs)

        def proc(sim):
            yield sim.process(segment.transmit(4000))

        p = sim.process(proc(sim))
        sim.run(until=p)
        # ceil(4000/1500) = 3 fragments, each paying latency.
        assert segment.frames_carried == 3
        assert segment.bytes_carried == 4000
        expected = (
            2 * costs.wire_seconds(1500) + costs.wire_seconds(1000)
        )
        assert sim.now == pytest.approx(expected)

    def test_medium_is_serialized(self, sim, costs):
        segment = EthernetSegment(sim, costs)
        ends = []

        def sender(sim):
            yield sim.process(segment.transmit(1500))
            ends.append(sim.now)

        sim.process(sender(sim))
        sim.process(sender(sim))
        sim.run()
        one = costs.wire_seconds(1500)
        assert ends == [pytest.approx(one), pytest.approx(2 * one)]

    def test_negative_size_rejected(self, sim, costs):
        segment = EthernetSegment(sim, costs)
        with pytest.raises(ValueError):
            segment.transmit(-1)

    def test_utilization(self, sim, costs):
        segment = EthernetSegment(sim, costs)
        assert segment.utilization() == 0.0


class TestNetwork:
    def test_build_lan(self, sim, costs):
        net = build_lan(sim, 4, costs)
        assert len(net) == 4
        assert net.host_names == ["host0", "host1", "host2", "host3"]
        assert net.host("host2").network is net

    def test_build_lan_validation(self, sim, costs):
        with pytest.raises(ValueError):
            build_lan(sim, 0, costs)

    def test_duplicate_host_rejected(self, sim, costs):
        net = Network(sim, costs)
        net.add_host(Host(sim, "a", costs))
        with pytest.raises(ValueError):
            net.add_host(Host(sim, "a", costs))

    def test_unknown_host_lookup(self, sim, costs):
        net = Network(sim, costs)
        with pytest.raises(KeyError):
            net.host("ghost")

    def test_remote_delivery(self, sim, costs):
        net = build_lan(sim, 2, costs)
        received = []

        def receiver(sim):
            packet = yield net.receive("host1", "svc")
            received.append((sim.now, packet.payload))

        def sender(sim):
            yield sim.process(
                net.send(Packet("host0", "host1", "svc", "hello", 100))
            )

        sim.process(receiver(sim))
        sim.process(sender(sim))
        sim.run()
        assert len(received) == 1
        time, payload = received[0]
        assert payload == "hello"
        expected = 2 * costs.endpoint_overhead_s + costs.wire_seconds(100)
        assert time == pytest.approx(expected)

    def test_local_delivery_skips_wire(self, sim, costs):
        net = build_lan(sim, 1, costs)
        times = []

        def receiver(sim):
            yield net.receive("host0", "svc")
            times.append(sim.now)

        def sender(sim):
            yield sim.process(
                net.send(Packet("host0", "host0", "svc", "x", 10_000))
            )

        sim.process(receiver(sim))
        sim.process(sender(sim))
        sim.run()
        assert times[0] == pytest.approx(costs.endpoint_overhead_s)
        assert net.segment.frames_carried == 0

    def test_send_to_unknown_host_raises(self, sim, costs):
        net = build_lan(sim, 1, costs)
        with pytest.raises(KeyError):
            net.send(Packet("host0", "nowhere", "svc", None, 1))

    def test_post_fire_and_forget(self, sim, costs):
        net = build_lan(sim, 2, costs)
        net.post(Packet("host0", "host1", "svc", 42, 10))
        sim.run()
        assert net.delivered == 1
        ok, packet = net.host("host1").port("svc").try_get()
        assert ok and packet.payload == 42
