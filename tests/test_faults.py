"""Fault injection, reliable transport, and crash recovery.

Covers the ``repro.faults`` layer end to end: plan validation, the
ack/seq/retransmit channel, partitions, host crash/restart (including
the transmit-pump idempotence regression), deadlock diagnostics,
pvm_notify, MESSENGERS checkpoint/re-dispatch recovery, Time-Warp LP
kills, and the determinism contract: same seed + same plan ⇒ same run.
"""

import hashlib

import pytest

from repro.apps.mandelbrot.kernel import TaskGrid
from repro.apps.mandelbrot.messengers_app import run_messengers
from repro.apps.mandelbrot.pvm_app import run_pvm
from repro.des import SimDeadlockError, Simulator
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    RetransmitPolicy,
)
from repro.netsim import HostCrashedError, Packet, build_lan


def _image_hash(result):
    return hashlib.sha256(result.image.tobytes()).hexdigest()


class TestFaultPlan:
    def test_builder_is_fluent_and_queryable(self):
        plan = (
            FaultPlan()
            .drop(0.1)
            .drop(0.5, src="host1")
            .duplicate(0.2, dst="host2")
            .corrupt(0.05, src="host0", dst="host3")
            .crash("host2", at=1.0)
            .restart("host2", at=2.0)
        )
        # Most specific key wins.
        assert plan.drop_rate("host1", "host9") == 0.5
        assert plan.drop_rate("host9", "host9") == 0.1
        assert plan.duplicate_rate("host9", "host2") == 0.2
        assert plan.corrupt_rate("host0", "host3") == 0.05
        assert plan.corrupt_rate("host0", "host4") == 0.0
        assert plan.lossy and plan.can_crash and not plan.empty

    def test_zero_rate_clears_and_empty_plan_is_empty(self):
        plan = FaultPlan().drop(0.1).drop(0.0)
        assert plan.empty and not plan.lossy and not plan.can_crash

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().drop(1.5)
        with pytest.raises(ValueError):
            FaultEvent(at=-1.0, kind="crash", host="h")
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="meteor", host="h")
        with pytest.raises(ValueError):
            FaultPlan().hang("h", at=0.0, duration=0.0)
        with pytest.raises(ValueError):
            RetransmitPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetransmitPolicy(backoff=0.5)

    def test_events_sorted_by_time(self):
        plan = FaultPlan().restart("h", at=2.0).crash("h", at=1.0)
        assert [e.kind for e in plan.sorted_events()] == [
            "crash", "restart",
        ]


class TestFaultPlanValidation:
    """Schedule-level checks: typed errors at arm time, not mid-run."""

    def test_rates_out_of_range_rejected_at_build(self):
        with pytest.raises(ValueError):
            FaultPlan().drop(-0.1)
        with pytest.raises(ValueError):
            FaultPlan().duplicate(1.5)
        with pytest.raises(ValueError):
            FaultPlan().corrupt(2.0, src="host0")

    def test_crash_of_unknown_host_rejected_at_arm_time(self):
        sim = Simulator()
        network = build_lan(sim, 2)  # host0, host1
        plan = FaultPlan().crash("host9", at=1.0)
        with pytest.raises(FaultPlanError, match="unknown host 'host9'"):
            FaultInjector(network, plan)

    def test_rate_key_with_unknown_host_rejected_at_arm_time(self):
        sim = Simulator()
        network = build_lan(sim, 2)
        plan = FaultPlan().drop(0.1, dst="nosuch")
        with pytest.raises(FaultPlanError, match="drop rate dst"):
            FaultInjector(network, plan)

    def test_overlapping_partition_intervals_rejected(self):
        plan = (
            FaultPlan()
            .partition("a", "b", at=1.0)
            .partition("b", "a", at=2.0)  # same link, still cut
            .heal("a", "b", at=3.0)
        )
        with pytest.raises(FaultPlanError, match="overlapping"):
            plan.validate()

    def test_heal_of_unpartitioned_link_rejected(self):
        with pytest.raises(FaultPlanError, match="not\\s+partitioned"):
            FaultPlan().heal("a", "b", at=1.0).validate()

    def test_heal_before_its_partition_rejected(self):
        # Events are checked in virtual-time order, so a heal that
        # precedes its cut is a heal of an uncut link.
        plan = (
            FaultPlan()
            .heal("a", "b", at=1.0)
            .partition("a", "b", at=2.0)
        )
        with pytest.raises(FaultPlanError, match="not\\s+partitioned"):
            plan.validate()

    def test_unhealed_then_recut_across_windows_rejected(self):
        plan = (
            FaultPlan()
            .partition("a", "b", at=1.0)
            .heal("a", "b", at=2.0)
            .partition("a", "b", at=3.0)
            .partition("a", "b", at=4.0)  # window 2 never healed
        )
        with pytest.raises(FaultPlanError, match="overlapping"):
            plan.validate()

    def test_disjoint_partition_windows_are_legal(self):
        plan = (
            FaultPlan()
            .partition("a", "b", at=1.0)
            .heal("a", "b", at=2.0)
            .partition("a", "b", at=3.0)
            .heal("b", "a", at=4.0)
        )
        assert plan.validate() is plan

    def test_none_endpoints_rejected(self):
        with pytest.raises(FaultPlanError, match="concrete host"):
            FaultPlan().partition("a", None, at=1.0).validate()
        with pytest.raises(FaultPlanError, match="concrete host"):
            FaultPlan().heal(None, "b", at=1.0).validate()
        with pytest.raises(FaultPlanError, match="concrete host"):
            FaultPlan().crash(None, at=1.0).validate()

    def test_self_partition_rejected(self):
        with pytest.raises(FaultPlanError, match="itself"):
            FaultPlan().partition("a", "a", at=1.0).validate()

    def test_restart_without_crash_rejected(self):
        with pytest.raises(FaultPlanError, match="never crashed"):
            FaultPlan().restart("h", at=1.0).validate()

    def test_double_crash_without_restart_rejected(self):
        plan = FaultPlan().crash("h", at=1.0).crash("h", at=2.0)
        with pytest.raises(FaultPlanError, match="intervening restart"):
            plan.validate()

    def test_crash_restart_crash_is_legal(self):
        plan = (
            FaultPlan()
            .crash("h", at=1.0)
            .restart("h", at=2.0)
            .crash("h", at=3.0)
        )
        assert plan.validate() is plan

    def test_round_trip_through_dict(self):
        plan = (
            FaultPlan()
            .drop(0.1)
            .drop(0.4, src="host1")
            .duplicate(0.2, dst="host2")
            .corrupt(0.05, src="host0", dst="host3")
            .crash("host2", at=1.0)
            .restart("host2", at=2.0)
            .partition("host0", "host1", at=0.5)
            .heal("host0", "host1", at=0.75)
            .retransmit(timeout_s=0.5, max_retries=7)
        )
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.to_dict() == plan.to_dict()
        assert rebuilt.drop_rate("host1", "hostX") == 0.4
        assert rebuilt.retransmit_policy.max_retries == 7


def _reliable_net(plan, seed=0, n_hosts=2):
    sim = Simulator()
    network = build_lan(sim, n_hosts)
    network.set_reliable("data")
    injector = FaultInjector(network, plan, seed=seed)
    return sim, network, injector


class TestReliableTransport:
    def test_heavy_loss_still_delivers_everything(self):
        sim, network, injector = _reliable_net(FaultPlan().drop(0.4), seed=3)
        received = []

        def sink():
            port = network.host("host1").port("data")
            while True:
                packet = yield port.get()
                received.append(packet.payload)

        sim.process(sink(), daemon=True)
        for i in range(30):
            network.enqueue(Packet(
                src="host0", dst="host1", port="data",
                payload=i, size_bytes=100,
            ))
        sim.run()
        assert sorted(received) == list(range(30))
        assert injector.counts["packets_dropped"] > 0
        assert injector.counts["retransmits"] > 0

    def test_duplicates_are_suppressed(self):
        sim, network, injector = _reliable_net(
            FaultPlan().duplicate(1.0), seed=1
        )
        received = []

        def sink():
            port = network.host("host1").port("data")
            while True:
                packet = yield port.get()
                received.append(packet.payload)

        sim.process(sink(), daemon=True)
        for i in range(10):
            network.enqueue(Packet(
                src="host0", dst="host1", port="data",
                payload=i, size_bytes=100,
            ))
        sim.run()
        assert sorted(received) == list(range(10))
        # Every data packet (and its ack) is duplicated; the receiver's
        # dedup admits each data payload exactly once.
        assert injector.counts["packets_duplicated"] >= 10
        assert injector.counts["duplicates_suppressed"] == 10

    def test_partition_blocks_until_heal(self):
        plan = (
            FaultPlan()
            .partition("host0", "host1", at=0.0)
            .heal("host0", "host1", at=0.5)
        )
        sim, network, injector = _reliable_net(plan, seed=2)
        received = []

        def sink():
            port = network.host("host1").port("data")
            while True:
                packet = yield port.get()
                received.append((sim.now, packet.payload))

        sim.process(sink(), daemon=True)

        def source():
            yield sim.timeout(0.1)  # after the partition hits
            network.enqueue(Packet(
                src="host0", dst="host1", port="data",
                payload="hello", size_bytes=100,
            ))

        sim.process(source())
        sim.run()
        assert [p for _, p in received] == ["hello"]
        # Nothing crossed the cut before the heal at t=0.5.
        assert received[0][0] > 0.5
        assert injector.counts["packets_partitioned"] > 0


class TestCrashRestart:
    def test_crashed_host_rejects_compute_and_enqueue(self):
        sim = Simulator()
        network = build_lan(sim, 2)
        network.crash_host("host1")
        with pytest.raises(HostCrashedError):
            sim.run(until=sim.process(
                network.host("host1").busy(1e-3)
            ))
        with pytest.raises(HostCrashedError):
            network.enqueue(Packet(
                src="host1", dst="host0", port="data",
                payload=0, size_bytes=10,
            ))

    def test_restart_does_not_stack_tx_pumps(self):
        # Regression: restarting a host re-attaches it via add_host;
        # a second transmit pump on the same queue would double-send.
        sim = Simulator()
        network = build_lan(sim, 2)
        assert network.tx_pumps_started["host1"] == 1
        for _ in range(3):
            network.crash_host("host1")
            network.restart_host("host1")
        assert network.tx_pumps_started["host1"] == 1
        received = []

        def sink():
            port = network.host("host0").port("data")
            while True:
                packet = yield port.get()
                received.append(packet.payload)

        sim.process(sink(), daemon=True)
        network.enqueue(Packet(
            src="host1", dst="host0", port="data",
            payload="once", size_bytes=10,
        ))
        sim.run()
        assert received == ["once"]

    def test_add_host_rejects_distinct_object_under_taken_name(self):
        sim = Simulator()
        network = build_lan(sim, 2)
        from repro.netsim import Host

        with pytest.raises(ValueError):
            network.add_host(Host(sim, "host1", network.costs))


class TestDeadlockDetection:
    def test_deadlocked_processes_are_named(self):
        from repro.des import Store

        sim = Simulator()
        store = Store(sim)

        def starved():
            yield store.get()

        sim.process(starved())
        with pytest.raises(SimDeadlockError) as excinfo:
            sim.run()
        assert excinfo.value.blocked
        names = [name for name, _reason in excinfo.value.blocked]
        assert any("starved" in name for name in names)

    def test_daemon_processes_are_exempt(self):
        from repro.des import Store

        sim = Simulator()
        store = Store(sim)

        def service():
            while True:
                yield store.get()

        sim.process(service(), daemon=True)
        sim.run()  # drains without raising


class TestPvmNotify:
    def test_manager_survives_worker_host_crash(self):
        grid = TaskGrid(64, 4)
        clean = run_pvm(grid, 3)
        plan = FaultPlan().crash("host2", at=0.5 * clean.seconds)
        result = run_pvm(grid, 3, faults=plan, seed=7)
        assert _image_hash(result) == _image_hash(clean)
        stats = result.stats["faults"]
        assert stats["host_crashes"] == 1
        assert stats["tasks_crashed"] == 1
        assert stats["notifications"] >= 1


class TestMessengersRecovery:
    def test_crash_redispatches_from_checkpoint(self):
        grid = TaskGrid(64, 4)
        clean = run_messengers(grid, 3)
        plan = FaultPlan().crash("host2", at=0.5 * clean.seconds)
        result = run_messengers(grid, 3, faults=plan, seed=7)
        assert _image_hash(result) == _image_hash(clean)
        stats = result.stats["faults"]
        assert stats["host_crashes"] == 1
        assert stats["messengers_crashed"] >= 1
        assert stats["messengers_redispatched"] >= 1
        assert stats["nodes_rehomed"] >= 1
        assert stats["checkpoints"] > 0

    def test_crash_without_plan_is_loud_about_inflight_loss(self):
        from repro.des import SimulationError
        from repro.messengers import MessengersSystem

        sim = Simulator()
        network = build_lan(sim, 2)
        system = MessengersSystem(network)
        system.inject(
            "f() { create(ALL); hop(ll = $last); M_sched_time_dlt(5); }"
        )

        def assassin():
            # Mid create-request flight (wire transit is ~3ms here): no
            # crash-capable plan means no checkpoint to replay from, so
            # the Messenger is gone and the drain must say so.
            yield sim.timeout(1e-3)
            network.crash_host("host1")

        sim.process(assassin())
        with pytest.raises(SimulationError):
            system.run_to_quiescence()

    def test_crash_before_dispatch_routes_around_dead_daemon(self):
        from repro.messengers import MessengersSystem

        sim = Simulator()
        network = build_lan(sim, 2)
        system = MessengersSystem(network)
        system.inject(
            "f() { create(ALL); hop(ll = $last); M_sched_time_dlt(5); }"
        )

        def assassin():
            # Before the create dispatch: the dead daemon is filtered
            # from the candidate set, leaving none here (matches()
            # excludes self), so the Messenger dies a clean "lost".
            yield sim.timeout(1e-5)
            network.crash_host("host1")

        sim.process(assassin())
        system.run_to_quiescence()
        assert [fate for _m, fate in system.finished] == ["lost"]

    def test_stranded_accounting_is_loud(self):
        from repro.des import SimulationError
        from repro.messengers import MessengersSystem

        sim = Simulator()
        network = build_lan(sim, 2)
        system = MessengersSystem(network)
        system.inject("f() { M_sched_time_dlt(1); }")
        # A phantom activation that never lands (models an in-flight
        # Messenger silently lost without recovery): quiescence is now
        # unreachable and the drain must say so instead of lying.
        system.activate()
        with pytest.raises(SimulationError):
            system.run_to_quiescence()

    def test_restart_revives_daemon_for_new_injections(self):
        from repro.messengers import MessengersSystem

        sim = Simulator()
        network = build_lan(sim, 2)
        system = MessengersSystem(network)
        injector = FaultInjector(
            network,
            FaultPlan().crash("host1", at=0.01).restart("host1", at=0.02),
            seed=0,
        )
        sim.run()
        assert injector.counts["daemon_restarts"] == 1
        assert not system.daemons["host1"].dead
        logged = []

        @system.natives.register
        def note(env):
            logged.append(env.daemon.name)
            return 0

        system.inject("f() { note(); }", daemon="host1")
        system.run_to_quiescence()
        assert logged == ["host1"]


class TestAcceptance:
    """ISSUE acceptance: seeded 5% loss + one mid-run worker crash —
    both Mandelbrot variants complete bit-identical to fault-free."""

    @pytest.mark.parametrize(
        "runner", [run_messengers, run_pvm], ids=["messengers", "pvm"]
    )
    def test_loss_plus_crash_bit_identical(self, runner):
        grid = TaskGrid(64, 4)
        clean = runner(grid, 3)
        plan = (
            FaultPlan()
            .drop(0.05)
            .crash("host2", at=0.5 * clean.seconds)
        )
        result = runner(grid, 3, faults=plan, seed=7)
        assert _image_hash(result) == _image_hash(clean)


class TestDeterminism:
    @pytest.mark.parametrize(
        "runner", [run_messengers, run_pvm], ids=["messengers", "pvm"]
    )
    def test_same_seed_same_plan_same_run(self, runner):
        from repro.obs import MetricsRegistry

        grid = TaskGrid(64, 4)
        clean_seconds = runner(grid, 3).seconds

        def one_run():
            plan = (
                FaultPlan()
                .drop(0.05)
                .duplicate(0.02)
                .crash("host2", at=0.5 * clean_seconds)
            )
            registry = MetricsRegistry()
            result = runner(
                grid, 3, metrics=registry, faults=plan, seed=11
            )
            return (
                result.seconds,
                _image_hash(result),
                result.stats["faults"],
                registry.snapshot(),
            )

        first, second = one_run(), one_run()
        assert first[0] == second[0]  # identical final virtual time
        assert first[1] == second[1]  # identical image
        assert first[2] == second[2]  # identical fault counters
        assert first[3] == second[3]  # identical metrics snapshot

    def test_different_seed_differs(self):
        grid = TaskGrid(64, 4)
        plan = FaultPlan().drop(0.3)
        a = run_messengers(grid, 3, faults=plan, seed=1)
        b = run_messengers(grid, 3, faults=plan, seed=2)
        # Same answer, different fault sequence (overwhelmingly likely
        # at 30% loss over dozens of packets).
        assert (a.image == b.image).all()
        assert (
            a.stats["faults"] != b.stats["faults"]
            or a.seconds != b.seconds
        )


class TestTimeWarpKill:
    def _ping_pong_specs(self):
        from repro.gvt import Event, LpSpec

        def handler(state, event):
            state["count"] = state.get("count", 0) + 1
            if event.timestamp < 5.0 and event.payload is not None:
                return [Event(
                    timestamp=event.timestamp + 1.0,
                    target=event.payload,
                    payload=event.target,
                )]
            return []

        return [
            LpSpec(name="a", handler=handler, state={}),
            LpSpec(name="b", handler=handler, state={}),
            LpSpec(name="c", handler=handler, state={}),
        ]

    def test_kill_lp_cancels_orphans_and_completes(self):
        from repro.gvt import Event, TimeWarpKernel

        sim = Simulator()
        kernel = TimeWarpKernel(
            sim, self._ping_pong_specs(), message_latency_s=0.001
        )
        kernel.post(Event(timestamp=1.0, target="a", payload="b"))
        kernel.post(Event(timestamp=1.0, target="c", payload=None))

        def assassin():
            # Mid ping-pong: each exchange takes 0.001 simulated
            # seconds of transit, so the chain is still in flight.
            yield sim.timeout(0.0025)
            kernel.kill_lp("b")

        sim.process(assassin())
        stats = kernel.run()
        assert stats.lps_killed == 1
        assert stats.orphans_cancelled >= 1
        # The kernel still quiesces and commits the survivors' work.
        assert kernel.state_of("c")["count"] == 1

    def test_kill_unknown_lp_raises(self):
        from repro.gvt import TimeWarpKernel, VirtualTimeKernelError

        sim = Simulator()
        kernel = TimeWarpKernel(sim, self._ping_pong_specs())
        with pytest.raises(VirtualTimeKernelError):
            kernel.kill_lp("zeus")


class TestFacadeWiring:
    def test_cluster_accepts_fault_plan(self):
        import repro

        plan = (
            FaultPlan()
            .crash("host1", at=0.001)
            .restart("host1", at=0.002)
        )
        c = repro.cluster(2, faults=plan, seed=5)
        c.run()
        assert c.fault_stats["host_crashes"] == 1
        assert c.injector is not None

    def test_cluster_without_plan_has_empty_stats(self):
        import repro

        c = repro.cluster(2)
        assert c.fault_stats == {} and c.injector is None

    def test_experiment_builder_threads_faults(self):
        import repro

        plan = FaultPlan().crash("host1", at=0.001)
        result = (
            repro.Experiment()
            .hosts(2)
            .faults(plan)
            .seed(9)
            .run(lambda c: c.run())
        )
        assert result.cluster.fault_stats["host_crashes"] == 1


class TestSpawnDuringCrashWindow:
    """Regression: a crash landing inside PVM's synchronous spawn window
    used to enrol a zombie task on the dead host (the crash listener had
    already run) and deadlock the manager.  A spawn onto a crashed host
    must come back stillborn so pvm_notify fires immediately."""

    def test_stillborn_spawn_notifies_and_run_recovers(self):
        # mp_spawn_s is 0.1s/worker, so crashing host2 at t=0.15 lands
        # after worker 1's spawn but before worker 2's.
        grid = TaskGrid(32, 2)
        clean = run_pvm(grid, 2)
        plan = FaultPlan().crash("host2", at=0.15)
        faulty = run_pvm(grid, 2, faults=plan, seed=7)
        assert _image_hash(faulty) == _image_hash(clean)
        assert faulty.stats["faults"]["spawns_to_dead_host"] == 1

    def test_crash_before_any_spawn_still_recovers(self):
        grid = TaskGrid(32, 2)
        clean = run_pvm(grid, 2)
        plan = FaultPlan().crash("host2", at=0.05)
        faulty = run_pvm(grid, 2, faults=plan, seed=7)
        assert _image_hash(faulty) == _image_hash(clean)
