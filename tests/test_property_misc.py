"""Property-based tests: buffers, logical network, system determinism."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.des import Simulator
from repro.messengers import LogicalNetwork, MessengersSystem
from repro.mp import PackBuffer, UnpackBuffer, estimate_size
from repro.netsim import build_lan


class TestBufferProperties:
    @given(
        ints=st.lists(st.integers(min_value=-2**40, max_value=2**40),
                      max_size=10),
        doubles=st.lists(
            st.floats(allow_nan=False, allow_infinity=False), max_size=10
        ),
        strings=st.lists(
            st.text(
                alphabet=st.characters(codec="utf-8",
                                       blacklist_categories=("Cs",)),
                max_size=20,
            ),
            max_size=5,
        ),
    )
    def test_pack_unpack_round_trip(self, ints, doubles, strings):
        buf = PackBuffer()
        for value in ints:
            buf.pack_int(value)
        for value in doubles:
            buf.pack_double(value)
        for value in strings:
            buf.pack_string(value)
        out = UnpackBuffer(buf.items, buf.nbytes)
        assert [out.unpack_int() for _ in ints] == ints
        assert [out.unpack_double() for _ in doubles] == doubles
        assert [out.unpack_string() for _ in strings] == strings
        assert out.remaining == 0

    @given(
        shape=st.tuples(
            st.integers(min_value=1, max_value=20),
            st.integers(min_value=1, max_value=20),
        ),
    )
    def test_array_bytes_charged_exactly(self, shape):
        array = np.zeros(shape)
        buf = PackBuffer()
        buf.pack_array(array)
        assert buf.nbytes == array.nbytes

    @given(
        payload=st.recursive(
            st.one_of(
                st.integers(), st.floats(allow_nan=False), st.text(),
                st.binary(), st.none(), st.booleans(),
            ),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=5), children, max_size=4),
            ),
            max_leaves=15,
        )
    )
    def test_estimate_size_is_nonnegative_and_additive(self, payload):
        size = estimate_size(payload)
        assert size >= 0
        assert estimate_size([payload, payload]) == 2 * size


class TestLogicalNetworkProperties:
    @given(
        edges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=8),
                st.integers(min_value=0, max_value=8),
            ),
            max_size=20,
        )
    )
    def test_match_moves_subset_of_neighbors(self, edges):
        net = LogicalNetwork()
        nodes = {k: net.create_node(f"n{k}", "host0") for k in range(9)}
        for a, b in edges:
            if a != b:
                net.create_link("e", nodes[a], nodes[b])
        for node in nodes.values():
            moves = net.match_moves(node)
            neighbors = set(map(id, node.neighbors()))
            assert all(id(far) in neighbors for _link, far in moves)
            assert len(moves) == node.degree() - sum(
                1 for link in node.links if link.other(node) is node
            )

    @given(
        chain_length=st.integers(min_value=2, max_value=10),
    )
    def test_deleting_chain_collects_everything(self, chain_length):
        net = LogicalNetwork()
        nodes = [
            net.create_node(f"c{k}", "host0") for k in range(chain_length)
        ]
        links = [
            net.create_link("l", nodes[k], nodes[k + 1])
            for k in range(chain_length - 1)
        ]
        for link in links:
            net.delete_link(link)
        assert net.node_count() == 0


class TestSystemDeterminism:
    @given(
        n_hosts=st.integers(min_value=2, max_value=5),
        n_tasks=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=10, deadline=None)
    def test_manager_worker_is_deterministic(self, n_hosts, n_tasks):
        """Identical runs commit identical results at identical times."""

        def one_run():
            sim = Simulator()
            system = MessengersSystem(build_lan(sim, n_hosts))
            results = []
            tasks = list(range(1, n_tasks + 1))
            central = system.daemon("host0").init_node
            central.variables["tasks"] = tasks

            @system.natives.register
            def next_task(env):
                queue = env.node_vars["tasks"]
                return queue.pop(0) if queue else 0

            @system.natives.register
            def compute(env, task):
                env.charge_flops(task * 1e5)
                return task * task

            @system.natives.register
            def deposit(env, res):
                results.append(res)
                return 0

            system.inject(
                """
                mw() {
                    create(ALL);
                    hop(ll = $last);
                    while ((task = next_task()) != 0) {
                        hop(ll = $last);
                        res = compute(task);
                        hop(ll = $last);
                        deposit(res);
                    }
                }
                """
            )
            elapsed = system.run_to_quiescence()
            return results, elapsed

        results_a, elapsed_a = one_run()
        results_b, elapsed_b = one_run()
        assert results_a == results_b
        assert elapsed_a == elapsed_b
        assert sorted(results_a) == [k * k for k in range(1, n_tasks + 1)]
