"""The one-call facade: repro.cluster(...) and repro.Experiment.

The acceptance bar from the API redesign: ``import repro;
repro.cluster(4)`` must yield a runnable system with no other imports,
while the long-form construction (Simulator + build_lan +
MessengersSystem) keeps working unchanged.
"""

import pytest

import repro

HELLO = """
hello() {
    create(ALL);
    mark();
}
"""


def _run_hello(c):
    seen = []

    @c.natives.register
    def mark(env):
        seen.append(env.daemon.name)
        return 0

    c.inject(HELLO, daemon="host0")
    c.run_to_quiescence()
    return seen


class TestCluster:
    def test_single_import_runnable(self):
        c = repro.cluster(4)
        seen = _run_hello(c)
        # create(ALL) replicates onto every *neighbouring* daemon.
        assert sorted(seen) == ["host1", "host2", "host3"]
        assert c.now > 0

    def test_shape(self):
        c = repro.cluster(3, name_prefix="ws")
        assert len(c) == 3
        assert c.host_names == ["ws0", "ws1", "ws2"]
        assert c.host("ws1").name == "ws1"
        assert c.n_tracks == 4  # 3 hosts + the wire

    def test_layers_are_lazy(self):
        c = repro.cluster(2)
        assert c._messengers is None and c._mp is None
        c.messengers
        assert c._messengers is not None and c._mp is None
        c.mp
        assert c._mp is not None

    def test_mixed_layers_share_the_wire(self):
        c = repro.cluster(2)

        def task(ctx):
            yield from ctx.compute(1000)
            ctx.exit()

        tid = c.spawn(task)
        c.mp.run_until_task(tid)
        _run_hello(c)
        assert c.messengers.network is c.mp.network

    def test_ring_topology(self):
        c = repro.cluster(4, topology="ring")
        graph = c.messengers.daemon_graph
        # In a 4-ring each daemon has exactly 2 neighbours.
        for name in c.host_names:
            assert len(graph.neighbors(name)) == 2

    def test_ethernet_topology_is_complete(self):
        c = repro.cluster(4)
        graph = c.messengers.daemon_graph
        for name in c.host_names:
            assert len(graph.neighbors(name)) == 3

    def test_prebuilt_daemon_network(self):
        base = repro.cluster(3)
        graph = repro.DaemonNetwork.ring(base.host_names)
        c = repro.Cluster(3, topology=graph)
        assert c.messengers.daemon_graph is graph

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            repro.cluster(2, topology="torus")

    def test_custom_costs(self):
        from dataclasses import replace

        slow = replace(repro.DEFAULT_COSTS, hop_dispatch_s=10e-3)
        fast = repro.cluster(2)
        slowc = repro.cluster(2, costs=slow)
        _run_hello(fast)
        _run_hello(slowc)
        assert slowc.now > fast.now
        assert slowc.costs is slow

    def test_shell_and_tracer(self):
        c = repro.cluster(2)
        tracer = c.tracer()
        shell = c.shell()
        out = shell.execute("inject! { f() { create(ALL); } }")
        assert "injected" in out
        shell.execute("run")
        assert len(tracer.events) > 0


class TestClusterMetrics:
    def test_metrics_off_by_default(self):
        c = repro.cluster(2)
        assert c.metrics is None
        assert c.snapshot() == {}
        with pytest.raises(RuntimeError):
            c.breakdown()

    def test_metrics_true_builds_registry(self):
        c = repro.cluster(2, metrics=True)
        _run_hello(c)
        assert c.snapshot()["des.events_executed"] > 0
        breakdown = c.breakdown()
        assert breakdown["n_tracks"] == 3
        assert breakdown["accounted_s"] > 0
        # The hello run interprets MCL and dispatches hops (no numpy
        # compute), so those categories must appear in the report.
        assert "interpretation" in c.report()
        assert "dispatch" in c.report()

    def test_metrics_accepts_registry(self):
        registry = repro.MetricsRegistry(opcode_counts=True)
        c = repro.cluster(2, metrics=registry)
        assert c.metrics is registry
        _run_hello(c)
        assert any("opcode=" in name for name in registry.snapshot())


class TestExperiment:
    def test_fluent_run(self):
        result = (
            repro.Experiment()
            .hosts(3)
            .topology("ring")
            .metrics()
            .run(_run_hello)
        )
        assert sorted(result.value) == ["host1", "host2"]
        assert result.elapsed_s > 0
        assert result.breakdown is not None
        assert "virtual-time cost breakdown" in result.report()
        assert result.cluster is not None

    def test_without_metrics(self):
        result = repro.Experiment().hosts(2).run(_run_hello)
        assert result.breakdown is None
        assert result.report() == ""
        assert result.snapshot == {}

    def test_build_only(self):
        c = repro.Experiment().hosts(5).name_prefix("n").build()
        assert len(c) == 5
        assert c.host_names[0] == "n0"


class TestTopLevelExports:
    def test_facade_names(self):
        for name in ("cluster", "Cluster", "Experiment", "ExperimentResult"):
            assert hasattr(repro, name)

    def test_layer_names(self):
        for name in (
            "Simulator", "MessengersSystem", "MessagePassingSystem",
            "DaemonNetwork", "NativeRegistry", "Shell", "Tracer",
            "PackBuffer", "UnpackBuffer", "Network", "build_lan",
            "CostModel", "CacheModel", "DEFAULT_COSTS", "sparc5_costs",
        ):
            assert hasattr(repro, name)

    def test_obs_names(self):
        for name in (
            "CATEGORIES", "MetricsRegistry", "cost_breakdown",
            "format_breakdown", "to_chrome_trace", "to_jsonl",
            "dump_chrome_trace",
        ):
            assert hasattr(repro, name)

    def test_all_is_sorted_and_complete(self):
        assert repro.__all__ == sorted(repro.__all__)
        for name in repro.__all__:
            assert hasattr(repro, name)


class TestLongFormStillWorks:
    def test_manual_construction(self):
        from repro.des import Simulator
        from repro.messengers import MessengersSystem
        from repro.netsim import build_lan

        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 2))
        system.inject("f() { create(ALL); }")
        system.run_to_quiescence()
        assert system.logical.node_count() == 3
