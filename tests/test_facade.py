"""The one-call facade: repro.cluster(...) and repro.Experiment.

The acceptance bar from the API redesign: ``import repro;
repro.cluster(4)`` must yield a runnable system with no other imports,
while the long-form construction (Simulator + build_lan +
MessengersSystem) keeps working unchanged.
"""

import pytest

import repro

HELLO = """
hello() {
    create(ALL);
    mark();
}
"""


def _run_hello(c):
    seen = []

    @c.natives.register
    def mark(env):
        seen.append(env.daemon.name)
        return 0

    c.inject(HELLO, daemon="host0")
    c.run_to_quiescence()
    return seen


class TestCluster:
    def test_single_import_runnable(self):
        c = repro.cluster(4)
        seen = _run_hello(c)
        # create(ALL) replicates onto every *neighbouring* daemon.
        assert sorted(seen) == ["host1", "host2", "host3"]
        assert c.now > 0

    def test_shape(self):
        c = repro.cluster(3, config=repro.ClusterConfig(name_prefix="ws"))
        assert len(c) == 3
        assert c.host_names == ["ws0", "ws1", "ws2"]
        assert c.host("ws1").name == "ws1"
        assert c.n_tracks == 4  # 3 hosts + the wire

    def test_layers_are_lazy(self):
        c = repro.cluster(2)
        assert c._messengers is None and c._mp is None
        c.messengers
        assert c._messengers is not None and c._mp is None
        c.mp
        assert c._mp is not None

    def test_mixed_layers_share_the_wire(self):
        c = repro.cluster(2)

        def task(ctx):
            yield from ctx.compute(1000)
            ctx.exit()

        tid = c.spawn(task)
        c.mp.run_until_task(tid)
        _run_hello(c)
        assert c.messengers.network is c.mp.network

    def test_ring_topology(self):
        c = repro.cluster(config=repro.ClusterConfig(
            n_hosts=4, topology="ring"
        ))
        graph = c.messengers.daemon_graph
        # In a 4-ring each daemon has exactly 2 neighbours.
        for name in c.host_names:
            assert len(graph.neighbors(name)) == 2

    def test_ethernet_topology_is_complete(self):
        c = repro.cluster(4)
        graph = c.messengers.daemon_graph
        for name in c.host_names:
            assert len(graph.neighbors(name)) == 3

    def test_prebuilt_daemon_network(self):
        base = repro.cluster(3)
        graph = repro.DaemonNetwork.ring(base.host_names)
        c = repro.Cluster(3, config=repro.ClusterConfig(topology=graph))
        assert c.messengers.daemon_graph is graph

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            repro.ClusterConfig(topology="torus")

    def test_custom_costs(self):
        from dataclasses import replace

        slow = replace(repro.DEFAULT_COSTS, hop_dispatch_s=10e-3)
        fast = repro.cluster(2)
        slowc = repro.cluster(2, config=repro.ClusterConfig(costs=slow))
        _run_hello(fast)
        _run_hello(slowc)
        assert slowc.now > fast.now
        assert slowc.costs is slow

    def test_shell_and_tracer(self):
        c = repro.cluster(2)
        tracer = c.tracer()
        shell = c.shell()
        out = shell.execute("inject! { f() { create(ALL); } }")
        assert "injected" in out
        shell.execute("run")
        assert len(tracer.events) > 0


class TestClusterMetrics:
    def test_metrics_off_by_default(self):
        c = repro.cluster(2)
        assert c.metrics is None
        assert c.snapshot() == {}
        with pytest.raises(RuntimeError):
            c.breakdown()

    def test_metrics_true_builds_registry(self):
        c = repro.cluster(2, config=repro.ClusterConfig(metrics=True))
        _run_hello(c)
        assert c.snapshot()["des.events_executed"] > 0
        breakdown = c.breakdown()
        assert breakdown["n_tracks"] == 3
        assert breakdown["accounted_s"] > 0
        # The hello run interprets MCL and dispatches hops (no numpy
        # compute), so those categories must appear in the report.
        assert "interpretation" in c.report()
        assert "dispatch" in c.report()

    def test_metrics_accepts_registry(self):
        registry = repro.MetricsRegistry(opcode_counts=True)
        c = repro.cluster(2, config=repro.ClusterConfig(metrics=registry))
        assert c.metrics is registry
        _run_hello(c)
        assert any("opcode=" in name for name in registry.snapshot())


class TestExperiment:
    def test_fluent_run(self):
        result = (
            repro.Experiment()
            .hosts(3)
            .topology("ring")
            .metrics()
            .run(_run_hello)
        )
        assert sorted(result.value) == ["host1", "host2"]
        assert result.elapsed_s > 0
        assert result.breakdown is not None
        assert "virtual-time cost breakdown" in result.report()
        assert result.cluster is not None

    def test_without_metrics(self):
        result = repro.Experiment().hosts(2).run(_run_hello)
        assert result.breakdown is None
        assert result.report() == ""
        assert result.snapshot == {}

    def test_build_only(self):
        c = repro.Experiment().hosts(5).name_prefix("n").build()
        assert len(c) == 5
        assert c.host_names[0] == "n0"


class TestClusterConfig:
    def test_defaults(self):
        config = repro.ClusterConfig()
        assert config.n_hosts == 4
        assert config.topology == "ethernet"
        assert config.mailbox is None

    def test_rejects_bad_host_count(self):
        with pytest.raises(ValueError, match="at least one host"):
            repro.ClusterConfig(n_hosts=0)

    def test_explicit_n_hosts_overrides_config(self):
        c = repro.Cluster(6, config=repro.ClusterConfig(n_hosts=2))
        assert len(c) == 6

    def test_is_frozen(self):
        config = repro.ClusterConfig()
        with pytest.raises(Exception):
            config.n_hosts = 9

    def test_mailbox_config_helper(self):
        assert repro.ClusterConfig(
            mailbox=True
        ).mailbox_config() == repro.MailboxConfig()
        custom = repro.MailboxConfig(poll_interval_s=0.5)
        assert repro.ClusterConfig(
            mailbox=custom
        ).mailbox_config() is custom

    def test_mailbox_armed_eagerly_from_config(self):
        c = repro.Cluster(config=repro.ClusterConfig(n_hosts=2,
                                                     mailbox=True))
        assert c._mail is not None
        assert c.mail.config == repro.MailboxConfig()


class TestDeprecationShims:
    """Pre-1.3 keyword call sites keep working, loudly."""

    def test_legacy_kwargs_warn_and_fold_into_config(self):
        with pytest.warns(DeprecationWarning, match="ClusterConfig"):
            c = repro.cluster(3, topology="ring", name_prefix="ws")
        assert c.config.topology == "ring"
        assert c.host_names == ["ws0", "ws1", "ws2"]

    def test_legacy_cluster_class_warns_too(self):
        with pytest.warns(DeprecationWarning):
            c = repro.Cluster(2, metrics=True)
        assert c.metrics is not None

    def test_unknown_kwarg_is_an_error(self):
        with pytest.raises(TypeError, match="unknown Cluster arguments"):
            repro.cluster(2, topologee="ring")

    def test_config_plus_legacy_is_an_error(self):
        with pytest.raises(TypeError, match="not both"):
            repro.cluster(
                2, config=repro.ClusterConfig(), topology="ring"
            )


class TestMailboxFacade:
    def test_mail_layer_is_lazy(self):
        c = repro.cluster(2)
        assert c._mail is None
        assert c.mail_stats == {}
        c.mail
        assert c._mail is not None

    def test_send_and_consume_through_the_facade(self):
        c = repro.cluster(config=repro.ClusterConfig(
            n_hosts=2, mailbox=repro.MailboxConfig(poll_interval_s=0.01)
        ))
        got = []
        node = c.add_node("inbox", daemon="host1")
        c.consumer(node, lambda mail: got.append(mail.body))
        c.send_mail("inbox", "ping")
        c.broadcast("pong")
        c.run_to_quiescence()
        assert sorted(got) == ["ping", "pong"]
        assert c.mail_stats["read"] == 2
        assert "mail" in repr(c)

    def test_mailbox_invariants_armed_with_resilience(self):
        from repro.resilience import ResiliencePolicy

        c = repro.Cluster(config=repro.ClusterConfig(
            n_hosts=2, mailbox=True, resilience=ResiliencePolicy()
        ))
        names = [
            invariant.name
            for invariant in c.resilience.monitor.invariants
        ]
        assert "no-lost-mail" in names
        assert "no-double-read" in names


class TestChurnFacade:
    def test_join_host_names_itself(self):
        c = repro.cluster(2)
        daemon = c.join_host()
        assert daemon.name == "host2"
        assert "host2" in c.host_names
        assert "host2" in c.messengers.daemons

    def test_leave_then_rejoin_revives_in_place(self):
        c = repro.cluster(3)
        c.messengers  # build the daemon layer
        c.leave_host("host1")
        assert c.messengers.daemons["host1"].retired
        c.join_host("host1")
        assert not c.messengers.daemons["host1"].retired

    def test_schedule_runs_at_simulated_time(self):
        c = repro.cluster(2)
        fired = []
        c.schedule(0.25, lambda c: fired.append(c.now))
        c.run()
        assert fired == [pytest.approx(0.25)]

    def test_add_node_rejects_unknown_daemon(self):
        c = repro.cluster(2)
        with pytest.raises(KeyError):
            c.add_node("peer", daemon="nonexistent")


class TestExperimentBuilderAudit:
    """Every builder step returns the same Experiment instance."""

    def test_every_step_returns_self(self):
        from repro.resilience import ResiliencePolicy

        experiment = repro.Experiment()
        steps = [
            ("config", (repro.ClusterConfig(),)),
            ("hosts", (3,)),
            ("topology", ("ring",)),
            ("costs", (repro.DEFAULT_COSTS,)),
            ("cpu_scale", (2.0,)),
            ("metrics", ()),
            ("faults", (repro.FaultPlan(),)),
            ("seed", (5,)),
            ("resilience", (ResiliencePolicy(),)),
            ("mailbox", ()),
            ("name_prefix", ("n",)),
        ]
        for name, args in steps:
            assert getattr(experiment, name)(*args) is experiment, name

    def test_experiment_config_and_mailbox_steps(self):
        c = (
            repro.Experiment()
            .config(repro.ClusterConfig(n_hosts=2))
            .mailbox(repro.MailboxConfig(poll_interval_s=0.02))
            .build()
        )
        assert len(c) == 2
        assert c.mail.config.poll_interval_s == 0.02


class TestTopLevelExports:
    def test_facade_names(self):
        for name in (
            "cluster", "Cluster", "ClusterConfig", "Experiment",
            "ExperimentResult",
        ):
            assert hasattr(repro, name)

    def test_mailbox_names(self):
        for name in (
            "Mail", "Mailbox", "MailboxConfig", "MailboxService",
            "NoLostMail", "NoDoubleRead",
        ):
            assert hasattr(repro, name)
            assert name in repro.__all__

    def test_layer_names(self):
        for name in (
            "Simulator", "MessengersSystem", "MessagePassingSystem",
            "DaemonNetwork", "NativeRegistry", "Shell", "Tracer",
            "PackBuffer", "UnpackBuffer", "Network", "build_lan",
            "CostModel", "CacheModel", "DEFAULT_COSTS", "sparc5_costs",
        ):
            assert hasattr(repro, name)

    def test_obs_names(self):
        for name in (
            "CATEGORIES", "MetricsRegistry", "cost_breakdown",
            "format_breakdown", "to_chrome_trace", "to_jsonl",
            "dump_chrome_trace",
        ):
            assert hasattr(repro, name)

    def test_all_is_sorted_and_complete(self):
        assert repro.__all__ == sorted(repro.__all__)
        for name in repro.__all__:
            assert hasattr(repro, name)


class TestLongFormStillWorks:
    def test_manual_construction(self):
        from repro.des import Simulator
        from repro.messengers import MessengersSystem
        from repro.netsim import build_lan

        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 2))
        system.inject("f() { create(ALL); }")
        system.run_to_quiescence()
        assert system.logical.node_count() == 3
