"""Coverage for remaining corners: groups, transport edges, reprs."""

import pytest

from repro.des import Simulator
from repro.mp import GroupRegistry, MessagePassingSystem
from repro.netsim import CostModel, Packet, build_lan
from repro.messengers import MessengersSystem


class TestGroupRegistry:
    @pytest.fixture
    def groups(self):
        return GroupRegistry(Simulator())

    def test_join_is_idempotent(self, groups):
        assert groups.join("g", 10) == 0
        assert groups.join("g", 10) == 0
        assert groups.size("g") == 1

    def test_instance_numbers_are_dense(self, groups):
        assert [groups.join("g", tid) for tid in (5, 6, 7)] == [0, 1, 2]
        assert groups.members("g") == [5, 6, 7]

    def test_leave_shifts_instances(self, groups):
        for tid in (5, 6, 7):
            groups.join("g", tid)
        groups.leave("g", 6)
        assert groups.instance_of("g", 7) == 1
        assert groups.tid_of("g", 1) == 7

    def test_leave_unknown_raises(self, groups):
        with pytest.raises(KeyError):
            groups.leave("g", 99)

    def test_lookup_errors(self, groups):
        groups.join("g", 1)
        with pytest.raises(KeyError):
            groups.tid_of("g", 5)
        with pytest.raises(KeyError):
            groups.instance_of("g", 99)

    def test_barrier_count_mismatch(self, groups):
        groups.barrier("g", 3)
        with pytest.raises(ValueError):
            groups.barrier("g", 4)

    def test_barrier_is_reusable(self):
        sim = Simulator()
        system = MessagePassingSystem(build_lan(sim, 2))
        epochs = []

        def member(ctx, name):
            ctx.join_group("b")
            for epoch in range(3):
                yield from ctx.delay(0.1)
                yield from ctx.barrier("b", 2)
                epochs.append((epoch, name, ctx.now))

        tids = [system.spawn(member, n) for n in "xy"]
        for tid in tids:
            system.run_until_task(tid)
        # both members observed each epoch at the same instant
        times = {}
        for epoch, _name, when in epochs:
            times.setdefault(epoch, set()).add(when)
        assert all(len(ts) == 1 for ts in times.values())


class TestTransportEdges:
    def test_zero_byte_packet(self):
        sim = Simulator()
        net = build_lan(sim, 2)
        net.post(Packet("host0", "host1", "svc", None, 0))
        sim.run()
        assert net.delivered == 1

    def test_many_interleaved_senders_conserve_packets(self):
        sim = Simulator()
        net = build_lan(sim, 4)
        for index in range(40):
            src = f"host{index % 4}"
            dst = f"host{(index + 1) % 4}"
            net.post(Packet(src, dst, "svc", index, 100 * (index % 7)))
        sim.run()
        assert net.delivered == 40
        total = sum(
            len(net.host(f"host{h}").port("svc")) for h in range(4)
        )
        assert total == 40

    def test_enqueue_to_unknown_source_raises(self):
        sim = Simulator()
        net = build_lan(sim, 1)
        with pytest.raises(KeyError):
            net.enqueue(Packet("ghost", "host0", "svc", None, 1))

    def test_wire_time_dominated_by_bandwidth_for_bulk(self):
        sim = Simulator()
        costs = CostModel()
        net = build_lan(sim, 2, costs)
        done = []

        def receiver(sim):
            yield net.receive("host1", "bulk")
            done.append(sim.now)

        sim.process(receiver(sim))
        net.post(Packet("host0", "host1", "bulk", b"", 1_000_000))
        sim.run()
        # ~1 MB over ~1 MB/s: at least one second of wire time.
        assert done[0] > 0.9


class TestReprsAndIntrospection:
    def test_reprs_do_not_crash(self):
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 2))
        messenger = system.inject("f() { create(ALL); }")
        system.run_to_quiescence()
        for obj in (
            sim,
            system,
            system.logical,
            system.daemon("host0"),
            system.daemon_graph,
            system.vtime,
            messenger,
            system.network,
            system.network.segment,
        ):
            assert repr(obj)

    def test_logical_repr_counts(self):
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 3))
        assert "nodes=3" in repr(system.logical)

    def test_ethernet_utilization_after_traffic(self):
        sim = Simulator()
        net = build_lan(sim, 2)
        net.post(Packet("host0", "host1", "svc", None, 50_000))
        sim.run()
        assert 0 < net.segment.utilization() <= 1
