"""Unit tests for smaller pieces: RNG registry, Messenger object,
native registry, vtime edge cases."""

import pytest

from repro.des import RngRegistry, Simulator
from repro.messengers import (
    MessengersSystem,
    NativeRegistry,
    UnknownNativeError,
)
from repro.messengers.mcl import compile_source
from repro.messengers.messenger import Messenger
from repro.messengers.vtime import VirtualTimeError
from repro.netsim import build_lan


class TestRngRegistry:
    def test_same_name_same_stream(self):
        registry = RngRegistry(7)
        assert registry.stream("a") is registry.stream("a")

    def test_reproducible_across_registries(self):
        a = RngRegistry(7).stream("workload").random()
        b = RngRegistry(7).stream("workload").random()
        assert a == b

    def test_streams_are_independent(self):
        registry = RngRegistry(7)
        first = registry.stream("one").random()
        # Drawing from another stream must not perturb the first.
        registry2 = RngRegistry(7)
        registry2.stream("two").random()
        second = registry2.stream("one").random()
        assert first == second

    def test_different_seeds_differ(self):
        assert (
            RngRegistry(1).stream("x").random()
            != RngRegistry(2).stream("x").random()
        )

    def test_reset(self):
        registry = RngRegistry(3)
        first = registry.stream("s").random()
        registry.reset()
        assert registry.stream("s").random() == first


class TestMessengerObject:
    def make(self, **variables):
        program = compile_source("f() { x = 1; hop(); x = 2; }")
        return Messenger(program, variables)

    def test_ids_unique(self):
        assert self.make().id != self.make().id

    def test_state_bytes_includes_variables(self):
        small = self.make()
        big = self.make(payload=[0.0] * 1000)
        assert big.state_bytes() > small.state_bytes() + 7000

    def test_clone_deep_copies_variables(self):
        original = self.make(data=[1, 2, 3])
        replica = original.clone()
        replica.variables["data"].append(4)
        assert original.variables["data"] == [1, 2, 3]

    def test_clone_shares_program(self):
        original = self.make()
        assert original.clone().program is original.program

    def test_kill(self):
        messenger = self.make()
        messenger.kill()
        assert not messenger.alive
        assert messenger.node is None

    def test_repr_in_transit(self):
        assert "in transit" in repr(self.make())


class TestNativeRegistry:
    def test_register_decorator_and_name_override(self):
        registry = NativeRegistry(include_builtins=False)

        @registry.register
        def alpha(env):
            return 1

        registry.register(lambda env: 2, name="beta")
        assert registry.lookup("alpha")(None) == 1
        assert registry.lookup("beta")(None) == 2
        assert "alpha" in registry
        assert registry.names == ["alpha", "beta"]

    def test_unknown_native(self):
        registry = NativeRegistry(include_builtins=False)
        with pytest.raises(UnknownNativeError):
            registry.lookup("missing")

    def test_builtins_present(self):
        registry = NativeRegistry()
        for name in ("abs", "min", "max", "M_log", "node_get", "node_set"):
            assert name in registry

    def test_builtin_math_behaviour(self):
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 1))
        out = {}

        @system.natives.register
        def report(env, a, b, c, d, e):
            out.update(a=a, b=b, c=c, d=d, e=e)
            return 0

        system.inject(
            """
            f() {
                report(abs(0 - 5), min(3, 1, 2), max(3, 1, 2),
                       floor(2.7), sqrt(16));
            }
            """
        )
        system.run_to_quiescence()
        assert out == {"a": 5, "b": 1, "c": 3, "d": 2, "e": 4.0}

    def test_strcat_builtin(self):
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 1))
        out = {}

        @system.natives.register
        def sink(env, s):
            out["s"] = s
            return 0

        system.inject('f() { sink(strcat("node-", 3)); }')
        system.run_to_quiescence()
        assert out["s"] == "node-3"


class TestVtimeEdgeCases:
    def make_system(self, n=2):
        sim = Simulator()
        return MessengersSystem(build_lan(sim, n))

    def test_bad_sched_kind(self):
        system = self.make_system()
        daemon = system.daemon("host0")
        messenger = system.inject("f() { x = 1; }")
        with pytest.raises(VirtualTimeError):
            system.vtime.suspend(daemon, messenger, "bogus", 1.0)
        system.run_to_quiescence()

    def test_dead_messenger_not_woken(self):
        system = self.make_system()
        messenger = system.inject("f() { M_sched_time_abs(5); }")
        # Suspend happens during the run; then kill before the wake.

        def assassin(sim):
            yield sim.timeout(1e-6)
            messenger.kill()
            # account for the killed messenger so quiescence math holds
            system.finished.append((messenger, "killed"))

        system.sim.process(assassin(system.sim))
        system.run_to_quiescence()
        assert messenger.vt == 0.0  # never woken

    def test_pending_count_and_next_wake(self):
        system = self.make_system()
        system.inject("f() { M_sched_time_abs(3); }")
        system.inject("f() { M_sched_time_abs(7); }", daemon="host1")
        # run just far enough for both to suspend
        system.sim.run(until=0.5)
        assert system.vtime.pending_count in (0, 1, 2)
        system.run_to_quiescence()
        assert system.vtime.gvt == 7.0

    def test_active_count_underflow_guard(self):
        system = self.make_system()
        with pytest.raises(RuntimeError):
            system.deactivate()
