"""Unit tests for the daemon network layer."""

import pytest

from repro.messengers import DaemonNetwork


class TestConstruction:
    def test_complete_graph(self):
        net = DaemonNetwork.complete(["a", "b", "c"])
        assert sorted(net.neighbors("a")) == ["b", "c"]
        assert sorted(net.neighbors("b")) == ["a", "c"]
        assert len(net) == 3

    def test_ring(self):
        net = DaemonNetwork.ring(["a", "b", "c", "d"])
        assert sorted(net.neighbors("a")) == ["b", "d"]
        assert sorted(net.neighbors("c")) == ["b", "d"]

    def test_directed_ring(self):
        net = DaemonNetwork.ring(["a", "b", "c"], directed=True)
        assert net.matches("a", ddir="+") == ["b"]
        assert net.matches("a", ddir="-") == ["c"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DaemonNetwork([])

    def test_duplicate_names_deduplicated(self):
        net = DaemonNetwork(["a", "a", "b"])
        assert net.daemons == ["a", "b"]

    def test_link_to_unknown_daemon_rejected(self):
        net = DaemonNetwork(["a"])
        with pytest.raises(KeyError):
            net.add_link("a", "ghost")

    def test_contains(self):
        net = DaemonNetwork(["a"])
        assert "a" in net
        assert "z" not in net


class TestMatching:
    def test_wildcard_matches_neighbors_only(self):
        net = DaemonNetwork(["a", "b", "c"])
        net.add_link("a", "b")
        assert net.matches("a") == ["b"]  # c is not a neighbor

    def test_match_by_daemon_name(self):
        net = DaemonNetwork.complete(["a", "b", "c"])
        assert net.matches("a", dn="c") == ["c"]

    def test_match_by_link_name(self):
        net = DaemonNetwork(["a", "b", "c"])
        net.add_link("a", "b", name="fast")
        net.add_link("a", "c", name="slow")
        assert net.matches("a", dl="fast") == ["b"]

    def test_self_placement_allowed_by_name(self):
        net = DaemonNetwork.complete(["a", "b"])
        assert "a" in net.matches("a", dn="a")

    def test_unknown_source_raises(self):
        net = DaemonNetwork(["a"])
        with pytest.raises(KeyError):
            net.matches("ghost")

    def test_no_duplicate_results_for_parallel_links(self):
        net = DaemonNetwork(["a", "b"])
        net.add_link("a", "b", name="l1")
        net.add_link("a", "b", name="l2")
        assert net.matches("a") == ["b"]
