"""Unit tests for the MCL lexer."""

import pytest

from repro.messengers.mcl import LexError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "EOF"]


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        assert kinds("foo while hop create") == [
            "IDENT",
            "while",
            "hop",
            "create",
            "EOF",
        ]

    def test_numbers(self):
        tokens = tokenize("1 23 4.5 0.25 1e3 2.5e-2")
        assert [t.kind for t in tokens[:-1]] == ["NUMBER"] * 6
        assert [t.text for t in tokens[:-1]] == [
            "1",
            "23",
            "4.5",
            "0.25",
            "1e3",
            "2.5e-2",
        ]

    def test_strings_with_escapes(self):
        tokens = tokenize(r'"row" "a\nb" "say \"hi\""')
        assert [t.text for t in tokens[:-1]] == ["row", "a\nb", 'say "hi"']

    def test_netvars(self):
        tokens = tokenize("$address $last")
        assert [(t.kind, t.text) for t in tokens[:-1]] == [
            ("NETVAR", "address"),
            ("NETVAR", "last"),
        ]

    def test_operators_maximal_munch(self):
        tokens = tokenize("a==b a=b a<=b a++ a&&b")
        ops = [t.kind for t in tokens if t.kind not in ("IDENT", "EOF")]
        assert ops == ["==", "=", "<=", "++", "&&"]

    def test_mod_keyword(self):
        assert kinds("(j - i) mod m")[:-1] == [
            "(",
            "IDENT",
            "-",
            "IDENT",
            ")",
            "mod",
            "IDENT",
        ]


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_line_numbers_across_newlines(self):
        tokens = tokenize("a\nb\n\nc")
        assert [(t.text, t.line) for t in tokens[:-1]] == [
            ("a", 1),
            ("b", 2),
            ("c", 4),
        ]

    def test_line_numbers_after_block_comment(self):
        tokens = tokenize("/* one\ntwo */ x")
        assert tokens[0].line == 2


class TestLexErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_bare_dollar(self):
        with pytest.raises(LexError):
            tokenize("$ x")

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a ` b")

    def test_error_carries_position(self):
        with pytest.raises(LexError) as info:
            tokenize("ok\n   `")
        assert info.value.line == 2
