"""Unit tests for the MCL parser."""

import pytest

from repro.messengers.mcl import ParseError, parse, parse_function
from repro.messengers.mcl import ast


class TestFunctions:
    def test_parameters(self):
        fn = parse_function("f(a, b, c) { x = 1; }")
        assert fn.name == "f"
        assert fn.params == ["a", "b", "c"]

    def test_no_parameters(self):
        fn = parse_function("f() { x = 1; }")
        assert fn.params == []

    def test_multiple_functions(self):
        script = parse("f() { x = 1; } g(y) { z = y; }")
        assert sorted(script.functions) == ["f", "g"]
        assert script.function("g").params == ["y"]

    def test_ambiguous_unnamed_lookup(self):
        script = parse("f() { x = 1; } g() { x = 2; }")
        with pytest.raises(KeyError):
            script.function()

    def test_missing_function_lookup(self):
        script = parse("f() { x = 1; }")
        with pytest.raises(KeyError):
            script.function("nope")

    def test_duplicate_function_rejected(self):
        with pytest.raises(ParseError):
            parse("f() { x = 1; } f() { x = 2; }")

    def test_empty_script_rejected(self):
        with pytest.raises(ParseError):
            parse("   ")


class TestDeclarations:
    def test_node_vars_collected(self):
        fn = parse_function("f() { node a, b; node c; x = 1; }")
        assert fn.node_vars == ["a", "b", "c"]

    def test_node_decl_after_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_function("f() { x = 1; node a; }")


class TestStatements:
    def test_assignment_variants(self):
        fn = parse_function("f() { x = 1; x += 2; x -= 3; x *= 4; x /= 5; }")
        ops = [s.op for s in fn.body.statements]
        assert ops == ["=", "+=", "-=", "*=", "/="]

    def test_increment_decrement(self):
        fn = parse_function("f() { i++; j--; }")
        first, second = fn.body.statements
        assert (first.op, second.op) == ("+=", "-=")

    def test_if_else(self):
        fn = parse_function("f() { if (x > 0) y = 1; else y = 2; }")
        stmt = fn.body.statements[0]
        assert isinstance(stmt, ast.If)
        assert stmt.else_body is not None

    def test_while(self):
        fn = parse_function("f() { while (i < 10) i++; }")
        assert isinstance(fn.body.statements[0], ast.While)

    def test_for_with_all_clauses(self):
        fn = parse_function("f() { for (i = 0; i < 3; i++) x = i; }")
        stmt = fn.body.statements[0]
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None and stmt.step is not None

    def test_for_with_empty_clauses(self):
        fn = parse_function("f() { for (;;) break; }")
        stmt = fn.body.statements[0]
        assert stmt.init is None and stmt.condition is None

    def test_return_with_value(self):
        fn = parse_function("f() { return 1 + 2; }")
        assert isinstance(fn.body.statements[0], ast.Return)

    def test_assignment_expression(self):
        fn = parse_function("f() { while ((task = next()) != 0) use(task); }")
        condition = fn.body.statements[0].condition
        assert isinstance(condition, ast.BinOp)
        assert isinstance(condition.left, ast.AssignExpr)


class TestNavigationParsing:
    def test_hop_defaults(self):
        fn = parse_function("f() { hop(); }")
        spec = fn.body.statements[0].spec
        assert spec.ln is ast.WILDCARD
        assert spec.ll is ast.WILDCARD
        assert spec.ldir == "*"

    def test_hop_full_spec(self):
        fn = parse_function('f() { hop(ln = *; ll = "x"; ldir = -); }')
        spec = fn.body.statements[0].spec
        assert spec.ln is ast.WILDCARD
        assert isinstance(spec.ll, ast.Str) and spec.ll.value == "x"
        assert spec.ldir == "-"

    def test_hop_with_netvar_link(self):
        fn = parse_function("f() { hop(ll = $last); }")
        spec = fn.body.statements[0].spec
        assert isinstance(spec.ll, ast.NetVar)

    def test_hop_to_init(self):
        fn = parse_function("f() { hop(ln = init; ll = virtual); }")
        spec = fn.body.statements[0].spec
        assert spec.ln.value == "init"
        assert spec.ll.value == "virtual"

    def test_hop_bad_field_rejected(self):
        with pytest.raises(ParseError):
            parse_function("f() { hop(dn = *); }")

    def test_delete_statement(self):
        fn = parse_function('f() { delete(ll = "temp"); }')
        assert isinstance(fn.body.statements[0], ast.Delete)

    def test_create_all(self):
        fn = parse_function("f() { create(ALL); }")
        stmt = fn.body.statements[0]
        assert stmt.all_daemons
        assert len(stmt.items) == 1
        assert stmt.items[0].ln is ast.UNNAMED

    def test_create_named_pairs(self):
        fn = parse_function(
            'f() { create(ln = "a", "b"; ll = "x", "y"); }'
        )
        stmt = fn.body.statements[0]
        assert [item.ln.value for item in stmt.items] == ["a", "b"]
        assert [item.ll.value for item in stmt.items] == ["x", "y"]

    def test_create_broadcast_scalar_fields(self):
        fn = parse_function(
            'f() { create(ln = "a", "b"; ldir = +); }'
        )
        stmt = fn.body.statements[0]
        assert [item.ldir for item in stmt.items] == ["+", "+"]

    def test_create_mismatched_widths_rejected(self):
        with pytest.raises(ParseError):
            parse_function(
                'f() { create(ln = "a", "b", "c"; ll = "x", "y"); }'
            )

    def test_create_with_daemon_spec(self):
        fn = parse_function(
            'f() { create(ln = "w"; dn = "host3"); }'
        )
        item = fn.body.statements[0].items[0]
        assert item.dn.value == "host3"

    def test_ldir_requires_direction_token(self):
        with pytest.raises(ParseError):
            parse_function('f() { hop(ldir = "x"); }')


class TestExpressionPrecedence:
    def test_mod_binds_like_multiplication(self):
        fn = parse_function("f() { x = a + b mod m; }")
        expr = fn.body.statements[0].expr
        assert expr.op == "+"
        assert expr.right.op == "%"

    def test_parenthesized_mod(self):
        fn = parse_function("f() { x = (j - i) mod m; }")
        expr = fn.body.statements[0].expr
        assert expr.op == "%"

    def test_comparison_chain(self):
        fn = parse_function("f() { x = a < b == c; }")
        expr = fn.body.statements[0].expr
        assert expr.op == "=="

    def test_logical_operators(self):
        fn = parse_function("f() { x = a && b || !c; }")
        expr = fn.body.statements[0].expr
        assert expr.op == "||"

    def test_unary_minus(self):
        fn = parse_function("f() { x = -y * 2; }")
        expr = fn.body.statements[0].expr
        assert expr.op == "*"
        assert isinstance(expr.left, ast.UnOp)

    def test_call_arguments(self):
        fn = parse_function("f() { x = g(1, a + 2, \"s\"); }")
        call = fn.body.statements[0].expr
        assert isinstance(call, ast.Call)
        assert len(call.args) == 3

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_function("f() { x = 1 }")
