"""Unit tests for the logical network (nodes, links, navigation calculus)."""

import pytest

from repro.messengers import LogicalNetwork
from repro.messengers.logical import ANY, VIRTUAL


@pytest.fixture
def net():
    return LogicalNetwork()


class TestNodes:
    def test_create_named_node(self, net):
        node = net.create_node("A", "host0")
        assert node.name == "A"
        assert node.daemon == "host0"
        assert node.display_name == "A"
        assert net.contains(node)

    def test_unnamed_node_display(self, net):
        node = net.create_node(None, "host0")
        assert node.display_name.startswith("~")

    def test_matches_wildcard_and_name(self, net):
        node = net.create_node("A", "host0")
        assert node.matches(ANY)
        assert node.matches("A")
        assert not node.matches("B")

    def test_unnamed_matches_display_name(self, net):
        node = net.create_node(None, "host0")
        assert node.matches(node.display_name)

    def test_node_variables_persist(self, net):
        node = net.create_node("A", "host0")
        node.variables["tasks"] = [1, 2, 3]
        assert net.find_named("A")[0].variables["tasks"] == [1, 2, 3]

    def test_nodes_on_daemon(self, net):
        net.create_node("A", "host0")
        net.create_node("B", "host1")
        net.create_node("C", "host0")
        assert {n.name for n in net.nodes_on("host0")} == {"A", "C"}


class TestLinks:
    def test_undirected_link_matches_all_directions(self, net):
        a = net.create_node("A", "host0")
        b = net.create_node("B", "host0")
        link = net.create_link("x", a, b, directed=False)
        for want in ("+", "-", "*"):
            assert link.matches_direction(a, want)
            assert link.matches_direction(b, want)

    def test_directed_link_directions(self, net):
        a = net.create_node("A", "host0")
        b = net.create_node("B", "host0")
        link = net.create_link("x", a, b, directed=True)
        assert link.matches_direction(a, "+")
        assert not link.matches_direction(a, "-")
        assert link.matches_direction(b, "-")
        assert not link.matches_direction(b, "+")
        assert link.matches_direction(a, "*")

    def test_bad_direction_rejected(self, net):
        a = net.create_node("A", "host0")
        b = net.create_node("B", "host0")
        link = net.create_link("x", a, b)
        with pytest.raises(ValueError):
            link.matches_direction(a, "?")

    def test_other_endpoint(self, net):
        a = net.create_node("A", "host0")
        b = net.create_node("B", "host0")
        c = net.create_node("C", "host0")
        link = net.create_link("x", a, b)
        assert link.other(a) is b
        assert link.other(b) is a
        with pytest.raises(ValueError):
            link.other(c)

    def test_neighbors_and_degree(self, net):
        a = net.create_node("A", "host0")
        b = net.create_node("B", "host0")
        c = net.create_node("C", "host0")
        net.create_link("x", a, b)
        net.create_link("y", a, c)
        assert a.degree() == 2
        assert {n.name for n in a.neighbors()} == {"B", "C"}


class TestMatchMoves:
    def make_star(self, net):
        center = net.create_node("c", "host0")
        spokes = []
        for index in range(3):
            spoke = net.create_node(f"s{index}", f"host{index + 1}")
            net.create_link("spoke", center, spoke)
            spokes.append(spoke)
        return center, spokes

    def test_wildcard_matches_all_neighbors(self, net):
        center, spokes = self.make_star(net)
        moves = net.match_moves(center)
        assert {node.name for _link, node in moves} == {"s0", "s1", "s2"}

    def test_filter_by_node_name(self, net):
        center, _ = self.make_star(net)
        moves = net.match_moves(center, node_pattern="s1")
        assert [node.name for _link, node in moves] == ["s1"]

    def test_filter_by_link_name(self, net):
        center, spokes = self.make_star(net)
        extra = net.create_node("e", "host0")
        net.create_link("other", center, extra)
        moves = net.match_moves(center, link_pattern="spoke")
        assert len(moves) == 3

    def test_filter_by_direction(self, net):
        a = net.create_node("A", "host0")
        b = net.create_node("B", "host0")
        c = net.create_node("C", "host0")
        net.create_link("col", a, b, directed=True)  # a -> b
        net.create_link("col", c, a, directed=True)  # c -> a
        forward = net.match_moves(a, link_pattern="col", direction="+")
        backward = net.match_moves(a, link_pattern="col", direction="-")
        assert [n.name for _l, n in forward] == ["B"]
        assert [n.name for _l, n in backward] == ["C"]

    def test_virtual_jump_matches_globally(self, net):
        a = net.create_node("A", "host0")
        net.create_node("far", "host5")
        moves = net.match_moves(a, node_pattern="far", link_pattern=VIRTUAL)
        assert [n.name for link, n in moves] == ["far"]
        assert moves[0][0] is None

    def test_virtual_jump_requires_name(self, net):
        a = net.create_node("A", "host0")
        with pytest.raises(ValueError):
            net.match_moves(a, link_pattern=VIRTUAL)

    def test_no_matches_returns_empty(self, net):
        lonely = net.create_node("L", "host0")
        assert net.match_moves(lonely) == []


class TestDeletion:
    def test_delete_link_collects_singletons(self, net):
        a = net.create_node("A", "host0")
        b = net.create_node("B", "host0")
        link = net.create_link("x", a, b)
        removed = net.delete_link(link)
        assert {n.name for n in removed} == {"A", "B"}
        assert net.node_count() == 0

    def test_delete_link_keeps_connected_nodes(self, net):
        a = net.create_node("A", "host0")
        b = net.create_node("B", "host0")
        c = net.create_node("C", "host0")
        link_ab = net.create_link("x", a, b)
        net.create_link("y", b, c)
        removed = net.delete_link(link_ab)
        assert {n.name for n in removed} == {"A"}
        assert net.contains(b) and net.contains(c)

    def test_init_nodes_never_collected(self, net):
        init = net.create_node("init", "host0")
        b = net.create_node("B", "host0")
        link = net.create_link("x", init, b)
        removed = net.delete_link(link)
        assert net.contains(init)
        assert {n.name for n in removed} == {"B"}

    def test_delete_node_removes_links(self, net):
        a = net.create_node("A", "host0")
        b = net.create_node("B", "host0")
        c = net.create_node("C", "host0")
        net.create_link("x", a, b)
        net.create_link("y", a, c)
        net.delete_node(a)
        assert not net.contains(a)
        assert b.degree() == 0
        assert c.degree() == 0

    def test_links_listing(self, net):
        a = net.create_node("A", "host0")
        b = net.create_node("B", "host0")
        net.create_link("x", a, b)
        assert len(net.links) == 1
