"""repro.mailbox — the delivery lifecycle, exactly-once, and churn.

The acceptance bar from the mailbox issue: exactly-once delivery under
a 5% loss + crash/restart fault plan with lifecycle counters and read
sets bit-identical across reruns; churn (join/leave mid-run, crash
during a broadcast fan-out, re-homing with a non-empty mailbox)
deterministic the same way; and the ``no-lost-mail`` /
``no-double-read`` invariants clean under a 100+ schedule search.
"""

import pytest

import repro
from repro import (
    Cluster,
    ClusterConfig,
    FaultPlan,
    Mail,
    MailboxConfig,
)
from repro.mailbox import LIFECYCLE, NoLiveDaemonError
from repro.perf import TraceHasher
from repro.resilience import ResiliencePolicy, ScheduleSearcher


def build(n_hosts=4, plan=None, seed=7, poll=0.01, resilience=None):
    return Cluster(config=ClusterConfig(
        n_hosts=n_hosts,
        mailbox=MailboxConfig(poll_interval_s=poll),
        faults=plan,
        seed=seed,
        resilience=resilience,
    ))


class TestLifecycle:
    def test_order(self):
        assert LIFECYCLE == ("sent", "delivered", "seen", "processed",
                             "read")

    def test_stages_walk_forward(self):
        c = build()
        got = []
        node = c.add_node("peer", daemon="host1")
        c.consumer(node, lambda mail: got.append(mail.body))
        mail = c.send_mail("peer", {"x": 1})
        assert mail.status == "sent"
        c.run_to_quiescence()
        assert got == [{"x": 1}]
        assert mail.status == "read"
        assert mail.delivered_s is not None
        assert mail.delivered_s >= mail.sent_s
        stats = c.mail_stats
        assert stats["sent"] == stats["delivered"] == stats["read"] == 1

    def test_lifecycle_is_monotonic(self):
        mail = Mail(id=1, sender="u", to_uid=1, subject="", body=0,
                    sent_s=0.0)
        assert mail.advance("delivered")
        assert not mail.advance("sent")
        assert not mail.advance("delivered")
        assert mail.status == "delivered"

    def test_body_is_isolated_at_send_time(self):
        c = build()
        got = []
        node = c.add_node("peer", daemon="host1")
        c.consumer(node, lambda mail: got.append(mail.body))
        payload = {"items": [1]}
        c.send_mail("peer", payload)
        payload["items"].append(2)  # after the send: invisible
        c.run_to_quiescence()
        assert got == [{"items": [1]}]

    def test_second_read_is_refused_and_counted(self):
        c = build()
        node = c.add_node("peer", daemon="host1")
        c.consumer(node, lambda mail: None)
        mail = c.send_mail("peer", "once")
        c.run_to_quiescence()
        box = c.mailbox("peer")
        with pytest.raises(ValueError, match="already read"):
            box.read(mail)
        assert c.mail_stats["double_reads"] == 1
        assert mail.read_count == 2

    def test_lifecycle_counts_are_cumulative(self):
        c = build()
        node = c.add_node("peer", daemon="host1")
        c.consumer(node, lambda mail: None)
        c.send_mail("peer", 1)
        c.send_mail("peer", 2)
        c.run_to_quiescence()
        assert c.mail.lifecycle_counts() == dict.fromkeys(LIFECYCLE, 2)


class TestBroadcast:
    def test_fanout_reaches_every_mailbox_once(self):
        c = build()
        got = []
        for index in range(3):
            node = c.add_node(f"p{index}", daemon=f"host{index}")
            c.consumer(
                node,
                lambda mail, i=index: got.append((i, mail.body)),
            )
        mails = c.broadcast("sync", subject="round")
        assert len(mails) == 3
        assert len({m.bcast_id for m in mails}) == 1
        c.run_to_quiescence()
        assert sorted(got) == [(0, "sync"), (1, "sync"), (2, "sync")]

    def test_sender_is_excluded_by_default(self):
        c = build()
        a = c.add_node("a", daemon="host0")
        c.add_node("b", daemon="host1")
        c.mailbox("a"), c.mailbox("b")
        mails = c.broadcast("hi", frm=a)
        assert [m.to_uid for m in mails] != []
        assert all(m.to_uid != a.uid for m in mails)
        assert all(m.sender == "a" for m in mails)

    def test_duplicate_broadcast_copy_is_deduped(self):
        c = build()
        node = c.add_node("peer", daemon="host1")
        c.consumer(node, lambda mail: None)
        [mail] = c.broadcast("once")
        c.run_to_quiescence()
        replay = Mail(id=999, sender=mail.sender, to_uid=mail.to_uid,
                      subject="", body="once", sent_s=0.0,
                      bcast_id=mail.bcast_id)
        assert not c.mailbox(node).deliver(replay, c.now)
        assert len(c.mailbox(node)) == 1


class TestExactlyOnceUnderFaults:
    """5% loss + a crash/restart of host2, mail aimed at its nodes."""

    N_MAILS = 24

    def _run(self, seed=7):
        plan = (
            FaultPlan()
            .drop(0.05)
            .crash("host2", at=0.02)
            .restart("host2", at=0.08)
        )
        c = build(plan=plan, seed=seed, resilience=ResiliencePolicy())
        hasher = TraceHasher()
        c.sim.trace_hash = hasher
        got = []
        for index in range(4):
            node = c.add_node(f"p{index}", daemon=f"host{index}")
            c.consumer(
                node, lambda mail: got.append((mail.to_uid, mail.id))
            )
        for index in range(self.N_MAILS):
            c.schedule(
                0.002 * (index + 1),
                lambda c, i=index: c.send_mail(f"p{i % 4}", {"task": i}),
            )
        c.run_to_quiescence()
        c.resilience.check_final()  # no-lost-mail / no-double-read
        return {
            "got": tuple(sorted(got)),
            "counts": tuple(sorted(c.mail_stats.items())),
            "lifecycle": tuple(sorted(c.mail.lifecycle_counts().items())),
            "read_digest": c.mail.read_digest(),
            "trace": hasher.hexdigest(),
            "makespan": c.now,
        }

    def test_every_mail_read_exactly_once(self):
        result = self._run()
        assert len(result["got"]) == self.N_MAILS
        assert len(set(result["got"])) == self.N_MAILS
        counts = dict(result["counts"])
        assert counts["sent"] == counts["delivered"] == self.N_MAILS
        assert counts["read"] == self.N_MAILS
        assert "double_reads" not in counts
        assert dict(result["lifecycle"]) == dict.fromkeys(
            LIFECYCLE, self.N_MAILS
        )

    def test_bit_identical_across_reruns(self):
        first, second = self._run(seed=7), self._run(seed=7)
        assert first == second  # counters, read set, event trace, time

    def test_different_seed_is_a_different_schedule(self):
        # Sanity: the determinism above is not vacuous.
        assert self._run(seed=7)["trace"] != self._run(seed=8)["trace"]


class TestChurn:
    def _churn_run(self, seed=7, join_at=0.012, leave_at=0.03):
        c = build(seed=seed, resilience=ResiliencePolicy())
        hasher = TraceHasher()
        c.sim.trace_hash = hasher
        got = []
        for index in range(4):
            node = c.add_node(f"p{index}", daemon=f"host{index}")
            c.consumer(
                node, lambda mail: got.append((mail.to_uid, mail.id))
            )
        for index in range(20):
            c.schedule(
                0.002 * (index + 1),
                lambda c, i=index: c.send_mail(f"p{i % 4}", i),
            )
        if join_at is not None:
            c.schedule(join_at, lambda c: c.join_host())
        if leave_at is not None:
            c.schedule(leave_at, lambda c: c.leave_host("host1"))
        c.run_to_quiescence()
        c.resilience.check_final()
        return c, tuple(sorted(got)), hasher.hexdigest()

    def test_join_and_leave_with_in_flight_mail(self):
        c, got, _ = self._churn_run()
        assert len(got) == 20 and len(set(got)) == 20
        assert "host4" in c.host_names  # joined
        assert c.messengers.daemons["host1"].retired  # left
        # host1's nodes re-homed; their mailboxes followed.
        assert c.mailbox("p1").node.daemon != "host1"
        assert c.mail_stats["delivered"] == 20

    def test_churn_is_bit_identical_across_reruns(self):
        _, got_a, trace_a = self._churn_run(seed=7)
        _, got_b, trace_b = self._churn_run(seed=7)
        assert got_a == got_b
        assert trace_a == trace_b

    def test_crash_during_broadcast_fanout(self):
        def run():
            plan = FaultPlan().crash("host2", at=0.0101).restart(
                "host2", at=0.05
            )
            c = build(plan=plan, resilience=ResiliencePolicy())
            hasher = TraceHasher()
            c.sim.trace_hash = hasher
            got = []
            for index in range(4):
                node = c.add_node(f"p{index}", daemon=f"host{index}")
                c.consumer(
                    node,
                    lambda mail, i=index: got.append((i, mail.bcast_id)),
                )
            # The fan-out leaves the wire just before host2 dies: its
            # copy is replayed; dedup must keep delivery single.
            c.schedule(0.01, lambda c: c.broadcast("all-hands"))
            c.run_to_quiescence()
            c.resilience.check_final()
            return c, sorted(got), hasher.hexdigest()

        c, got, trace = run()
        assert got == [(0, 1), (1, 1), (2, 1), (3, 1)]
        counts = c.mail_stats
        assert counts["delivered"] == 4
        assert "double_reads" not in counts
        _, got_b, trace_b = run()
        assert (got, trace) == (got_b, trace_b)

    def test_rehoming_preserves_a_non_empty_mailbox(self):
        c = build()
        c.add_node("peer", daemon="host1")
        kept = c.send_mail("peer", "before churn")
        c.run_to_quiescence()
        box = c.mailbox("peer")
        assert [m.body for m in box.unread()] == ["before churn"]

        c.leave_host("host1")
        assert box.node.daemon != "host1"
        later = c.send_mail("peer", "after churn")
        c.run_to_quiescence()
        assert [m.body for m in box.mails] == ["before churn",
                                               "after churn"]
        assert kept.status == "delivered"  # untouched by the re-homing
        assert later.status == "delivered"
        assert c.mail_stats.get("redispatched", 0) == 0  # ledger was empty


class TestPollConsumers:
    def test_drain_happens_on_poll_ticks(self):
        c = build(poll=0.05)
        got = []
        node = c.add_node("peer", daemon="host1")
        c.consumer(node, lambda mail: got.append((c.now, mail.body)))
        c.send_mail("peer", "a")
        c.send_mail("peer", "b")
        c.run_to_quiescence()
        assert [body for _, body in got] == ["a", "b"]
        for when, _ in got:
            ticks = when / 0.05
            assert ticks == pytest.approx(round(ticks))
        assert c.mail_stats["poll_batches"] == 1  # one batch drained both

    def test_poll_interval_must_be_positive(self):
        c = build()
        node = c.add_node("peer", daemon="host1")
        with pytest.raises(ValueError, match="positive"):
            c.consumer(node, lambda mail: None, poll_interval_s=0.0)
        with pytest.raises(ValueError, match="positive"):
            MailboxConfig(poll_interval_s=-1.0)


class TestDeadCluster:
    def test_send_with_every_daemon_dead_raises_typed_error(self):
        c = build(n_hosts=2)
        c.add_node("peer", daemon="host0")
        for daemon in c.messengers.daemons.values():
            daemon.dead = True
        with pytest.raises(NoLiveDaemonError, match="no live daemon"):
            c.send_mail("peer", "into the void")

    def test_send_with_every_daemon_retired_raises_typed_error(self):
        c = build(n_hosts=2)
        c.add_node("peer", daemon="host0")
        for daemon in c.messengers.daemons.values():
            daemon.retired = True
        with pytest.raises(NoLiveDaemonError, match="dead or retired"):
            c.send_mail("peer", "into the void")

    def test_error_is_a_simulation_error(self):
        from repro.des import SimulationError

        assert issubclass(NoLiveDaemonError, SimulationError)


class TestNatives:
    def test_send_recv_ack_round_trip(self):
        c = build()
        target = c.daemon("host1").init_node
        c.inject(
            f"sender() {{ M_send({target.uid}, 41, \"task\"); }}",
            daemon="host0",
        )
        c.run_to_quiescence()
        box = c.mailbox(target)
        assert [m.body for m in box.unseen()] == [41]
        c.inject(
            "reader() { n = M_inbox(); b = M_recv(); M_ack(); }",
            daemon="host1",
        )
        c.run_to_quiescence()
        [mail] = box.mails
        assert mail.status == "read"
        stats = c.mail_stats
        assert stats["read"] == stats["delivered"] == 1

    def test_recv_and_ack_on_empty_mailbox_are_noops(self):
        c = build()
        c.inject("idle() { b = M_recv(); a = M_ack(); }", daemon="host0")
        c.run_to_quiescence()
        assert "read" not in c.mail_stats

    def test_bcast_native_fans_out(self):
        c = build()
        for index in range(3):
            c.mailbox(c.daemon(f"host{index}").init_node)
        c.inject("all() { M_bcast(9, \"ping\"); }", daemon="host0")
        c.run_to_quiescence()
        assert c.mail_stats["broadcasts"] == 1
        assert c.mail_stats["delivered"] >= 2


class TestScheduleSearch:
    """The searcher attacks the lifecycle; the invariants must hold."""

    def test_invariants_clean_over_100_schedules(self):
        def runner(plan, seed):
            c = build(plan=plan, seed=seed,
                      resilience=ResiliencePolicy())
            for index in range(3):
                node = c.add_node(
                    f"p{index}", daemon=f"host{index + 1}"
                )
                c.consumer(node, lambda mail: None)
            for index in range(12):
                c.schedule(
                    0.002 * (index + 1),
                    lambda c, i=index: c.send_mail(f"p{i % 3}", i),
                )
            c.schedule(0.015, lambda c: c.broadcast("mid-run"))
            c.run_to_quiescence()
            c.resilience.check_final()

        clean = build()
        for index in range(3):
            node = clean.add_node(f"p{index}",
                                  daemon=f"host{index + 1}")
            clean.consumer(node, lambda mail: None)
        clean.send_mail("p0", 0)
        horizon = max(clean.run_to_quiescence(), 0.04)

        # Five crash fractions per host: the atom vocabulary must hold
        # comfortably more than the 120 requested schedules, or the
        # searcher's random-restart phase runs out of fresh schedules.
        searcher = ScheduleSearcher(
            runner,
            ["host1", "host2", "host3"],
            horizon,
            seed=3,
            crash_fractions=(0.2, 0.35, 0.5, 0.65, 0.8),
        )
        report = searcher.search(max_schedules=120, max_depth=2)
        assert report["schedules_run"] >= 100
        assert report["clean"], report["violations"]


class TestSagas:
    """Multi-round request/reply conversations with compensation.

    A saga is an ordered sequence of steps at participant nodes, driven
    by a coordinator over mailbox ``request``/``reply`` (every reply
    carries the conversation's correlation id), with an absolute
    deadline: if it expires mid-saga, the coordinator cancels the saga
    and compensates (undoes) every step that had completed — including
    a step whose ack arrives *after* the cancellation.  Run under churn
    (join + leave of a participant's home) and 5% loss; outcomes and
    read sets must be bit-identical across reruns.
    """

    STEPS = ("svc_a", "svc_b")

    def _run(self, seed=7):
        plan = FaultPlan().drop(0.05)
        c = build(plan=plan, seed=seed, resilience=ResiliencePolicy())
        hasher = TraceHasher()
        c.sim.trace_hash = hasher

        c.add_node("coord", daemon="host0")
        c.add_node("svc_a", daemon="host1")
        c.add_node("svc_b", daemon="host2")

        sagas = {}
        corr = {}  # request mail id -> (sid, step)
        stray_replies = []
        late_acks = []

        def participant(mail):
            body = mail.body
            kind = "ack" if body["kind"] == "do" else "comp-ack"
            c.mail.reply(mail, dict(body, kind=kind))

        c.consumer("svc_a", participant)
        c.consumer("svc_b", participant)

        def send(sid, step, kind):
            mail = c.mail.request(
                step, {"sid": sid, "step": step, "kind": kind},
                frm="coord",
            )
            corr[mail.id] = (sid, step)

        def send_undo(sid, step):
            sagas[sid]["pending"].add(step)
            send(sid, step, "undo")

        def coordinator(mail):
            if corr.get(mail.corr_id) is None:
                stray_replies.append(mail.id)
                return
            body = mail.body
            sid, step = body["sid"], body["step"]
            saga = sagas[sid]
            if body["kind"] == "comp-ack":
                saga["pending"].discard(step)
                if saga["state"] == "compensating" and \
                        not saga["pending"]:
                    saga["state"] = "compensated"
                return
            if saga["state"] != "running":
                # The step finished after cancellation: undo it too.
                late_acks.append((sid, step))
                saga["state"] = "compensating"
                send_undo(sid, step)
                return
            saga["done"].append(step)
            if len(saga["done"]) < len(self.STEPS):
                send(sid, self.STEPS[len(saga["done"])], "do")
            else:
                saga["state"] = "completed"

        c.consumer("coord", coordinator)

        def expire(sid):
            saga = sagas[sid]
            if saga["state"] != "running":
                return
            if not saga["done"]:
                saga["state"] = "expired"
                return
            saga["state"] = "compensating"
            for step in saga["done"]:
                send_undo(sid, step)

        def start_saga(sid, budget):
            def kick(cluster):
                sagas[sid] = {
                    "state": "running", "done": [], "pending": set(),
                }
                send(sid, self.STEPS[0], "do")
                cluster.schedule(
                    cluster.now + budget, lambda cl: expire(sid)
                )
            return kick

        for index in range(5):
            c.schedule(0.002 + 0.01 * index, start_saga(index, 0.08))
        # Doomed saga: its deadline lands between step acks, so the
        # compensation path must run.
        c.schedule(0.005, start_saga(99, 0.02))

        c.schedule(0.012, lambda c: c.join_host())
        c.schedule(0.03, lambda c: c.leave_host("host1"))

        c.run_to_quiescence()
        c.resilience.check_final()
        return {
            "outcomes": {
                sid: saga["state"] for sid, saga in sorted(sagas.items())
            },
            "late": tuple(late_acks),
            "strays": tuple(stray_replies),
            "reads": c.mail.read_digest(),
            "trace": hasher.hexdigest(),
        }

    def test_every_saga_terminates_and_compensation_runs(self):
        result = self._run()
        outcomes = result["outcomes"]
        assert len(outcomes) == 6
        assert set(outcomes.values()) <= {
            "completed", "compensated", "expired"
        }
        assert "compensating" not in outcomes.values()  # none stuck
        assert list(outcomes.values()).count("completed") >= 3
        assert outcomes[99] in ("compensated", "expired")
        assert "compensated" in outcomes.values()
        assert result["strays"] == ()  # every reply stayed correlated

    def test_saga_runs_are_bit_identical(self):
        assert self._run(seed=7) == self._run(seed=7)
        assert self._run(seed=7)["trace"] != self._run(seed=8)["trace"]

    def test_request_and_reply_thread_a_conversation(self):
        c = build()
        c.add_node("asker", daemon="host0")
        c.add_node("oracle", daemon="host1")
        answers = []
        c.consumer("oracle", lambda mail: c.mail.reply(mail, 42))
        c.consumer("asker", lambda mail: answers.append(
            (mail.corr_id, mail.body)
        ))
        request = c.mail.request("oracle", "meaning?", frm="asker")
        assert request.corr_id == request.id
        c.run_to_quiescence()
        assert answers == [(request.id, 42)]

    def test_reply_to_user_mail_is_refused(self):
        c = build()
        c.add_node("peer", daemon="host1")
        mail = c.send_mail("peer", "no return address")
        with pytest.raises(ValueError, match="no reply address"):
            c.mail.reply(mail, "to whom?")
