"""Property-based tests for the MCL language pipeline (hypothesis).

Strategy: generate random *expression ASTs* in textual form together
with an equivalent Python evaluation, compile and run both, and compare
— the VM's arithmetic must agree with C-like reference semantics.
Statement-level properties cover loop counting and variable scoping.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.messengers.mcl import (
    DoneCommand,
    Frame,
    compile_source,
    run,
    tokenize,
)

# -- random integer expressions ------------------------------------------------


@st.composite
def int_expressions(draw, depth=0):
    """(source_text, python_value) pairs for integer expressions."""
    if depth > 3 or draw(st.booleans()):
        value = draw(st.integers(min_value=0, max_value=99))
        return str(value), value
    op = draw(st.sampled_from(["+", "-", "*", "/", "%"]))
    left_src, left_val = draw(int_expressions(depth=depth + 1))
    right_src, right_val = draw(int_expressions(depth=depth + 1))
    if op in ("/", "%"):
        assume(right_val != 0)
    if op == "+":
        value = left_val + right_val
    elif op == "-":
        value = left_val - right_val
    elif op == "*":
        value = left_val * right_val
    elif op == "/":
        value = left_val // right_val  # C integer division
    else:
        value = left_val % right_val
    return f"({left_src} {op} {right_src})", value


def run_script(source):
    program = compile_source(source)
    frame = Frame(program)
    mvars: dict = {}
    command = run(frame, mvars, {}, lambda n: None, lambda n, a: None)
    assert isinstance(command, DoneCommand)
    return mvars


class TestExpressionProperties:
    @given(expr=int_expressions())
    @settings(max_examples=200, deadline=None)
    def test_arithmetic_matches_reference(self, expr):
        source, expected = expr
        mvars = run_script(f"f() {{ result = {source}; }}")
        assert mvars["result"] == expected

    @given(
        a=st.integers(min_value=-100, max_value=100),
        b=st.integers(min_value=-100, max_value=100),
    )
    def test_comparisons_are_total(self, a, b):
        mvars = run_script(
            f"f() {{ lt = {a} < {b}; ge = {a} >= {b}; "
            f"eq = {a} == {b}; ne = {a} != {b}; }}"
        )
        assert mvars["lt"] == int(a < b)
        assert mvars["ge"] == int(a >= b)
        assert mvars["eq"] == int(a == b)
        assert mvars["ne"] == int(a != b)
        assert mvars["lt"] != mvars["ge"]
        assert mvars["eq"] != mvars["ne"]

    @given(x=st.integers(min_value=0, max_value=1000),
           m=st.integers(min_value=1, max_value=50))
    def test_mod_keyword_equals_operator(self, x, m):
        mvars = run_script(
            f"f() {{ kw = {x} mod {m}; op = {x} % {m}; }}"
        )
        assert mvars["kw"] == mvars["op"] == x % m


class TestStatementProperties:
    @given(n=st.integers(min_value=0, max_value=200))
    @settings(deadline=None)
    def test_for_loop_counts_exactly(self, n):
        mvars = run_script(
            f"f() {{ count = 0; for (i = 0; i < {n}; i++) count++; }}"
        )
        assert mvars["count"] == n

    @given(n=st.integers(min_value=0, max_value=100))
    @settings(deadline=None)
    def test_while_equals_for(self, n):
        loop_for = run_script(
            f"f() {{ s = 0; for (i = 0; i < {n}; i++) s += i; }}"
        )
        loop_while = run_script(
            f"f() {{ s = 0; i = 0; while (i < {n}) {{ s += i; i++; }} }}"
        )
        assert loop_for["s"] == loop_while["s"] == n * (n - 1) // 2

    @given(values=st.lists(
        st.integers(min_value=-50, max_value=50), min_size=1, max_size=8,
    ))
    @settings(deadline=None)
    def test_max_via_if_chain(self, values):
        statements = ["best = v0;"]
        for index in range(1, len(values)):
            statements.append(
                f"if (v{index} > best) best = v{index};"
            )
        params = ", ".join(f"v{i}" for i in range(len(values)))
        source = f"f({params}) {{ {' '.join(statements)} }}"
        program = compile_source(source)
        frame = Frame(program)
        mvars = {f"v{i}": v for i, v in enumerate(values)}
        run(frame, mvars, {}, lambda n: None, lambda n, a: None)
        assert mvars["best"] == max(values)


class TestLexerProperties:
    @given(names=st.lists(
        st.from_regex(r"[a-z_][a-z0-9_]{0,10}", fullmatch=True),
        min_size=1, max_size=10,
    ))
    def test_identifier_round_trip(self, names):
        from repro.messengers.mcl.lexer import KEYWORDS

        assume(all(name not in KEYWORDS for name in names))
        tokens = tokenize(" ".join(names))
        assert [t.text for t in tokens[:-1]] == names
        assert all(t.kind == "IDENT" for t in tokens[:-1])

    @given(text=st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd"),
            whitelist_characters=" _",
        ),
        max_size=40,
    ))
    def test_string_literal_round_trip(self, text):
        tokens = tokenize(f'"{text}"')
        assert tokens[0].kind == "STRING"
        assert tokens[0].text == text

    @given(value=st.integers(min_value=0, max_value=10**9))
    def test_integer_literal_round_trip(self, value):
        mvars = run_script(f"f() {{ x = {value}; }}")
        assert mvars["x"] == value


class TestCloneProperties:
    @given(
        pre=st.integers(min_value=0, max_value=20),
        post_a=st.integers(min_value=0, max_value=20),
        post_b=st.integers(min_value=0, max_value=20),
    )
    @settings(deadline=None)
    def test_cloned_frames_diverge_independently(self, pre, post_a, post_b):
        """Cloning at a hop point gives two futures that never alias."""
        source = f"""
        f(extra) {{
            x = {pre};
            hop();
            for (i = 0; i < extra; i++) x++;
        }}
        """
        program = compile_source(source)
        frame_a = Frame(program)
        vars_a = {"extra": post_a}
        run(frame_a, vars_a, {}, lambda n: None, lambda n, a: None)

        frame_b = frame_a.clone()
        vars_b = dict(vars_a)
        vars_b["extra"] = post_b

        run(frame_a, vars_a, {}, lambda n: None, lambda n, a: None)
        run(frame_b, vars_b, {}, lambda n: None, lambda n, a: None)
        assert vars_a["x"] == pre + post_a
        assert vars_b["x"] == pre + post_b
