"""Unit tests for PVM-style pack/unpack buffers and size estimation."""

import numpy as np
import pytest

from repro.mp import PackBuffer, UnpackBuffer, estimate_size


class TestEstimateSize:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, 0),
            (True, 1),
            (7, 8),
            (3.14, 8),
            (b"abcd", 4),
            ("hello", 5),
            ([1, 2, 3], 24),
            ((1.0, 2.0), 16),
            ({"a": 1}, 9),
        ],
    )
    def test_scalars_and_containers(self, value, expected):
        assert estimate_size(value) == expected

    def test_numpy_array(self):
        array = np.zeros((10, 10), dtype=np.float64)
        assert estimate_size(array) == 800

    def test_numpy_scalar(self):
        assert estimate_size(np.float32(1.0)) == 4

    def test_opaque_object(self):
        class Thing:
            pass

        assert estimate_size(Thing()) == 16


class TestPackBuffer:
    def test_counts_bytes(self):
        buf = PackBuffer()
        buf.pack_int(1).pack_double(2.0).pack_string("abc")
        # 8 + 8 + (3 + 8 length header)
        assert buf.nbytes == 27
        assert len(buf) == 3

    def test_pack_array_charges_nbytes(self):
        buf = PackBuffer()
        buf.pack_array(np.ones(100, dtype=np.float64))
        assert buf.nbytes == 800

    def test_pack_ints(self):
        buf = PackBuffer()
        buf.pack_ints([1, 2, 3, 4])
        assert buf.nbytes == 32

    def test_pack_bytes(self):
        buf = PackBuffer()
        buf.pack_bytes(b"\x00" * 64)
        assert buf.nbytes == 64


class TestUnpackBuffer:
    def test_round_trip_in_order(self):
        buf = PackBuffer()
        buf.pack_int(42)
        buf.pack_double(2.5)
        buf.pack_string("msg")
        buf.pack_array(np.arange(3))
        out = UnpackBuffer(buf.items, buf.nbytes)
        assert out.unpack_int() == 42
        assert out.unpack_double() == 2.5
        assert out.unpack_string() == "msg"
        assert list(out.unpack_array()) == [0, 1, 2]
        assert out.remaining == 0

    def test_unpack_past_end_raises(self):
        buf = PackBuffer().pack_int(1)
        out = UnpackBuffer(buf.items, buf.nbytes)
        out.unpack_int()
        with pytest.raises(IndexError):
            out.unpack_int()

    def test_remaining(self):
        buf = PackBuffer().pack_int(1).pack_int(2)
        out = UnpackBuffer(buf.items, buf.nbytes)
        assert out.remaining == 2
        out.unpack_int()
        assert out.remaining == 1
