"""Tests for the matrix-multiplication application (all four versions)."""

import numpy as np
import pytest

from repro.apps.matmul import (
    block_of,
    make_matrices,
    multiply_flops,
    multiply_working_set,
    run_blocked,
    run_messengers,
    run_naive,
    run_pvm,
    set_block,
)


@pytest.fixture(scope="module")
def operands():
    return make_matrices(60, seed=3)


@pytest.fixture(scope="module")
def reference(operands):
    a, b = operands
    return a @ b


class TestKernelHelpers:
    def test_block_round_trip(self, operands):
        a, _ = operands
        block = block_of(a, 1, 2, 20)
        copy = a.copy()
        set_block(copy, 1, 2, 20, np.zeros((20, 20)))
        assert not np.array_equal(copy, a)
        set_block(copy, 1, 2, 20, block)
        assert np.array_equal(copy, a)

    def test_flops_and_working_set(self):
        assert multiply_flops(100) == 2e6
        assert multiply_working_set(100) == 240_000

    def test_matrices_deterministic(self):
        a1, b1 = make_matrices(16, seed=9)
        a2, b2 = make_matrices(16, seed=9)
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)


class TestSequential:
    def test_naive_correct(self, operands, reference):
        a, b = operands
        assert np.allclose(run_naive(a, b).c, reference)

    def test_blocked_correct(self, operands, reference):
        a, b = operands
        for m in (2, 3):
            assert np.allclose(run_blocked(a, b, m).c, reference)

    def test_blocked_requires_divisibility(self, operands):
        a, b = operands
        with pytest.raises(ValueError):
            run_blocked(a, b, 7)

    def test_blocking_speedup_for_large_matrices(self):
        """The paper's ~13% claim (TXT-BLK) — cache model, no actual
        1500x1500 arithmetic needed to check the *cost* ratio."""
        from repro.netsim import DEFAULT_COSTS

        n, m = 1500, 3
        s = n // m
        naive_cost = DEFAULT_COSTS.compute_seconds(
            multiply_flops(n), 3 * n * n * 8
        )
        blocked_cost = (m ** 3) * DEFAULT_COSTS.compute_seconds(
            multiply_flops(s), multiply_working_set(s)
        )
        speedup = naive_cost / blocked_cost
        assert 1.05 < speedup < 1.25  # paper: roughly 13%

    def test_small_matrices_see_no_blocking_gain(self, operands):
        a, b = operands
        naive = run_naive(a, b).seconds
        blocked = run_blocked(a, b, 2).seconds
        assert naive == pytest.approx(blocked, rel=0.01)


class TestDistributedCorrectness:
    def test_pvm_2x2(self, operands, reference):
        a, b = operands
        assert np.allclose(run_pvm(a, b, 2).c, reference)

    def test_pvm_3x3(self, operands, reference):
        a, b = operands
        assert np.allclose(run_pvm(a, b, 3).c, reference)

    def test_messengers_2x2(self, operands, reference):
        a, b = operands
        assert np.allclose(run_messengers(a, b, 2).c, reference)

    def test_messengers_3x3(self, operands, reference):
        a, b = operands
        assert np.allclose(run_messengers(a, b, 3).c, reference)

    def test_messengers_1x1(self, reference, operands):
        a, b = operands
        result = run_messengers(a, b, 1)
        assert np.allclose(result.c, reference)

    def test_pvm_1x1(self, reference, operands):
        a, b = operands
        assert np.allclose(run_pvm(a, b, 1).c, reference)

    def test_divisibility_enforced(self, operands):
        a, b = operands
        with pytest.raises(ValueError):
            run_pvm(a, b, 7)
        with pytest.raises(ValueError):
            run_messengers(a, b, 7)


class TestVirtualTimeCoordination:
    def test_gvt_rounds_scale_with_m(self, operands):
        a, b = operands
        r2 = run_messengers(a, b, 2)
        r3 = run_messengers(a, b, 3)
        # one round per tick and half-tick: ~2m advances
        assert r3.gvt_rounds > r2.gvt_rounds >= 2

    def test_block_transfers_happen(self, operands):
        a, b = operands
        result = run_messengers(a, b, 2)
        # A-distribution: 2 rows x 1; B-rotation: 4 nodes x 2 iterations
        assert result.hops_remote >= 8


class TestPerformanceShape:
    def test_pvm_wins_at_small_blocks(self):
        a, b = make_matrices(60)
        pvm = run_pvm(a, b, 3, cpu_scale=1.55).seconds
        msgr = run_messengers(a, b, 3, cpu_scale=1.55).seconds
        assert pvm < msgr

    def test_messengers_wins_at_large_blocks(self):
        a, b = make_matrices(300)
        pvm = run_pvm(a, b, 3, cpu_scale=1.55).seconds
        msgr = run_messengers(a, b, 3, cpu_scale=1.55).seconds
        assert msgr < pvm

    def test_parallel_speedup_over_blocked(self):
        """Large matrices: 4 processors beat the blocked sequential
        version clearly (Figure 12a's right-hand side)."""
        a, b = make_matrices(600)
        blocked = run_blocked(a, b, 2).seconds
        msgr = run_messengers(a, b, 2).seconds
        assert blocked / msgr > 1.5
