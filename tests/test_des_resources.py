"""Unit tests for Resource / Store / PriorityStore / FilterStore."""

import pytest

from repro.des import (
    FilterStore,
    PriorityStore,
    Resource,
    Simulator,
    SimulationError,
    Store,
)


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_exclusive_access(self, sim):
        cpu = Resource(sim, capacity=1)
        trace = []

        def job(sim, name, hold):
            req = cpu.request()
            yield req
            trace.append((sim.now, name, "start"))
            yield sim.timeout(hold)
            cpu.release(req)
            trace.append((sim.now, name, "end"))

        sim.process(job(sim, "a", 3))
        sim.process(job(sim, "b", 2))
        sim.run()
        assert trace == [
            (0, "a", "start"),
            (3, "a", "end"),
            (3, "b", "start"),
            (5, "b", "end"),
        ]

    def test_capacity_two_runs_concurrently(self, sim):
        link = Resource(sim, capacity=2)
        done = []

        def job(sim, name):
            with link.request() as req:
                yield req
                yield sim.timeout(4)
                done.append((sim.now, name))

        for name in "xyz":
            sim.process(job(sim, name))
        sim.run()
        assert done == [(4, "x"), (4, "y"), (8, "z")]

    def test_count_and_queue_length(self, sim):
        res = Resource(sim, capacity=1)

        def holder(sim):
            req = res.request()
            yield req
            assert res.count == 1
            yield sim.timeout(5)
            res.release(req)

        def contender(sim):
            yield sim.timeout(1)
            req = res.request()
            assert res.queue_length == 1
            yield req
            res.release(req)

        sim.process(holder(sim))
        sim.process(contender(sim))
        sim.run()
        assert res.count == 0
        assert res.queue_length == 0

    def test_cancel_queued_request(self, sim):
        res = Resource(sim, capacity=1)

        def holder(sim):
            req = res.request()
            yield req
            yield sim.timeout(10)
            res.release(req)

        def quitter(sim):
            yield sim.timeout(1)
            req = res.request()
            # changed our mind before being granted
            res.release(req)
            assert res.queue_length == 0

        sim.process(holder(sim))
        sim.process(quitter(sim))
        sim.run()

    def test_release_unknown_request_raises(self, sim):
        a = Resource(sim, capacity=1)
        b = Resource(sim, capacity=1)

        def proc(sim):
            req = a.request()
            yield req
            with pytest.raises(SimulationError):
                b.release(req)
            a.release(req)

        p = sim.process(proc(sim))
        sim.run(until=p)


class TestStore:
    def test_fifo_order(self, sim):
        store = Store(sim)
        got = []

        def producer(sim):
            for k in range(3):
                yield store.put(k)
                yield sim.timeout(1)

        def consumer(sim):
            for _ in range(3):
                got.append((yield store.get()))

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        times = []

        def consumer(sim):
            yield store.get()
            times.append(sim.now)

        def producer(sim):
            yield sim.timeout(7)
            yield store.put("item")

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert times == [7]

    def test_bounded_put_blocks(self, sim):
        store = Store(sim, capacity=1)
        log = []

        def producer(sim):
            yield store.put("a")
            log.append((sim.now, "put-a"))
            yield store.put("b")
            log.append((sim.now, "put-b"))

        def consumer(sim):
            yield sim.timeout(5)
            item = yield store.get()
            log.append((sim.now, f"got-{item}"))

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert log == [(0, "put-a"), (5, "got-a"), (5, "put-b")]

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() == (False, None)

        def proc(sim):
            yield store.put(9)

        sim.process(proc(sim))
        sim.run()
        assert store.try_get() == (True, 9)

    def test_len_and_items(self, sim):
        store = Store(sim)

        def proc(sim):
            yield store.put("a")
            yield store.put("b")

        sim.process(proc(sim))
        sim.run()
        assert len(store) == 2
        assert store.items == ["a", "b"]

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestPriorityStore:
    def test_orders_by_value(self, sim):
        store = PriorityStore(sim)
        got = []

        def producer(sim):
            for item in (5, 1, 3):
                yield store.put(item)

        def consumer(sim):
            yield sim.timeout(1)
            for _ in range(3):
                got.append((yield store.get()))

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert got == [1, 3, 5]

    def test_peek(self, sim):
        store = PriorityStore(sim)
        with pytest.raises(SimulationError):
            store.peek()

        def proc(sim):
            yield store.put((3, "c"))
            yield store.put((1, "a"))

        sim.process(proc(sim))
        sim.run()
        assert store.peek() == (1, "a")
        assert len(store) == 2


class TestFilterStore:
    def test_predicate_matching(self, sim):
        store = FilterStore(sim)
        got = []

        def producer(sim):
            yield store.put(("b", 2))
            yield store.put(("a", 1))

        def consumer(sim):
            item = yield store.get(lambda it: it[0] == "a")
            got.append(item)

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert got == [("a", 1)]
        assert store.items == [("b", 2)]

    def test_waits_for_matching_item(self, sim):
        store = FilterStore(sim)
        times = []

        def consumer(sim):
            yield store.get(lambda it: it == "wanted")
            times.append(sim.now)

        def producer(sim):
            yield store.put("other")
            yield sim.timeout(9)
            yield store.put("wanted")

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert times == [9]
