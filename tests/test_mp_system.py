"""Integration tests for the PVM-workalike: spawn, send/recv, groups."""

import pytest

from repro.des import Simulator
from repro.mp import ANY, MessagePassingSystem, NO_PARENT, PackBuffer
from repro.netsim import CostModel, build_lan


@pytest.fixture
def rig():
    sim = Simulator()
    network = build_lan(sim, 4, CostModel())
    system = MessagePassingSystem(network)
    return sim, network, system


class TestSpawn:
    def test_root_task_runs(self, rig):
        sim, _net, system = rig
        log = []

        def root(ctx):
            log.append(ctx.tid)
            yield from ctx.delay(1)
            return "ok"

        tid = system.spawn(root)
        assert system.run_until_task(tid) == "ok"
        assert log == [tid]
        assert system.task(tid).parent == NO_PARENT

    def test_round_robin_placement(self, rig):
        _sim, net, system = rig

        def noop(ctx):
            yield from ctx.delay(0)

        tids = [system.spawn(noop) for _ in range(4)]
        hosts = [system.task(t).host.name for t in tids]
        assert hosts == net.host_names

    def test_ctx_spawn_charges_cost(self, rig):
        sim, _net, system = rig

        def child(ctx):
            yield from ctx.delay(0)

        def parent(ctx):
            tids = yield from ctx.spawn(child, count=3)
            assert len(tids) == 3
            for tid in tids:
                assert ctx._system.task(tid).parent == ctx.tid

        tid = system.spawn(parent)
        system.run_until_task(tid)
        assert sim.now >= 3 * system.costs.mp_spawn_s

    def test_spawn_with_host_pinning(self, rig):
        _sim, _net, system = rig

        def noop(ctx):
            yield from ctx.delay(0)

        def parent(ctx):
            tids = yield from ctx.spawn(
                noop, count=2, hosts=["host3", "host3"]
            )
            return tids

        tid = system.spawn(parent)
        tids = system.run_until_task(tid)
        assert all(
            system.task(t).host.name == "host3" for t in tids
        )

    def test_unknown_tid_raises(self, rig):
        _sim, _net, system = rig
        with pytest.raises(KeyError):
            system.task(999)


class TestSendRecv:
    def test_ping_pong(self, rig):
        sim, _net, system = rig
        trace = []

        def ponger(ctx):
            msg = yield from ctx.recv()
            trace.append(("pong-got", msg.buffer.unpack_string()))
            yield from ctx.send(msg.src, "pong")

        def pinger(ctx):
            [pong_tid] = yield from ctx.spawn(ponger)
            yield from ctx.send(pong_tid, "ping")
            msg = yield from ctx.recv(src=pong_tid)
            trace.append(("ping-got", msg.buffer.unpack_object()))

        tid = system.spawn(pinger)
        system.run_until_task(tid)
        assert trace == [("pong-got", "ping"), ("ping-got", "pong")]

    def test_tag_filtering(self, rig):
        _sim, _net, system = rig
        got = []

        def receiver(ctx):
            msg = yield from ctx.recv(tag=7)
            got.append(("tag7", msg.buffer.unpack_int()))
            msg = yield from ctx.recv(tag=3)
            got.append(("tag3", msg.buffer.unpack_int()))

        def sender(ctx):
            [rtid] = yield from ctx.spawn(receiver)
            yield from ctx.send(rtid, PackBuffer().pack_int(30), tag=3)
            yield from ctx.send(rtid, PackBuffer().pack_int(70), tag=7)
            yield ctx._system.wait_for(rtid)

        tid = system.spawn(sender)
        system.run_until_task(tid)
        # tag=7 message is consumed first even though it arrived second.
        assert got == [("tag7", 70), ("tag3", 30)]

    def test_fifo_per_sender(self, rig):
        _sim, _net, system = rig
        got = []

        def receiver(ctx):
            for _ in range(5):
                msg = yield from ctx.recv()
                got.append(msg.buffer.unpack_int())

        def sender(ctx):
            [rtid] = yield from ctx.spawn(receiver)
            for k in range(5):
                yield from ctx.send(rtid, PackBuffer().pack_int(k))
            yield ctx._system.wait_for(rtid)

        tid = system.spawn(sender)
        system.run_until_task(tid)
        assert got == [0, 1, 2, 3, 4]

    def test_send_charges_pack_time(self, rig):
        sim, _net, system = rig

        def receiver(ctx):
            yield from ctx.recv()

        def sender(ctx):
            [rtid] = yield from ctx.spawn(receiver)
            start = ctx.now
            big = PackBuffer().pack_bytes(b"\x00" * 100_000)
            yield from ctx.send(rtid, big)
            elapsed = ctx.now - start
            pack = 100_000 * system.costs.pack_cost_per_byte_s
            assert elapsed >= pack

        tid = system.spawn(sender)
        system.run_until_task(tid)

    def test_try_recv_and_probe(self, rig):
        _sim, _net, system = rig
        results = []

        def receiver(ctx):
            none_yet = yield from ctx.try_recv()
            results.append(none_yet)
            results.append(ctx.probe())
            yield from ctx.delay(1.0)  # let the message arrive
            results.append(ctx.probe())
            msg = yield from ctx.try_recv()
            results.append(msg.buffer.unpack_int())

        def sender(ctx):
            [rtid] = yield from ctx.spawn(receiver)
            yield from ctx.send(rtid, PackBuffer().pack_int(5))
            yield ctx._system.wait_for(rtid)

        tid = system.spawn(sender)
        system.run_until_task(tid)
        assert results == [None, False, True, 5]

    def test_src_filtering_any(self, rig):
        _sim, _net, system = rig
        got = []

        def receiver(ctx, n):
            for _ in range(n):
                msg = yield from ctx.recv(src=ANY)
                got.append(msg.src)

        def child(ctx, rtid):
            yield from ctx.send(rtid, "hi")

        def root(ctx):
            [rtid] = yield from ctx.spawn(receiver, 2)
            yield from ctx.spawn(child, rtid, count=2)
            yield ctx._system.wait_for(rtid)

        tid = system.spawn(root)
        system.run_until_task(tid)
        assert len(got) == 2


class TestMulticastAndGroups:
    def test_mcast_reaches_all_but_sender(self, rig):
        _sim, _net, system = rig
        got = []

        def member(ctx):
            ctx.join_group("g")
            msg = yield from ctx.recv()
            got.append((ctx.tid, msg.buffer.unpack_string()))

        def root(ctx):
            ctx.join_group("g")
            tids = yield from ctx.spawn(member, count=3)
            yield from ctx.delay(0.01)  # let members join
            members = [
                ctx.tid_in_group("g", i)
                for i in range(ctx.group_size("g"))
            ]
            yield from ctx.mcast(members, "broadcast")
            for tid in tids:
                yield ctx._system.wait_for(tid)

        tid = system.spawn(root)
        system.run_until_task(tid)
        assert sorted(tag for _tid, tag in got) == ["broadcast"] * 3

    def test_group_instance_numbers(self, rig):
        _sim, _net, system = rig

        def root(ctx):
            inum = ctx.join_group("grid")
            assert inum == 0
            assert ctx.tid_in_group("grid", 0) == ctx.tid
            assert ctx.group_size("grid") == 1
            yield from ctx.delay(0)

        tid = system.spawn(root)
        system.run_until_task(tid)

    def test_barrier_synchronizes(self, rig):
        sim, _net, system = rig
        release_times = []

        def member(ctx, delay):
            ctx.join_group("b")
            yield from ctx.delay(delay)
            yield from ctx.barrier("b", 3)
            release_times.append(ctx.now)

        tids = [system.spawn(member, d) for d in (1.0, 2.0, 3.0)]
        for tid in tids:
            system.run_until_task(tid)
        assert release_times == [3.0, 3.0, 3.0]


class TestKill:
    def test_kill_blocked_task(self, rig):
        sim, _net, system = rig

        def victim(ctx):
            yield from ctx.recv()  # blocks forever

        def killer(ctx):
            [vtid] = yield from ctx.spawn(victim)
            yield from ctx.delay(1)
            ctx.kill(vtid)
            return vtid

        tid = system.spawn(killer)
        vtid = system.run_until_task(tid)
        sim.run()
        assert system.task(vtid).exited
        assert not system.live_tasks

    def test_kill_exited_task_is_noop(self, rig):
        _sim, _net, system = rig

        def quick(ctx):
            yield from ctx.delay(0)

        def root(ctx):
            [qtid] = yield from ctx.spawn(quick)
            yield ctx._system.wait_for(qtid)
            ctx.kill(qtid)  # already exited

        tid = system.spawn(root)
        system.run_until_task(tid)

    def test_message_to_dead_task_dropped(self, rig):
        sim, _net, system = rig

        def quick(ctx):
            yield from ctx.delay(0)

        def root(ctx):
            [qtid] = yield from ctx.spawn(quick)
            yield ctx._system.wait_for(qtid)
            yield from ctx.send(qtid, "too late")
            yield from ctx.delay(1)

        tid = system.spawn(root)
        system.run_until_task(tid)
        sim.run()
        assert system.dropped == 1
