"""repro.replication — quorum writes, gossip anti-entropy, convergence.

The acceptance bar from the replication issue: with factor >= 2, a
schedule search over the crash x loss x partition vocabulary (100+
schedules) finds no ReplicaConvergence/NoLostMail violation — after
heal and quiescence every replica of every mailbox carries an
identical lifecycle digest, reruns are bit-identical (TraceHasher),
both partition sides keep accepting quorum-acked mail during the cut,
and replication-disabled runs are byte-identical to a
replication-free build.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro import (
    Cluster,
    ClusterConfig,
    FaultPlan,
    MailboxConfig,
    ReplicationConfig,
)
from repro.perf import TraceHasher
from repro.replication import (
    QuorumLiveness,
    ReplicaConvergence,
    merge_stages,
    merge_vv,
    vv_dominates,
)
from repro.resilience import ResiliencePolicy, ScheduleSearcher


def build(n_hosts=4, plan=None, seed=7, poll=0.01, resilience=None,
          replication=ReplicationConfig(factor=2)):
    return Cluster(config=ClusterConfig(
        n_hosts=n_hosts,
        mailbox=MailboxConfig(
            poll_interval_s=poll, replication=replication
        ),
        faults=plan,
        seed=seed,
        resilience=resilience,
    ))


#: Hypothesis generator for version vectors (origin -> write seq).
vvs = st.dictionaries(
    st.sampled_from(["host0", "host1", "host2", "host3"]),
    st.integers(min_value=1, max_value=50),
    max_size=4,
)

#: Hypothesis generator for stage maps (mail id -> lifecycle stage).
stage_maps = st.dictionaries(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=0, max_value=4),
    max_size=12,
)


class TestMergeProperties:
    """Anti-entropy is safe because the merges are lattice joins."""

    @settings(max_examples=60, deadline=None)
    @given(a=vvs, b=vvs)
    def test_vv_merge_is_commutative(self, a, b):
        assert merge_vv(a, b) == merge_vv(b, a)

    @settings(max_examples=60, deadline=None)
    @given(a=vvs, b=vvs, c=vvs)
    def test_vv_merge_is_associative(self, a, b, c):
        assert (
            merge_vv(merge_vv(a, b), c) == merge_vv(a, merge_vv(b, c))
        )

    @settings(max_examples=60, deadline=None)
    @given(a=vvs, b=vvs)
    def test_vv_merge_is_idempotent_and_dominating(self, a, b):
        merged = merge_vv(a, b)
        assert merge_vv(merged, merged) == merged
        assert merge_vv(merged, a) == merged
        assert vv_dominates(merged, a) and vv_dominates(merged, b)

    @settings(max_examples=60, deadline=None)
    @given(a=stage_maps, b=stage_maps, c=stage_maps)
    def test_stage_merge_is_a_join(self, a, b, c):
        assert merge_stages(a, b) == merge_stages(b, a)
        assert (
            merge_stages(merge_stages(a, b), c)
            == merge_stages(a, merge_stages(b, c))
        )
        merged = merge_stages(a, b)
        assert merge_stages(merged, b) == merged


class TestConfig:
    def test_defaults_and_majority_quorum(self):
        assert ReplicationConfig().effective_quorum == 2
        assert ReplicationConfig(factor=3).effective_quorum == 2
        assert ReplicationConfig(factor=5).effective_quorum == 3
        assert (
            ReplicationConfig(factor=3, quorum=1).effective_quorum == 1
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicationConfig(factor=0)
        with pytest.raises(ValueError):
            ReplicationConfig(factor=2, quorum=3)
        with pytest.raises(ValueError):
            ReplicationConfig(factor=2, quorum=0)
        with pytest.raises(ValueError):
            ReplicationConfig(gossip_interval_s=0.0)
        with pytest.raises(ValueError):
            ReplicationConfig(exchange_timeout_s=-1.0)
        with pytest.raises(ValueError):
            ReplicationConfig(max_exchange_failures=0)
        with pytest.raises(TypeError):
            MailboxConfig(replication="yes")

    def test_factor_one_arms_nothing(self):
        c = build(replication=ReplicationConfig(factor=1))
        assert c.mail.replication is None

    def test_experiment_builder_arms_replication(self):
        c = (
            repro.Experiment()
            .hosts(4)
            .replication(ReplicationConfig(factor=3))
            .build()
        )
        assert c.mail.replication is not None
        assert c.mail.replication.config.factor == 3


class TestReplicatedDelivery:
    def test_writes_reach_quorum_and_replicas_converge(self):
        c = build()
        got = []
        c.add_node("n0", daemon="host0")
        c.add_node("n1", daemon="host2")
        c.consumer("n0", lambda mail: got.append(mail.body))
        for index in range(6):
            c.send_mail("n0", f"m{index}", frm="n1")
        c.run_to_quiescence()
        repl = c.mail.replication
        assert got == [f"m{index}" for index in range(6)]
        assert repl.counts["quorum_writes"] == 6
        assert not c.mail._pending and not repl._dirty
        for uid in repl._sets:
            assert len(set(repl.digests(uid).values())) == 1

    def test_replica_sets_have_factor_members_home_first(self):
        c = build(replication=ReplicationConfig(factor=3))
        c.add_node("n0", daemon="host1")
        c.send_mail("n0", "x", frm="n0")
        c.run_to_quiescence()
        repl = c.mail.replication
        (members,) = repl._sets.values()
        assert members == ["host1", "host2", "host3"]

    def test_disabled_replication_is_byte_identical(self):
        def run(replication):
            c = build(replication=replication)
            hasher = TraceHasher()
            c.sim.trace_hash = hasher
            got = []
            c.add_node("n0", daemon="host0")
            c.add_node("n1", daemon="host3")
            c.consumer("n0", lambda mail: got.append(mail.body))
            for index in range(8):
                c.send_mail("n0", index, frm="n1")
            c.broadcast("fanout", frm="n1")
            c.run_to_quiescence()
            return hasher.hexdigest(), got

        # factor 1 arms nothing: the event schedule must be identical
        # to a build that never heard of replication.
        assert run(None) == run(ReplicationConfig(factor=1))

    def test_gossip_repairs_lifecycle_stages_to_followers(self):
        c = build()
        c.add_node("n0", daemon="host0")
        c.consumer("n0", lambda mail: None)
        c.send_mail("n0", "advance-me", frm="n0")
        c.run_to_quiescence()
        repl = c.mail.replication
        (uid,) = repl._sets.keys()
        follower = repl._sets[uid][1]
        state = repl._replicas[follower][uid]
        # The consumer drove the mail to "read" (stage 4) at the home;
        # gossip must have repaired the follower to the same stage.
        assert list(state.stages.values()) == [4]
        assert repl.counts["repairs"] >= 1


class TestPartitionConvergence:
    def run_straddling_partition(self, seed=7):
        plan = (
            FaultPlan()
            .partition("host0", "host1", at=0.02)
            .heal("host0", "host1", at=0.4)
        )
        c = build(
            plan=plan,
            seed=seed,
            resilience=ResiliencePolicy(),
            replication=ReplicationConfig(factor=2, quorum=1),
        )
        hasher = TraceHasher()
        c.sim.trace_hash = hasher
        got = []
        c.add_node("n0", daemon="host0")  # replica set host0+host1
        c.add_node("n1", daemon="host1")
        c.consumer("n0", lambda mail: got.append(mail.body))
        c.send_mail("n0", "pre", frm="n1")
        c.schedule(
            0.1, lambda cl: cl.send_mail("n0", "during", frm="n1")
        )
        c.run_to_quiescence()
        c.resilience.check_final()
        repl = c.mail.replication
        return {
            "got": got,
            "digest": hasher.hexdigest(),
            "converged_s": repl.converged_s,
            "quorum_times": dict(repl.quorum_times),
            "replica_digests": {
                uid: repl.digests(uid) for uid in sorted(repl._sets)
            },
            "pending": len(c.mail._pending),
        }

    def test_both_sides_accept_and_converge_after_heal(self):
        out = self.run_straddling_partition()
        assert out["got"] == ["pre", "during"]
        assert out["pending"] == 0
        # The second write was quorum-acked inside the partition
        # window: the cut side kept accepting mail.
        assert 0.02 < out["quorum_times"][2] < 0.4
        # Convergence is bounded after the heal at t=0.4.
        assert 0.4 <= out["converged_s"] < 0.6
        for digests in out["replica_digests"].values():
            assert len(set(digests.values())) == 1

    def test_partition_convergence_is_bit_identical(self):
        assert (
            self.run_straddling_partition()
            == self.run_straddling_partition()
        )

    def test_unhealed_partition_suspends_instead_of_spinning(self):
        plan = FaultPlan().partition("host0", "host1", at=0.02)
        c = build(
            plan=plan,
            replication=ReplicationConfig(
                factor=2, quorum=1, exchange_timeout_s=0.05
            ),
        )
        c.add_node("n0", daemon="host0")
        c.add_node("n1", daemon="host1")
        c.consumer("n0", lambda mail: None)
        c.send_mail("n0", "stuck-on-one-side", frm="n1")
        c.run_to_quiescence()  # must terminate despite divergence
        repl = c.mail.replication
        # Loudly non-convergent, not hung: the driver parked once no
        # exchange could make progress, and the dirty set says so.
        assert repl._dirty
        assert repl.converged_s is None
        assert repl.counts["gossip_syns"] >= 1


class TestFailover:
    def test_home_crash_promotes_a_surviving_replica(self):
        plan = FaultPlan().crash("host0", at=0.05)
        c = build(plan=plan, resilience=ResiliencePolicy())
        got = []
        c.add_node("n0", daemon="host0")
        c.add_node("n1", daemon="host2")
        c.consumer("n0", lambda mail: got.append(mail.body))
        for index in range(5):
            c.send_mail("n0", f"m{index}", frm="n1")
        c.schedule(
            0.1, lambda cl: cl.send_mail("n0", "post-crash", frm="n1")
        )
        c.run_to_quiescence()
        c.resilience.check_final()
        repl = c.mail.replication
        box = c.mail.mailbox("n0")
        assert got == ["m0", "m1", "m2", "m3", "m4", "post-crash"]
        assert box.node.daemon != "host0"
        assert "host0" not in next(iter(repl._sets.values()))
        assert not c.mail._pending

    def test_retire_refills_the_replica_set(self):
        c = build(replication=ReplicationConfig(factor=2))
        c.add_node("n0", daemon="host1")
        c.consumer("n0", lambda mail: None)
        c.send_mail("n0", "before-churn", frm="n0")
        c.schedule(0.05, lambda cl: cl.leave_host("host2"))
        c.schedule(
            0.1, lambda cl: cl.send_mail("n0", "after-churn", frm="n0")
        )
        c.run_to_quiescence()
        repl = c.mail.replication
        (members,) = repl._sets.values()
        assert "host2" not in members
        assert len(members) == 2
        assert not c.mail._pending and not repl._dirty

    def test_invariants_are_armed_automatically(self):
        c = build(resilience=ResiliencePolicy())
        c.add_node("n0", daemon="host0")
        armed = {
            type(inv)
            for inv in c.resilience.monitor.invariants
        }
        assert ReplicaConvergence in armed
        assert QuorumLiveness in armed


class TestScheduleSearch:
    """Crash x loss x partition schedules attack convergence."""

    def make_runner(self):
        def runner(plan, seed):
            c = build(
                plan=plan, seed=seed, resilience=ResiliencePolicy()
            )
            for index in range(3):
                node = c.add_node(
                    f"p{index}", daemon=f"host{index + 1}"
                )
                c.consumer(node, lambda mail: None)
            for index in range(12):
                c.schedule(
                    0.002 * (index + 1),
                    lambda c, i=index: c.send_mail(
                        f"p{i % 3}", i, frm=f"p{(i + 1) % 3}"
                    ),
                )
            c.run_to_quiescence()
            c.resilience.check_final()

        return runner

    def test_invariants_clean_over_100_schedules(self):
        clean = build()
        for index in range(3):
            node = clean.add_node(
                f"p{index}", daemon=f"host{index + 1}"
            )
            clean.consumer(node, lambda mail: None)
        clean.send_mail("p0", 0, frm="p1")
        horizon = max(clean.run_to_quiescence(), 0.04)

        searcher = ScheduleSearcher(
            self.make_runner(),
            ["host1", "host2", "host3"],
            horizon,
            seed=3,
            crash_fractions=(0.25, 0.5, 0.75),
            partition_pairs=(
                ("host1", "host2"),
                ("host2", "host3"),
                ("host1", "host3"),
            ),
            partition_windows=((0.2, 0.6), (0.4, 0.8)),
        )
        report = searcher.search(max_schedules=120, max_depth=2)
        assert report["schedules_run"] >= 100
        assert report["clean"], report["violations"]

    def test_partition_atoms_build_valid_window_plans(self):
        searcher = ScheduleSearcher(
            lambda plan, seed: None,
            ["host0", "host1"],
            1.0,
            partition_pairs=(("host0", "host1"),),
            partition_windows=((0.2, 0.4), (0.5, 0.9)),
        )
        atoms = [
            a for a in searcher.atoms if a["kind"] == "partition"
        ]
        assert len(atoms) == 2
        # Both windows on the same pair in one schedule: valid (they
        # do not overlap) and the plan passes validation.
        assert searcher._valid(atoms)
        searcher.plan_for(atoms).validate()
        # Overlapping windows on the same pair are rejected up front.
        overlap = ScheduleSearcher(
            lambda plan, seed: None,
            ["host0", "host1"],
            1.0,
            partition_pairs=(("host0", "host1"),),
            partition_windows=((0.2, 0.6), (0.4, 0.8)),
        )
        cuts = [
            a for a in overlap.atoms if a["kind"] == "partition"
        ]
        assert not overlap._valid(cuts)

    def test_bad_partition_window_is_rejected(self):
        with pytest.raises(ValueError, match="window"):
            ScheduleSearcher(
                lambda plan, seed: None,
                ["host0", "host1"],
                1.0,
                partition_pairs=(("host0", "host1"),),
                partition_windows=((0.6, 0.4),),
            )


class TestRepairDeterminism:
    """Anti-entropy repair is a deterministic schedule, not a race."""

    def run_once(self, seed, crash_at, partition_window):
        plan = FaultPlan()
        if partition_window is not None:
            start, end = partition_window
            plan.partition("host1", "host2", at=start)
            plan.heal("host1", "host2", at=end)
        if crash_at is not None:
            plan.crash("host3", at=crash_at)
        c = build(
            plan=plan, seed=seed, resilience=ResiliencePolicy(),
            replication=ReplicationConfig(factor=2, quorum=1),
        )
        hasher = TraceHasher()
        c.sim.trace_hash = hasher
        for index in range(3):
            node = c.add_node(
                f"p{index}", daemon=f"host{index + 1}"
            )
            c.consumer(node, lambda mail: None)
        for index in range(9):
            c.schedule(
                0.002 * (index + 1),
                lambda c, i=index: c.send_mail(
                    f"p{i % 3}", i, frm=f"p{(i + 1) % 3}"
                ),
            )
        c.run_to_quiescence()
        c.resilience.check_final()
        repl = c.mail.replication
        return (
            hasher.hexdigest(),
            c.mail.lifecycle_digest(),
            tuple(sorted(repl.counts.items())),
        )

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        crash_at=st.one_of(
            st.none(),
            st.sampled_from([0.01, 0.02, 0.035, 0.05]),
        ),
        window=st.one_of(
            st.none(),
            st.tuples(
                st.sampled_from([0.005, 0.01, 0.02]),
                st.sampled_from([0.1, 0.2]),
            ),
        ),
    )
    def test_reruns_are_bit_identical(self, seed, crash_at, window):
        out = self.run_once(seed, crash_at, window)
        assert out == self.run_once(seed, crash_at, window)
