"""The observability layer: metric semantics, the cost ledger and its
accounting identity, and the exporters.

The load-bearing test here is the accounting identity: on a real run
(the Figure-4 Mandelbrot at reduced scale) every virtual-time charge
must land in exactly one cost category, so categories + idle tile the
``n_tracks x elapsed`` timeline to float precision.  If an instrumented
path double-charges (or forgets to charge) the identity breaks.
"""

import json

import pytest

from repro.des import Simulator
from repro.obs import (
    CATEGORIES,
    CounterFamily,
    Histogram,
    InstantEvent,
    MetricNameError,
    MetricsRegistry,
    cost_breakdown,
    dump_chrome_trace,
    format_breakdown,
    format_counters,
    to_jsonl,
)


class TestCounter:
    def test_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.value("a.b") == 5

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_count_convenience(self):
        registry = MetricsRegistry()
        registry.count("hits")
        registry.count("hits", 2)
        assert registry.value("hits") == 3


class TestGauge:
    def test_up_and_down(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue.depth")
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 2
        gauge.set(10)
        assert registry.value("queue.depth") == 10


class TestHistogram:
    def test_bucketing(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 106.5
        assert histogram.mean == pytest.approx(26.625)
        # 0.5 and 1.0 land <= 1.0; 5.0 <= 10.0; 100.0 overflows.
        assert histogram.counts == [2, 1, 1]

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.5)
        value = registry.value("lat")
        assert value["count"] == 1
        assert "+inf" in value["buckets"]

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))


class TestHistogramReservoir:
    """Reservoir-mode quantiles: O(1) memory, deterministic on named
    RNG streams, and strictly better than bucket interpolation."""

    @staticmethod
    def _fill(reservoir, stream_name, n=500, seed=0):
        from repro.des import RngRegistry

        rng = RngRegistry(seed).stream(stream_name)
        histogram = Histogram(
            "lat", buckets=(0.01, 0.1, 1.0), reservoir=reservoir, rng=rng
        )
        feed = RngRegistry(seed).stream("feed")
        for _ in range(n):
            histogram.observe(feed.random())
        return histogram

    def test_requires_rng(self):
        with pytest.raises(ValueError):
            Histogram("lat", reservoir=64)
        with pytest.raises(ValueError):
            Histogram("lat", reservoir=-1)

    def test_same_seed_same_quantiles(self):
        first = self._fill(64, "obs.reservoir")
        second = self._fill(64, "obs.reservoir")
        for q in (0.5, 0.9, 0.99):
            assert first.quantile(q) == second.quantile(q)

    def test_distinct_streams_are_independent(self):
        # Different stream names draw different replacement choices, so
        # the sampled reservoirs (and hence quantiles) diverge even on
        # the same root seed and identical observations.
        first = self._fill(64, "obs.reservoir")
        other = self._fill(64, "obs.other")
        assert any(
            first.quantile(q) != other.quantile(q)
            for q in (0.5, 0.9, 0.99)
        )

    def test_small_samples_are_exact(self):
        from repro.des import RngRegistry

        rng = RngRegistry(0).stream("obs.reservoir")
        histogram = Histogram("lat", reservoir=100, rng=rng)
        for value in (4.0, 1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 4.0
        assert histogram.quantile(0.5) == pytest.approx(2.5)

    def test_reservoir_beats_bucket_interpolation(self):
        # Cubed-uniform draws (exact p50 = 0.125): linear interpolation
        # inside the wide (0.1, 1.0] bucket badly overestimates skewed
        # data, while the reservoir tracks the true order statistics.
        from repro.des import RngRegistry

        rng = RngRegistry(0).stream("obs.reservoir")
        with_reservoir = Histogram(
            "lat", buckets=(0.01, 0.1, 1.0), reservoir=256, rng=rng
        )
        no_reservoir = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        feed = RngRegistry(0).stream("feed")
        for _ in range(2_000):
            value = feed.random() ** 3
            with_reservoir.observe(value)
            no_reservoir.observe(value)
        assert abs(with_reservoir.quantile(0.5) - 0.125) < 0.02
        assert abs(no_reservoir.quantile(0.5) - 0.125) > 0.04


class TestCounterFamily:
    def test_labelled_counts_and_merge(self):
        registry = MetricsRegistry()
        family = registry.counter_family("vm.ops", "opcode")
        family.inc("CALL")
        family.merge({"CALL": 2, "HOP": 5})
        assert family.get("CALL") == 3
        assert family.get("HOP") == 5
        snapshot = registry.snapshot()
        assert snapshot["vm.ops{opcode=CALL}"] == 3
        assert snapshot["vm.ops{opcode=HOP}"] == 5

    def test_family_cannot_decrease(self):
        family = CounterFamily("f", "l")
        with pytest.raises(ValueError):
            family.inc("x", -1)


class TestNameCollisions:
    def test_kind_mismatch(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(MetricNameError):
            registry.gauge("a.b")

    def test_metric_cannot_shadow_subtree(self):
        registry = MetricsRegistry()
        registry.counter("des.events")
        with pytest.raises(MetricNameError):
            registry.counter("des")  # "des" is now a branch

    def test_metric_cannot_be_extended(self):
        registry = MetricsRegistry()
        registry.counter("des")
        with pytest.raises(MetricNameError):
            registry.counter("des.events")  # "des" is already a leaf

    def test_bad_names(self):
        registry = MetricsRegistry()
        for bad in ("", ".x", "x."):
            with pytest.raises(MetricNameError):
                registry.counter(bad)


class TestDisabledRegistry:
    def test_everything_is_a_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc()
        registry.gauge("b").set(9)
        registry.histogram("c").observe(1.0)
        registry.counter_family("d", "l").inc("x")
        registry.count("e", 5)
        registry.charge("compute", 1.0)
        registry.span("t", "s", "compute", 0.0, 1.0)
        registry.instant("t", "i", 0.5)
        assert registry.snapshot() == {}
        assert registry.ledger == {}
        assert registry.spans == []
        assert registry.instants == []

    def test_sim_without_registry_runs(self):
        sim = Simulator()
        assert sim.metrics is None
        sim.timeout(1.0)
        sim.run()
        assert sim.now == 1.0


class TestLedgerAndSpans:
    def test_charge_accumulates(self):
        registry = MetricsRegistry()
        registry.charge("copies", 0.25)
        registry.charge("copies", 0.75)
        assert registry.ledger["copies"] == 1.0
        assert registry.ledger_total() == 1.0

    def test_span_charges_its_category(self):
        registry = MetricsRegistry()
        registry.span("host0", "work", "compute", 1.0, 3.0)
        assert registry.ledger["compute"] == 2.0

    def test_uncharged_span(self):
        registry = MetricsRegistry()
        registry.span("host0", "envelope", None, 0.0, 1.0)
        registry.span("host0", "pre-charged", "compute", 0.0, 1.0,
                      charge=False)
        assert registry.ledger == {}
        assert len(registry.spans) == 2

    def test_span_capacity(self):
        registry = MetricsRegistry(span_capacity=2)
        for index in range(5):
            registry.span("t", f"s{index}", None, 0.0, 1.0)
            registry.instant("t", f"i{index}", 0.0)
        assert len(registry.spans) == 2
        assert registry.spans_dropped == 3
        assert registry.instants_dropped == 3

    def test_tracks_sorted(self):
        registry = MetricsRegistry()
        registry.span("b", "s", None, 0, 1)
        registry.instant("a", "i", 0)
        assert registry.tracks() == ["a", "b"]

    def test_clear_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.count("hits", 3)
        registry.charge("wire", 1.0)
        registry.span("t", "s", None, 0, 1)
        registry.clear()
        assert registry.value("hits") == 0
        assert "hits" in registry
        assert registry.ledger == {}
        assert registry.spans == []


class TestSnapshotDeterminism:
    def test_insertion_order_does_not_matter(self):
        first = MetricsRegistry()
        first.count("b", 1)
        first.count("a", 2)
        first.counter_family("f", "l").merge({"z": 1, "a": 2})
        second = MetricsRegistry()
        second.counter_family("f", "l").merge({"a": 2, "z": 1})
        second.count("a", 2)
        second.count("b", 1)
        assert first.snapshot() == second.snapshot()
        assert list(first.snapshot()) == list(second.snapshot())


class TestDesIntegration:
    def test_events_executed_counter(self):
        sim = Simulator()
        sim.metrics = MetricsRegistry()
        for delay in (1.0, 2.0, 3.0):
            sim.timeout(delay)
        sim.run()
        assert sim.metrics.value("des.events_executed") == 3

    def test_disabled_registry_is_not_consulted(self):
        sim = Simulator()
        sim.metrics = MetricsRegistry(enabled=False)
        sim.timeout(1.0)
        sim.run()
        assert sim.metrics.snapshot() == {}


class TestChromeTrace:
    def _populated(self):
        registry = MetricsRegistry()
        registry.span("host0", "work", "compute", 1.0, 3.0,
                      args={"block": 7})
        registry.span("eth0", "frame", "wire", 2.0, 2.5)
        registry.instant("host0", "hop", 2.25, args={"messenger": 1})
        return registry

    def test_round_trip(self, tmp_path):
        registry = self._populated()
        path = tmp_path / "trace.json"
        events_written = dump_chrome_trace(registry, str(path))
        trace = json.loads(path.read_text())
        assert len(trace["traceEvents"]) == events_written
        # 2 thread_name metadata + 2 spans + 1 instant
        assert events_written == 5
        by_phase = {}
        for event in trace["traceEvents"]:
            by_phase.setdefault(event["ph"], []).append(event)
        assert len(by_phase["M"]) == 2
        assert len(by_phase["X"]) == 2
        assert len(by_phase["i"]) == 1
        work = next(e for e in by_phase["X"] if e["name"] == "work")
        assert work["ts"] == pytest.approx(1.0e6)  # seconds -> us
        assert work["dur"] == pytest.approx(2.0e6)
        assert work["args"] == {"block": 7}
        # Tracks map to stable thread ids with name metadata.
        names = {e["tid"]: e["args"]["name"] for e in by_phase["M"]}
        assert set(names.values()) == {"host0", "eth0"}
        assert by_phase["i"][0]["tid"] == [
            tid for tid, name in names.items() if name == "host0"
        ][0]

    def test_jsonl_lines_parse(self):
        registry = self._populated()
        lines = to_jsonl(registry)
        records = [json.loads(line) for line in lines]
        types = [record["type"] for record in records]
        assert types.count("span") == 2
        assert types.count("instant") == 1
        assert types[-2:] == ["snapshot", "ledger"]
        assert records[-1]["categories"] == {"compute": 2.0, "wire": 0.5}


class TestBreakdown:
    def test_percentages_tile_the_timeline(self):
        registry = MetricsRegistry()
        registry.charge("compute", 6.0)
        registry.charge("wire", 2.0)
        breakdown = cost_breakdown(registry, elapsed_s=5.0, n_tracks=2)
        assert breakdown["timeline_s"] == 10.0
        assert breakdown["accounted_s"] == 8.0
        assert breakdown["idle_s"] == pytest.approx(2.0)
        total_percent = sum(
            data["percent"] for data in breakdown["categories"].values()
        ) + 100.0 * breakdown["idle_s"] / breakdown["timeline_s"]
        assert total_percent == pytest.approx(100.0)
        text = format_breakdown(breakdown)
        assert "compute" in text and "idle" in text and "100.00%" in text

    def test_format_counters(self):
        registry = MetricsRegistry()
        registry.count("a.hits", 3)
        registry.observe("a.lat", 0.5)
        text = format_counters(registry, prefix="a.")
        assert "a.hits" in text and "n=1" in text


class TestAccountingIdentity:
    """Categories + idle must tile n_tracks x elapsed on real runs."""

    def _check(self, registry, elapsed, n_tracks):
        breakdown = cost_breakdown(registry, elapsed, n_tracks)
        accounted = breakdown["accounted_s"]
        assert accounted > 0
        assert accounted <= breakdown["timeline_s"] * (1 + 1e-9)
        assert accounted + breakdown["idle_s"] == pytest.approx(
            breakdown["timeline_s"], rel=1e-9
        )
        # The ISSUE's acceptance bar: the breakdown explains the run's
        # total simulated time to within 1% (here: exactly).
        share = sum(
            data["percent"] for data in breakdown["categories"].values()
        )
        idle_share = 100.0 * breakdown["idle_s"] / breakdown["timeline_s"]
        assert share + idle_share == pytest.approx(100.0, abs=1e-6)
        return breakdown

    def test_messengers_mandelbrot(self):
        from repro.apps.mandelbrot.kernel import TaskGrid
        from repro.apps.mandelbrot.messengers_app import run_messengers

        registry = MetricsRegistry()
        result = run_messengers(TaskGrid(64, 4), 3, metrics=registry)
        breakdown = self._check(registry, result.seconds, n_tracks=5)
        # A messengers run interprets scripts and dispatches hops.
        for category in ("compute", "wire", "interpretation", "dispatch"):
            assert breakdown["categories"][category]["seconds"] > 0
        assert registry.value("messengers.hops") > 0
        assert registry.value("des.events_executed") > 0

    def test_pvm_mandelbrot(self):
        from repro.apps.mandelbrot.kernel import TaskGrid
        from repro.apps.mandelbrot.pvm_app import run_pvm

        registry = MetricsRegistry()
        result = run_pvm(TaskGrid(64, 4), 3, metrics=registry)
        breakdown = self._check(registry, result.seconds, n_tracks=5)
        # A PVM run pays for marshalling copies and protocol overhead.
        for category in ("compute", "copies", "wire", "protocol"):
            assert breakdown["categories"][category]["seconds"] > 0
        assert registry.value("mp.messages_sent") > 0
        assert registry.value("mp.pack.bytes_copied") > 0

    def test_wire_ledger_matches_segment_occupancy(self):
        from repro.apps.mandelbrot.kernel import TaskGrid
        from repro.apps.mandelbrot.pvm_app import run_pvm

        registry = MetricsRegistry()
        run_pvm(TaskGrid(64, 4), 2, metrics=registry)
        assert registry.ledger["wire"] > 0
        # Every wire charge is one Ethernet frame span; the exporter
        # sees the same intervals.
        frame_time = sum(
            span.duration
            for span in registry.spans
            if span.category == "wire"
        )
        assert frame_time == pytest.approx(registry.ledger["wire"])


class TestOpcodeCounts:
    def test_per_opcode_family(self):
        from repro.apps.mandelbrot.kernel import TaskGrid
        from repro.apps.mandelbrot.messengers_app import run_messengers

        registry = MetricsRegistry(opcode_counts=True)
        run_messengers(TaskGrid(32, 2), 2, metrics=registry)
        family = registry.counter_family("mcl.vm.instructions", "opcode")
        total = sum(family.values.values())
        assert total == registry.value("mcl.vm.instructions_total")
        assert total > 0

    def test_off_by_default(self):
        from repro.apps.mandelbrot.kernel import TaskGrid
        from repro.apps.mandelbrot.messengers_app import run_messengers

        registry = MetricsRegistry()
        run_messengers(TaskGrid(32, 2), 2, metrics=registry)
        snapshot = registry.snapshot()
        assert not any("opcode=" in name for name in snapshot)
        assert registry.value("mcl.vm.instructions_total") > 0


class TestTracerFold:
    """messengers.trace.Tracer consumes the shared obs event model."""

    def test_tracer_and_metrics_see_the_same_events(self):
        from repro.des import Simulator
        from repro.messengers import MessengersSystem, Tracer
        from repro.netsim import build_lan

        sim = Simulator()
        sim.metrics = MetricsRegistry()
        system = MessengersSystem(build_lan(sim, 2))
        tracer = Tracer.attach(system)
        system.inject("f() { create(ALL); hop(ll = $last); }")
        system.run_to_quiescence()
        assert len(tracer.events) > 0
        # Every tracer record came from an InstantEvent recorded in the
        # registry too (same count, same kinds).
        instants = [
            event for event in sim.metrics.instants
            if event.args and "messenger" in event.args
        ]
        assert len(instants) == len(tracer.events)
        assert {e.name for e in instants} == {
            t.kind for t in tracer.events
        }

    def test_legacy_record_api(self):
        from types import SimpleNamespace

        from repro.messengers.trace import Tracer

        messenger = SimpleNamespace(
            id=7,
            program=SimpleNamespace(name="f"),
            vt=2.0,
            node=SimpleNamespace(display_name="init"),
        )
        tracer = Tracer()
        tracer.record(1.5, messenger, "hop", "host0", "detail text")
        event = tracer.events[0]
        assert event.time == 1.5
        assert event.messenger == 7
        assert event.kind == "hop"
        assert event.daemon == "host0"
        assert event.node == "init"
        assert event.detail == "detail text"

    def test_consume_instant_event(self):
        from repro.messengers.trace import Tracer

        tracer = Tracer()
        tracer.consume(
            InstantEvent(
                track="host1",
                name="create",
                t=0.25,
                args={"messenger": 3, "program": "f", "vt": 1.0,
                      "node": "init", "detail": "x"},
            )
        )
        event = tracer.events[0]
        assert event.kind == "create"
        assert event.daemon == "host1"
        assert event.vt == 1.0
        assert event.program == "f"


class TestCategoriesConstant:
    def test_paper_taxonomy(self):
        assert CATEGORIES == (
            "compute", "copies", "wire", "interpretation",
            "dispatch", "protocol", "gvt",
        )
