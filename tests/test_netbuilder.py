"""Unit tests for the net_builder service (topology files + grids)."""

import pytest

from repro.des import Simulator
from repro.netsim import build_lan
from repro.messengers import (
    MessengersSystem,
    TopologyError,
    build_from_text,
    build_grid,
    build_ring,
    build_star,
    grid_node_name,
)


@pytest.fixture
def system():
    sim = Simulator()
    return MessengersSystem(build_lan(sim, 4))


class TestTopologyFiles:
    def test_nodes_and_links(self, system):
        nodes = build_from_text(
            system,
            """
            # a triangle
            node A @ host0
            node B @ host1
            node C @ host2
            link A -- B : ab
            link B -> C : bc
            link C -- A
            """,
        )
        assert set(nodes) == {"A", "B", "C"}
        assert nodes["A"].degree() == 2
        bc = [link for link in nodes["B"].links if link.name == "bc"][0]
        assert bc.directed and bc.src is nodes["B"]

    def test_unknown_daemon_rejected(self, system):
        with pytest.raises(TopologyError, match="unknown daemon"):
            build_from_text(system, "node A @ ghost")

    def test_duplicate_node_rejected(self, system):
        with pytest.raises(TopologyError, match="duplicate"):
            build_from_text(
                system, "node A @ host0\nnode A @ host1"
            )

    def test_undeclared_link_endpoint_rejected(self, system):
        with pytest.raises(TopologyError, match="undeclared"):
            build_from_text(
                system, "node A @ host0\nlink A -- B"
            )

    def test_bad_syntax_rejected(self, system):
        with pytest.raises(TopologyError):
            build_from_text(system, "frob A")
        with pytest.raises(TopologyError):
            build_from_text(system, "node A")
        with pytest.raises(TopologyError):
            build_from_text(
                system, "node A @ host0\nnode B @ host0\nlink A => B"
            )

    def test_comments_and_blank_lines_ignored(self, system):
        nodes = build_from_text(
            system, "\n# only comments\nnode A @ host0  # trailing\n\n"
        )
        assert list(nodes) == ["A"]


class TestGrid:
    def test_figure_10_topology(self, system):
        """Rows fully connected & undirected; columns directed rings."""
        m = 3
        nodes = build_grid(system, m)
        assert len(nodes) == 9

        center = nodes[grid_node_name(1, 1)]
        row_links = [link for link in center.links if link.name == "row"]
        col_links = [link for link in center.links if link.name == "column"]
        assert len(row_links) == m - 1
        assert all(not link.directed for link in row_links)
        # ring: one outgoing (to row 0) + one incoming (from row 2)
        assert len(col_links) == 2
        assert all(link.directed for link in col_links)
        out = [link for link in col_links if link.src is center]
        assert out[0].dst.name == grid_node_name(0, 1)

    def test_column_wraps_around(self, system):
        nodes = build_grid(system, 2)
        top = nodes[grid_node_name(0, 0)]
        outgoing = [
            link for link in top.links if link.name == "column" and link.src is top
        ]
        assert outgoing[0].dst.name == grid_node_name(1, 0)

    def test_daemon_placement_cycles(self, system):
        nodes = build_grid(system, 3)  # 9 nodes over 4 daemons
        assert nodes[grid_node_name(0, 0)].daemon == "host0"
        assert nodes[grid_node_name(1, 1)].daemon == "host0"  # index 4 % 4

    def test_grid_size_validation(self, system):
        with pytest.raises(TopologyError):
            build_grid(system, 0)

    def test_degenerate_1x1(self, system):
        nodes = build_grid(system, 1)
        assert len(nodes) == 1
        assert nodes[grid_node_name(0, 0)].degree() == 0

    def test_navigable_by_messenger(self, system):
        """A Messenger walks a full column ring via directed hops."""
        build_grid(system, 3, daemons=["host0"])
        visited = []

        @system.natives.register
        def mark(env):
            visited.append(env.node.name)
            return 0

        system.inject(
            """
            walker(n) {
                for (k = 0; k < n; k++) {
                    mark();
                    hop(ll = "column"; ldir = +);
                }
            }
            """,
            args=(3,),
            node=grid_node_name(2, 1),
        )
        system.run_to_quiescence()
        assert visited == ["2,1", "1,1", "0,1"]


class TestRingAndStar:
    def test_ring_connectivity(self, system):
        nodes = build_ring(system, 5)
        assert len(nodes) == 5
        assert all(node.degree() == 2 for node in nodes.values())

    def test_single_node_ring(self, system):
        nodes = build_ring(system, 1)
        assert nodes["n0"].degree() == 0

    def test_star_shape(self, system):
        nodes = build_star(system)
        center = nodes["center"]
        assert center.degree() == 3  # 4 daemons - center
        for name in ("host1", "host2", "host3"):
            assert nodes[f"worker-{name}"].daemon == name

    def test_ring_validation(self, system):
        with pytest.raises(TopologyError):
            build_ring(system, 0)
