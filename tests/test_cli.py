"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "12a"])
        assert args.which == "12a"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "99"])


class TestInfo:
    def test_info_prints_version_and_costs(self, capsys):
        import repro

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert f"repro {repro.__version__}" in out
        assert "cpu_flops" in out
        assert "interp_instr_s" in out


class TestRun:
    def test_run_script_file(self, tmp_path, capsys):
        script = tmp_path / "hello.mcl"
        script.write_text(
            'f(n) { for (k = 0; k < n; k++) M_log("tick", k); }'
        )
        assert main(["run", str(script), "3", "--hosts", "2"]) == 0
        out = capsys.readouterr().out
        assert "injected messenger" in out
        assert out.count("log:") == 3
        assert "host0" in out

    def test_run_missing_file(self, capsys):
        assert main(["run", "/does/not/exist.mcl"]) == 2
        assert "no such script" in capsys.readouterr().err


class TestFigure:
    def test_figure_12a_prints_table(self, capsys):
        assert main(["figure", "12a"]) == 0
        out = capsys.readouterr().out
        assert "block size" in out
        assert "messengers" in out and "pvm" in out

    def test_figure_7_prints_ratios(self, capsys):
        assert main(["figure", "7"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "ratio" in out


class TestChaos:
    def test_chaos_json_report_with_detector(self, capsys):
        import json

        assert main([
            "chaos", "--image", "32", "--grid", "2", "--procs", "2",
            "--detect", "heartbeat", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == 0
        assert report["detect"] == "heartbeat"
        for system in ("messengers", "pvm"):
            row = report["systems"][system]
            assert row["identical"] is True
            assert row["resilience"]["detections"] == 1

    def test_chaos_parser_rejects_unknown_detector(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--detect", "psychic"])


class TestSearch:
    def test_search_finds_manager_crash_violation(self, capsys):
        import json

        status = main([
            "search", "--system", "pvm", "--image", "32", "--grid", "2",
            "--procs", "2", "--schedules", "4", "--depth", "1",
            "--loss", "0", "--include-manager", "--json",
        ])
        assert status == 1  # a violation was found
        report = json.loads(capsys.readouterr().out)
        assert not report["clean"]
        assert report["minimal"]["atoms"][0]["host"] == "host0"

    def test_search_out_writes_replayable_reproducer(self, tmp_path,
                                                     capsys):
        import json

        from repro import FaultPlan

        out = tmp_path / "reproducer.json"
        status = main([
            "search", "--system", "pvm", "--image", "32", "--grid", "2",
            "--procs", "2", "--schedules", "4", "--depth", "1",
            "--loss", "0", "--include-manager", "--out", str(out),
        ])
        assert status == 1
        assert str(out) in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert not report["clean"]
        minimal = report["minimal"]
        assert minimal["atoms"][0]["host"] == "host0"
        assert "seed" in minimal
        # The serialized plan replays verbatim through from_dict.
        plan = FaultPlan.from_dict(minimal["plan"])
        assert plan.to_dict() == minimal["plan"]
        assert any(
            event["kind"] == "crash" and event["host"] == "host0"
            for event in minimal["plan"]["events"]
        )

    def test_search_clean_run_writes_report_too(self, tmp_path):
        import json

        out = tmp_path / "clean.json"
        status = main([
            "search", "--system", "pvm", "--image", "32", "--grid", "2",
            "--procs", "2", "--schedules", "2", "--depth", "1",
            "--loss", "0", "--out", str(out),
        ])
        assert status == 0
        report = json.loads(out.read_text())
        assert report["clean"]
        assert report["minimal"] is None


class TestStats:
    def test_stats_breakdown_and_trace(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        assert main([
            "stats", "--image", "64", "--grid", "4", "--procs", "2",
            "--trace", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        for category in ("compute", "wire", "idle", "total"):
            assert category in out
        assert "100.00%" in out
        assert "des.events_executed" in out
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]

    def test_stats_pvm_system(self, tmp_path, capsys):
        assert main([
            "stats", "--system", "pvm", "--image", "64", "--grid", "4",
            "--procs", "2", "--trace", str(tmp_path / "t.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "copies" in out and "protocol" in out

    def test_stats_opcodes(self, tmp_path, capsys):
        assert main([
            "stats", "--image", "32", "--grid", "2", "--procs", "2",
            "--opcodes", "--trace", str(tmp_path / "t.json"),
        ]) == 0
        assert "opcode=" in capsys.readouterr().out


class TestBenchOut:
    def test_bench_scale_out_creates_parent_dirs(self, tmp_path, capsys):
        import json

        # A fresh artifacts dir that does not exist yet: CI writes
        # BENCH blobs into per-run directories, so the CLI must mkdir.
        out = tmp_path / "artifacts" / "scale" / "BENCH_scale.json"
        assert main([
            "bench", "scale", "--factors", "1", "--out", str(out),
        ]) == 0
        assert str(out) in capsys.readouterr().out
        blob = json.loads(out.read_text())
        points = blob["current"]["points"]
        assert [p["factor"] for p in points] == [1]
        assert points[0]["events"] == blob["baseline"]["points"]["1"][
            "events"
        ]
        # Both schedulers measured, simulated results asserted equal
        # inside the driver.
        assert set(points[0]["events_per_sec"]) == {"calendar", "heap"}

    def test_search_out_creates_parent_dirs(self, tmp_path):
        out = tmp_path / "deep" / "nested" / "report.json"
        status = main([
            "search", "--system", "pvm", "--image", "32", "--grid", "2",
            "--procs", "2", "--schedules", "1", "--depth", "1",
            "--loss", "0", "--out", str(out),
        ])
        assert status == 0
        assert out.exists()
