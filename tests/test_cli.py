"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "12a"])
        assert args.which == "12a"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "99"])


class TestInfo:
    def test_info_prints_version_and_costs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "cpu_flops" in out
        assert "interp_instr_s" in out


class TestRun:
    def test_run_script_file(self, tmp_path, capsys):
        script = tmp_path / "hello.mcl"
        script.write_text(
            'f(n) { for (k = 0; k < n; k++) M_log("tick", k); }'
        )
        assert main(["run", str(script), "3", "--hosts", "2"]) == 0
        out = capsys.readouterr().out
        assert "injected messenger" in out
        assert out.count("log:") == 3
        assert "host0" in out

    def test_run_missing_file(self, capsys):
        assert main(["run", "/does/not/exist.mcl"]) == 2
        assert "no such script" in capsys.readouterr().err


class TestFigure:
    def test_figure_12a_prints_table(self, capsys):
        assert main(["figure", "12a"]) == 0
        out = capsys.readouterr().out
        assert "block size" in out
        assert "messengers" in out and "pvm" in out

    def test_figure_7_prints_ratios(self, capsys):
        assert main(["figure", "7"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "ratio" in out
