"""Unit tests for the MCL compiler + VM, driven without a daemon."""

import pytest

from repro.messengers.mcl import (
    CompileError,
    CreateCommand,
    DeleteCommand,
    DoneCommand,
    Frame,
    HopCommand,
    MclRuntimeError,
    SchedCommand,
    compile_source,
    run,
)


def execute(source, natives=None, netvars=None, mvars=None, nvars=None,
            max_commands=100):
    """Run a script to completion, collecting yielded commands."""
    program = compile_source(source)
    mvars = {} if mvars is None else mvars
    nvars = {} if nvars is None else nvars
    natives = natives or {}
    netvars = netvars or {}

    def call_native(name, args):
        return natives[name](*args)

    def netvar(name):
        return netvars[name]

    frame = Frame(program)
    commands = []
    for _ in range(max_commands):
        command = run(frame, mvars, nvars, netvar, call_native)
        commands.append(command)
        if isinstance(command, DoneCommand):
            return commands, mvars, nvars
    raise AssertionError("script did not finish")


class TestArithmetic:
    def test_basic_expressions(self):
        _, mvars, _ = execute(
            "f() { a = 2 + 3 * 4; b = (2 + 3) * 4; c = 10 / 4; "
            "d = 10.0 / 4; e = 7 mod 3; }"
        )
        assert mvars == {"a": 14, "b": 20, "c": 2, "d": 2.5, "e": 1}

    def test_integer_division_is_c_like(self):
        _, mvars, _ = execute("f() { x = 7 / 2; }")
        assert mvars["x"] == 3

    def test_comparisons_yield_ints(self):
        _, mvars, _ = execute(
            "f() { a = 1 < 2; b = 2 <= 1; c = 3 == 3; d = 3 != 3; }"
        )
        assert mvars == {"a": 1, "b": 0, "c": 1, "d": 0}

    def test_unary_operators(self):
        _, mvars, _ = execute("f() { a = -5; b = !0; c = !7; }")
        assert mvars == {"a": -5, "b": 1, "c": 0}

    def test_short_circuit_and(self):
        calls = []

        def boom():
            calls.append(1)
            return 1

        execute(
            "f() { x = 0 && boom(); }", natives={"boom": boom}
        )
        assert calls == []

    def test_short_circuit_or(self):
        calls = []

        def boom():
            calls.append(1)
            return 1

        _, mvars, _ = execute(
            "f() { x = 1 || boom(); }", natives={"boom": boom}
        )
        assert calls == []
        assert mvars["x"] == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(MclRuntimeError):
            execute("f() { x = 1 / 0; }")


class TestControlFlow:
    def test_if_else(self):
        _, mvars, _ = execute(
            "f() { if (2 > 1) x = 10; else x = 20; "
            "if (0) y = 1; else y = 2; }"
        )
        assert mvars == {"x": 10, "y": 2}

    def test_while_loop(self):
        _, mvars, _ = execute(
            "f() { s = 0; i = 0; while (i < 5) { s += i; i++; } }"
        )
        assert mvars["s"] == 10

    def test_for_loop(self):
        _, mvars, _ = execute(
            "f() { s = 0; for (i = 0; i < 4; i++) s += i * i; }"
        )
        assert mvars["s"] == 14

    def test_nested_loops_with_break_continue(self):
        _, mvars, _ = execute(
            """
            f() {
                hits = 0;
                for (i = 0; i < 5; i++) {
                    if (i == 3) continue;
                    for (j = 0; j < 5; j++) {
                        if (j > i) break;
                        hits++;
                    }
                }
            }
            """
        )
        # i=0:1, i=1:2, i=2:3, i=3 skipped, i=4:5 -> 11
        assert mvars["hits"] == 11

    def test_break_outside_loop_rejected(self):
        with pytest.raises(CompileError):
            compile_source("f() { break; }")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(CompileError):
            compile_source("f() { continue; }")

    def test_return_value(self):
        commands, _, _ = execute("f() { return 42; }")
        assert commands[-1].value == 42

    def test_infinite_loop_guard(self):
        program = compile_source("f() { while (1) x = 1; }")
        frame = Frame(program)
        with pytest.raises(MclRuntimeError, match="instructions"):
            run(frame, {}, {}, lambda n: None, lambda n, a: None)


class TestVariables:
    def test_node_vs_messenger_scope(self):
        _, mvars, nvars = execute(
            "f() { node shared; shared = 5; private = 6; }"
        )
        assert nvars == {"shared": 5}
        assert mvars == {"private": 6}

    def test_undefined_variable_raises(self):
        with pytest.raises(MclRuntimeError, match="before"):
            execute("f() { x = y + 1; }")

    def test_netvar_read(self):
        _, mvars, _ = execute(
            "f() { where = $address; }", netvars={"address": "host9"}
        )
        assert mvars["where"] == "host9"

    def test_netvar_assignment_rejected(self):
        with pytest.raises(CompileError, match="read-only"):
            compile_source("f() { $address = 1; }")

    def test_params_become_messenger_vars(self):
        program = compile_source("f(a, b) { c = a + b; }")
        frame = Frame(program)
        mvars = {"a": 2, "b": 3}
        command = run(frame, mvars, {}, lambda n: None, lambda n, a: None)
        assert isinstance(command, DoneCommand)
        assert mvars["c"] == 5


class TestNativeCalls:
    def test_call_with_arguments_in_order(self):
        seen = []

        def record(*args):
            seen.append(args)
            return len(args)

        _, mvars, _ = execute(
            "f() { n = record(1, 2, 3); }", natives={"record": record}
        )
        assert seen == [(1, 2, 3)]
        assert mvars["n"] == 3

    def test_call_as_statement_discards_value(self):
        commands, mvars, _ = execute(
            "f() { record(9); }", natives={"record": lambda x: x}
        )
        assert mvars == {}


class TestNavigationCommands:
    def test_hop_command_fields(self):
        program = compile_source('f() { hop(ln = "b"; ll = "x"; ldir = +); }')
        frame = Frame(program)
        command = run(frame, {}, {}, lambda n: None, lambda n, a: None)
        assert isinstance(command, HopCommand)
        assert (command.ln, command.ll, command.ldir) == ("b", "x", "+")

    def test_hop_counts_instructions(self):
        program = compile_source("f(a) { x = a + 2; hop(); }")
        frame = Frame(program)
        command = run(frame, {"a": 1}, {}, lambda n: None, lambda n, a: None)
        assert command.instructions > 3

    def test_constant_expressions_fold_at_compile_time(self):
        # 1 + 2 folds to one CONST, so only CONST, STORE, HOP execute.
        program = compile_source("f() { x = 1 + 2; hop(); }")
        frame = Frame(program)
        command = run(frame, {}, {}, lambda n: None, lambda n, a: None)
        assert command.instructions == 3

    def test_numeric_node_name_coerced(self):
        program = compile_source("f(i) { hop(ln = i); }")
        frame = Frame(program)
        command = run(
            frame, {"i": 3}, {}, lambda n: None, lambda n, a: None
        )
        assert command.ln == "3"

    def test_delete_command(self):
        program = compile_source('f() { delete(ll = "tmp"); }')
        frame = Frame(program)
        command = run(frame, {}, {}, lambda n: None, lambda n, a: None)
        assert isinstance(command, DeleteCommand)
        assert command.ll == "tmp"

    def test_create_all_command(self):
        program = compile_source("f() { create(ALL); }")
        frame = Frame(program)
        command = run(frame, {}, {}, lambda n: None, lambda n, a: None)
        assert isinstance(command, CreateCommand)
        assert command.all_daemons
        assert command.items[0].ln is None  # unnamed

    def test_create_resolved_items_in_order(self):
        program = compile_source(
            'f() { create(ln = "a", "b"; ll = "x", "y"; ldir = +); }'
        )
        frame = Frame(program)
        command = run(frame, {}, {}, lambda n: None, lambda n, a: None)
        assert [(i.ln, i.ll, i.ldir) for i in command.items] == [
            ("a", "x", "+"),
            ("b", "y", "+"),
        ]

    def test_execution_resumes_after_hop(self):
        program = compile_source("f() { x = 1; hop(); x = 2; }")
        frame = Frame(program)
        mvars = {}
        first = run(frame, mvars, {}, lambda n: None, lambda n, a: None)
        assert isinstance(first, HopCommand)
        assert mvars["x"] == 1
        second = run(frame, mvars, {}, lambda n: None, lambda n, a: None)
        assert isinstance(second, DoneCommand)
        assert mvars["x"] == 2


class TestScheduling:
    def test_sched_abs(self):
        program = compile_source("f() { M_sched_time_abs(2.5); }")
        frame = Frame(program)
        command = run(frame, {}, {}, lambda n: None, lambda n, a: None)
        assert isinstance(command, SchedCommand)
        assert (command.kind, command.time) == ("abs", 2.5)

    def test_sched_dlt(self):
        program = compile_source("f() { M_sched_time_dlt(0.5); }")
        frame = Frame(program)
        command = run(frame, {}, {}, lambda n: None, lambda n, a: None)
        assert (command.kind, command.time) == ("dlt", 0.5)

    def test_sched_wrong_arity_rejected(self):
        with pytest.raises(CompileError):
            compile_source("f() { M_sched_time_abs(1, 2); }")

    def test_sched_non_numeric_time_raises(self):
        program = compile_source('f() { M_sched_time_abs("soon"); }')
        frame = Frame(program)
        with pytest.raises(MclRuntimeError):
            run(frame, {}, {}, lambda n: None, lambda n, a: None)


class TestFrameCloning:
    def test_clone_resumes_independently(self):
        program = compile_source("f() { x = 1; hop(); x = x + 10; }")
        frame = Frame(program)
        mvars = {}
        run(frame, mvars, {}, lambda n: None, lambda n, a: None)
        clone = frame.clone()
        mvars_a, mvars_b = dict(mvars), dict(mvars)
        run(frame, mvars_a, {}, lambda n: None, lambda n, a: None)
        run(clone, mvars_b, {}, lambda n: None, lambda n, a: None)
        assert mvars_a["x"] == 11
        assert mvars_b["x"] == 11


class TestDisassembly:
    def test_disassemble_mentions_everything(self):
        program = compile_source(
            "f(a) { node nv; nv = a; hop(); }"
        )
        listing = program.disassemble()
        assert "f(a)" in listing
        assert "nv" in listing
        assert "HOP" in listing

    def test_code_bytes_positive(self):
        program = compile_source("f() { x = 1; }")
        assert program.code_bytes > 0
