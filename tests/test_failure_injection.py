"""Failure-injection tests: misbehaving scripts, natives and peers.

The substrate must fail loudly and locally: a crashing Messenger is
recorded and removed without corrupting daemons, the logical network,
or other Messengers.
"""

import pytest

from repro.des import Simulator
from repro.netsim import build_lan
from repro.messengers import MessengersSystem, UnknownNativeError
from repro.messengers.mcl import MclRuntimeError
from repro.mp import MessagePassingSystem, PackBuffer


def make_system(n=2):
    sim = Simulator()
    return sim, MessengersSystem(build_lan(sim, n))


class TestScriptFailures:
    def test_native_exception_marks_messenger_failed(self):
        sim, system = make_system()

        @system.natives.register
        def explode(env):
            raise RuntimeError("native blew up")

        messenger = system.inject("f() { explode(); }")
        with pytest.raises(RuntimeError, match="blew up"):
            system.run_to_quiescence()
        assert not messenger.alive
        assert (messenger, "failed") in system.finished

    def test_unknown_native_is_reported(self):
        sim, system = make_system()
        system.inject("f() { never_registered(); }")
        with pytest.raises(UnknownNativeError):
            system.run_to_quiescence()

    def test_runtime_error_in_script(self):
        sim, system = make_system()
        system.inject("f() { x = 1 / 0; }")
        with pytest.raises(MclRuntimeError):
            system.run_to_quiescence()

    def test_failure_does_not_poison_other_messengers(self):
        sim, system = make_system()
        survived = []

        @system.natives.register
        def explode(env):
            raise RuntimeError("boom")

        @system.natives.register
        def note(env):
            survived.append(env.messenger.id)
            return 0

        bad = system.inject("bad() { explode(); }")
        good = system.inject("good() { M_sched_time_dlt(1); note(); }")
        with pytest.raises(RuntimeError):
            system.run_to_quiescence()
        # The failed messenger was unregistered from the active count,
        # so the survivor can still be driven to completion.
        system.run_to_quiescence()
        assert survived == [good.id]
        assert not bad.alive

    def test_infinite_script_guard_fires(self):
        sim, system = make_system()
        system.inject("f() { while (1) x = 1; }")
        with pytest.raises(MclRuntimeError, match="instructions"):
            system.run_to_quiescence()

    def test_daemon_survives_failure(self):
        """After a script crash the daemon keeps serving new work."""
        sim, system = make_system()

        @system.natives.register
        def explode(env):
            raise ValueError("nope")

        system.inject("bad() { explode(); }")
        with pytest.raises(ValueError):
            system.run_to_quiescence()

        done = []

        @system.natives.register
        def ok(env):
            done.append(True)
            return 0

        system.inject("fine() { ok(); }")
        system.run_to_quiescence()
        assert done == [True]


class TestLostMessengers:
    def test_all_replicas_lost_still_quiesces(self):
        sim, system = make_system(3)
        system.inject('f() { hop(ll = "ghost-link"); }')
        system.run_to_quiescence()
        assert system.active_count == 0
        assert system.finished[-1][1] == "lost"

    def test_partial_loss_after_replication(self):
        """Replicas that find no onward match die; others continue."""
        sim, system = make_system(3)
        arrived = []

        @system.natives.register
        def mark(env):
            arrived.append(env.daemon.name)
            return 0

        # Replicate to both relays; only host1's relay gets an onward
        # link, so the replica at host2 is lost on the second hop.
        system.inject(
            """
            builder() {
                create(ln = "r1", "r2"; ll = "a", "a";
                       dn = "host1", "host2");
                if ($address == "host1") {
                    create(ln = "goal"; ll = "b"; dn = "host1");
                }
            }
            """,
            daemon="host0",
        )
        system.run_to_quiescence()
        system.inject(
            """
            traveller() {
                hop(ll = "a");
                hop(ll = "b");
                mark();
            }
            """,
            daemon="host0",
        )
        system.run_to_quiescence()
        assert arrived == ["host1"]
        lost = [fate for _m, fate in system.finished if fate == "lost"]
        assert lost  # the builder's second create replica path


class TestMessagePassingFailures:
    def test_behavior_exception_surfaces(self):
        sim = Simulator()
        system = MessagePassingSystem(build_lan(sim, 2))

        def bad(ctx):
            yield from ctx.delay(0.1)
            raise KeyError("task crashed")

        tid = system.spawn(bad)
        with pytest.raises(KeyError):
            system.run_until_task(tid)
        assert system.task(tid).exited

    def test_send_to_never_existing_tid(self):
        sim = Simulator()
        system = MessagePassingSystem(build_lan(sim, 1))

        def sender(ctx):
            with pytest.raises(KeyError):
                yield from ctx.send(999, PackBuffer().pack_int(1))

        tid = system.spawn(sender)
        system.run_until_task(tid)

    def test_kill_storm(self):
        """Killing many blocked tasks leaves the system consistent."""
        sim = Simulator()
        system = MessagePassingSystem(build_lan(sim, 2))

        def blocked(ctx):
            yield from ctx.recv()

        def killer(ctx, victims):
            yield from ctx.delay(0.5)
            for victim in victims:
                ctx.kill(victim)

        victims = [system.spawn(blocked) for _ in range(8)]
        tid = system.spawn(killer, victims)
        system.run_until_task(tid)
        sim.run()
        assert not system.live_tasks
