"""Tests for the individual-based swarm simulation (extension app)."""

import pytest

from repro.des import Simulator
from repro.netsim import build_lan
from repro.messengers import MessengersSystem, build_torus, grid_node_name
from repro.apps.swarm import GRASS_MAX, World, run_swarm


class TestTorus:
    def test_dimensions_and_degree(self):
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 2))
        nodes = build_torus(system, 3, 4)
        assert len(nodes) == 12
        for node in nodes.values():
            # 1 east out + 1 east in + 1 south out + 1 south in
            assert node.degree() == 4

    def test_wraparound(self):
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 1))
        nodes = build_torus(system, 2, 3)
        corner = nodes[grid_node_name(1, 2)]
        east = [
            link for link in corner.links
            if link.name == "east" and link.src is corner
        ]
        assert east[0].dst.name == grid_node_name(1, 0)

    def test_navigation_roundtrip(self):
        """east then west returns a Messenger to its start cell."""
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 2))
        build_torus(system, 3, 3)
        places = []

        @system.natives.register
        def mark(env):
            places.append(env.node.name)
            return 0

        system.inject(
            """
            walker() {
                mark();
                hop(ll = "east"; ldir = +);
                mark();
                hop(ll = "east"; ldir = -);
                mark();
            }
            """,
            node=grid_node_name(1, 1),
            daemon=system.logical.find_named(grid_node_name(1, 1))[0].daemon,
        )
        system.run_to_quiescence()
        assert places == ["1,1", "1,2", "1,1"]

    def test_validation(self):
        from repro.messengers import TopologyError

        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 1))
        with pytest.raises(TopologyError):
            build_torus(system, 0, 3)


class TestWorld:
    def make_world(self):
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 2))
        return World(system, 2, 2, initial_grass=4.0)

    def test_grass_regrows_lazily(self):
        world = self.make_world()
        cell = world.cell(0, 0)
        eaten = World.graze(cell, vt=0.0, bite=3.0)
        assert eaten == 3.0
        # 5 ticks later the cell has regrown 5 (capped at GRASS_MAX)
        assert World.current_grass(cell, vt=5.0) == pytest.approx(6.0)

    def test_grass_caps_at_max(self):
        world = self.make_world()
        cell = world.cell(1, 1)
        assert World.current_grass(cell, vt=100.0) == GRASS_MAX

    def test_graze_cannot_overdraw(self):
        world = self.make_world()
        cell = world.cell(0, 1)
        assert World.graze(cell, vt=0.0, bite=99.0) == 4.0
        assert World.graze(cell, vt=0.0, bite=99.0) == 0.0

    def test_total_and_map(self):
        world = self.make_world()
        assert world.total_grass(0.0) == pytest.approx(16.0)
        grass_map = world.grass_map(0.0)
        assert len(grass_map) == 2 and len(grass_map[0]) == 2

    def test_visit_histogram(self):
        world = self.make_world()
        World.graze(world.cell(0, 0), vt=0.0, bite=1.0)
        World.graze(world.cell(0, 0), vt=1.0, bite=1.0)
        histogram = world.visit_histogram()
        assert histogram[grid_node_name(0, 0)] == 2


class TestSwarm:
    def test_conservation_of_creatures(self):
        result = run_swarm(ticks=12, population=6, seed=1)
        assert (
            result.initial_population + result.born
            == result.final_population + len(result.starved)
        )

    def test_determinism(self):
        a = run_swarm(ticks=10, population=5, seed=42)
        b = run_swarm(ticks=10, population=5, seed=42)
        assert a.survivors == b.survivors
        assert a.starved == b.starved
        assert a.born == b.born
        assert a.seconds == b.seconds

    def test_seed_changes_outcome(self):
        a = run_swarm(ticks=10, population=5, seed=1)
        b = run_swarm(ticks=10, population=5, seed=2)
        # Different walks; visits distribution should differ.
        assert a.visits != b.visits

    def test_starvation_when_world_is_barren(self):
        result = run_swarm(
            ticks=10,
            population=4,
            initial_energy=3.0,
            bite=0.5,
            metabolism=2.0,
            repro_threshold=1e9,
        )
        assert result.final_population == 0
        assert len(result.starved) == 4
        assert result.born == 0

    def test_reproduction_when_world_is_rich(self):
        result = run_swarm(
            ticks=12,
            population=2,
            rows=8,
            cols=8,
            bite=3.0,
            metabolism=1.0,
            repro_threshold=10.0,
        )
        assert result.born > 0
        assert result.final_population > result.initial_population

    def test_grazing_consumes_grass(self):
        rich = run_swarm(ticks=8, population=0)
        grazed = run_swarm(ticks=8, population=8)
        assert grazed.total_grass_left < rich.total_grass_left

    def test_gvt_drives_the_lockstep(self):
        result = run_swarm(ticks=9, population=4)
        # one GVT advance per tick (minus the free initial tick)
        assert result.gvt_rounds >= result.ticks - 1
