"""Unit tests for the MESSENGERS command shell."""

import pytest

from repro.des import Simulator
from repro.netsim import build_lan
from repro.messengers import MessengersSystem, Shell, ShellError


@pytest.fixture
def shell():
    sim = Simulator()
    system = MessengersSystem(build_lan(sim, 3))
    return Shell(system)


class TestBasics:
    def test_empty_and_comment_lines(self, shell):
        assert shell.execute("") == ""
        assert shell.execute("# a comment") == ""

    def test_unknown_command(self, shell):
        with pytest.raises(ShellError, match="unknown command"):
            shell.execute("frobnicate")

    def test_help_lists_commands(self, shell):
        text = shell.execute("help")
        assert "inject" in text and "stats" in text


class TestInjection:
    def test_inline_injection_and_run(self, shell):
        out = shell.execute('inject! { f() { create(ALL); } }')
        assert "injected messenger #" in out
        out = shell.execute("run")
        assert "quiescent" in out
        assert shell.system.logical.node_count() == 3 + 2

    def test_inline_injection_with_args(self, shell):
        seen = []

        @shell.system.natives.register
        def note(env, a, b):
            seen.append((a, b))
            return 0

        shell.execute('inject! { f(a, b) { note(a, b); } } 3 word')
        shell.execute("run")
        assert seen == [(3, "word")]

    def test_inject_from_file(self, shell, tmp_path):
        script = tmp_path / "hello.mcl"
        script.write_text("f() { create(ALL); }")
        out = shell.execute(f"inject {script}")
        assert "injected" in out

    def test_inject_missing_file(self, shell):
        with pytest.raises(ShellError, match="no such script"):
            shell.execute("inject /nonexistent/path.mcl")

    def test_malformed_inline(self, shell):
        with pytest.raises(ShellError):
            shell.execute("inject! no braces")

    def test_at_switches_daemon(self, shell):
        assert "host2" in shell.execute("at host2")
        shell.execute('inject! { f() { x = 1; } }')
        shell.execute("run")
        assert shell.system.daemon("host2").stats.executed_slices == 1

    def test_at_unknown_daemon(self, shell):
        with pytest.raises(ShellError):
            shell.execute("at nowhere")


class TestInspection:
    def test_nodes_listing(self, shell):
        out = shell.execute("nodes")
        assert out.count("init") == 3

    def test_links_listing_empty(self, shell):
        assert shell.execute("links") == "(no links)"

    def test_links_listing_after_create(self, shell):
        shell.execute('inject! { f() { create(ln = "w"; ll = "x"); } }')
        shell.execute("run")
        assert "x" in shell.execute("links")

    def test_messengers_listing(self, shell):
        assert "no live messengers" in shell.execute("messengers")
        shell.execute('inject! { f() { M_sched_time_abs(99); } }')
        out = shell.execute("messengers")
        assert "#" in out

    def test_stats_and_gvt(self, shell):
        shell.execute('inject! { f() { M_sched_time_abs(1); } }')
        shell.execute("run")
        stats = shell.execute("stats")
        assert "host0" in stats
        gvt = shell.execute("gvt")
        assert "gvt=1" in gvt

    def test_script_batch(self, shell):
        outputs = shell.system and Shell(shell.system).script(
            "# batch\nnodes\ngvt"
        )
        assert outputs[0] == ""
        assert "init" in outputs[1]
