"""repro.service — graceful degradation under open-system load.

The acceptance bar from the service issue: open-loop arrivals
(Poisson/bursty/diurnal) on named RNG streams; per-request deadlines
propagated across hops and RPCs; retry budgets with deterministic
jitter; per-target circuit breakers walking only legal state edges;
admission control converting overload into typed rejections; every
request reaching exactly one terminal state under faults and churn;
bit-identical runs for a given seed; and the degradation invariants
clean under a 100+ schedule search.
"""

import pytest

import repro
from repro import Cluster, ClusterConfig, FaultPlan, ResiliencePolicy
from repro.des.rng import RngRegistry
from repro.perf import hashing_all_simulators
from repro.service import (
    CLOSED,
    HALF_OPEN,
    LEGAL_TRANSITIONS,
    OPEN,
    AdmissionController,
    BreakerSanity,
    CircuitBreaker,
    NoRequestLost,
    RequestBook,
    ServiceConfig,
    ServiceWorkload,
    arrival_times,
    retry_schedule,
)


def build(rate=150.0, duration=0.25, degradation=True, plan=None, seed=3,
          resilience=True, arrivals="poisson"):
    return Cluster(config=ClusterConfig(
        n_hosts=4,
        service=ServiceConfig(
            arrivals=arrivals,
            rate_rps=rate,
            duration_s=duration,
            degradation=degradation,
        ),
        faults=plan,
        seed=seed,
        resilience=ResiliencePolicy() if resilience else None,
    ))


class FakeSim:
    """A stand-in clock for unit-testing the breaker state machine."""

    def __init__(self):
        self.now = 0.0


# ---------------------------------------------------------------------------
# arrivals


class TestArrivals:
    def _times(self, kind, seed=0, rate=400.0, duration=2.0):
        config = ServiceConfig(
            arrivals=kind, rate_rps=rate, duration_s=duration
        )
        rng = RngRegistry(seed).stream("service.arrivals")
        return arrival_times(config, rng)

    @pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
    def test_deterministic_and_sorted(self, kind):
        first = self._times(kind)
        second = self._times(kind)
        assert first == second
        assert first == sorted(first)
        assert all(0.0 <= t < 2.0 for t in first)

    @pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
    def test_mean_rate_is_preserved(self, kind):
        # Thinning is mean-preserving: all three shapes offer the same
        # average load, the knobs only move traffic around in time.
        counts = [
            len(self._times(kind, seed=seed, rate=400.0, duration=2.0))
            for seed in range(5)
        ]
        mean = sum(counts) / len(counts)
        assert mean == pytest.approx(800, rel=0.1)

    def test_bursty_actually_bursts(self):
        config = ServiceConfig(
            arrivals="bursty", rate_rps=400.0, duration_s=2.0,
            burst_on_s=0.06, burst_off_s=0.06, burst_factor=3.0,
        )
        rng = RngRegistry(0).stream("service.arrivals")
        times = arrival_times(config, rng)
        period = 0.12
        on = sum(1 for t in times if (t % period) < 0.06)
        off = len(times) - on
        assert on > 2 * off  # 3x rate on the on-phase

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            ServiceConfig(arrivals="adversarial")


# ---------------------------------------------------------------------------
# retry schedules (satellite: backoff + jitter determinism)


class TestRetrySchedule:
    def test_same_stream_replays_identical_schedules(self):
        draws_a = [
            retry_schedule(2, 0.01, 2.0, 0.25,
                           RngRegistry(11).stream("service.retry"))
            for _ in range(1)
        ]
        # Many requests drawing from one stream: the whole sequence of
        # schedules must replay bit-for-bit from the same root seed.
        def sequence():
            rng = RngRegistry(11).stream("service.retry")
            return [
                retry_schedule(2, 0.01, 2.0, 0.25, rng)
                for _ in range(50)
            ]

        assert sequence() == sequence()
        assert draws_a[0] == sequence()[0]

    def test_distinct_named_streams_do_not_alias(self):
        registry = RngRegistry(11)
        retry = registry.stream("service.retry")
        arrivals = registry.stream("service.arrivals")
        assert [retry.random() for _ in range(20)] != [
            arrivals.random() for _ in range(20)
        ]

    def test_backoff_and_jitter_bounds(self):
        rng = RngRegistry(0).stream("service.retry")
        schedule = retry_schedule(3, 0.01, 2.0, 0.25, rng)
        assert len(schedule) == 4  # budget + 1 attempts
        for attempt, timeout in enumerate(schedule):
            base = 0.01 * 2.0 ** attempt
            assert base <= timeout <= base * 1.25

    def test_zero_jitter_is_pure_exponential(self):
        rng = RngRegistry(0).stream("service.retry")
        schedule = retry_schedule(2, 0.01, 2.0, 0.0, rng)
        assert schedule == pytest.approx((0.01, 0.02, 0.04))

    def test_validation(self):
        rng = RngRegistry(0).stream("service.retry")
        with pytest.raises(ValueError):
            retry_schedule(-1, 0.01, 2.0, 0.25, rng)
        with pytest.raises(ValueError):
            retry_schedule(2, 0.0, 2.0, 0.25, rng)


# ---------------------------------------------------------------------------
# admission control


class TestAdmission:
    def test_bounded_admission(self):
        admission = AdmissionController(2)
        assert admission.try_admit() and admission.try_admit()
        assert not admission.try_admit()  # typed rejection, O(1)
        assert (admission.admitted, admission.rejected) == (2, 1)
        admission.release()
        assert admission.try_admit()

    def test_unmatched_release_raises(self):
        admission = AdmissionController(1)
        with pytest.raises(RuntimeError, match="without a matching admit"):
            admission.release()


# ---------------------------------------------------------------------------
# circuit breakers


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        sim = FakeSim()
        kwargs.setdefault("window", 4)
        kwargs.setdefault("threshold", 0.5)
        kwargs.setdefault("cooldown_s", 0.1)
        kwargs.setdefault("probes", 2)
        return sim, CircuitBreaker(sim, "host1", **kwargs)

    def _trip(self, sim, breaker):
        for _ in range(4):
            assert breaker.allow()
            breaker.record(False)

    def test_window_of_failures_opens(self):
        sim, breaker = self._breaker()
        self._trip(sim, breaker)
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.fast_fails == 1

    def test_half_open_probes_then_close(self):
        sim, breaker = self._breaker()
        self._trip(sim, breaker)
        sim.now = 0.2  # past the cooldown
        assert breaker.allow()
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        assert not breaker.allow()  # probe quota exhausted
        breaker.record(True)
        breaker.record(True)
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens(self):
        sim, breaker = self._breaker()
        self._trip(sim, breaker)
        sim.now = 0.2
        assert breaker.allow()
        breaker.record(False)
        assert breaker.state == OPEN
        assert breaker.opened_at == 0.2

    def test_stale_results_while_open_are_ignored(self):
        sim, breaker = self._breaker()
        self._trip(sim, breaker)
        breaker.record(True)  # a straggler from before the trip
        assert breaker.state == OPEN

    def test_history_only_walks_legal_edges(self):
        sim, breaker = self._breaker()
        self._trip(sim, breaker)
        sim.now = 0.2
        breaker.allow()
        breaker.record(False)
        sim.now = 0.4
        breaker.allow()
        breaker.record(True)
        breaker.record(True)
        states = [state for _t, state in breaker.transitions]
        assert states[0] == CLOSED
        for edge in zip(states, states[1:]):
            assert edge in LEGAL_TRANSITIONS
        assert breaker.times_opened == 2

    def test_gauges_feed_the_decision(self):
        registry = repro.MetricsRegistry()
        sim = FakeSim()
        breaker = CircuitBreaker(
            sim, "host2", window=2, threshold=0.5, metrics=registry
        )
        breaker.record(False)
        breaker.record(False)
        snapshot = registry.snapshot()
        assert snapshot["service.breaker.host2.state"] == 1  # open
        assert snapshot["service.breaker.host2.error_rate"] == 1.0


# ---------------------------------------------------------------------------
# request book + invariants


class TestRequestBook:
    def test_first_writer_wins(self):
        book = RequestBook()
        book.create(1, 0.0)
        assert book.resolve(1, "completed", 0.1)
        assert not book.resolve(1, "expired", 0.2)  # crash replay
        assert book.outcomes[1][0] == "completed"
        assert book.duplicate_resolutions == 1

    def test_unknown_outcome_rejected(self):
        book = RequestBook()
        with pytest.raises(ValueError, match="unknown outcome"):
            book.resolve(1, "lost-in-the-mail", 0.0)

    def test_no_request_lost_flags_orphans_and_open_requests(self):
        book = RequestBook()
        invariant = NoRequestLost(book)
        book.create(1, 0.0)
        assert invariant.check(0.0) is None
        assert "silently lost" in invariant.check_final(1.0)
        book.resolve(1, "completed", 0.5)
        assert invariant.check_final(1.0) is None
        book.resolve(99, "failed", 0.6)  # never created
        assert "never created" in invariant.check(1.0)

    def test_breaker_sanity_catches_illegal_edges(self):
        sim = FakeSim()
        breaker = CircuitBreaker(sim, "host1", window=2)
        invariant = BreakerSanity({"host1": breaker})
        assert invariant.check(0.0) is None
        breaker.transitions.append((0.1, HALF_OPEN))  # closed->half_open
        breaker.state = HALF_OPEN
        assert "illegal transition" in invariant.check(0.2)


# ---------------------------------------------------------------------------
# the workload end to end


class TestWorkloadRuns:
    @pytest.mark.parametrize("system", ["messengers", "pvm"])
    def test_below_saturation_completes_everything(self, system):
        cluster = build()
        stats = cluster.service.run(system)
        outcomes = stats["outcomes"]
        assert stats["arrivals"] > 0
        assert sum(outcomes.values()) == stats["arrivals"]
        assert outcomes["completed"] > 0.9 * stats["arrivals"]
        assert stats["open_requests"] == 0
        assert stats["goodput_rps"] > 0
        assert stats["latency_ms"]["p50"] > 0

    @pytest.mark.parametrize("system", ["messengers", "pvm"])
    def test_overload_yields_typed_rejections(self, system):
        cluster = build(rate=600.0)
        stats = cluster.service.run(system)
        outcomes = stats["outcomes"]
        assert sum(outcomes.values()) == stats["arrivals"]
        rejected = (
            outcomes["rejected_admission"] + outcomes["rejected_breaker"]
        )
        assert rejected > 0  # overload became typed rejections
        assert outcomes["completed"] > 0  # ...but not an outage

    @pytest.mark.parametrize("system", ["messengers", "pvm"])
    def test_degradation_off_still_terminates_cleanly(self, system):
        cluster = build(rate=600.0, degradation=False)
        stats = cluster.service.run(system)
        outcomes = stats["outcomes"]
        assert sum(outcomes.values()) == stats["arrivals"]
        assert outcomes["rejected_admission"] == 0
        assert outcomes["rejected_breaker"] == 0
        assert stats["open_requests"] == 0

    @pytest.mark.parametrize("system", ["messengers", "pvm"])
    def test_loss_and_crash_lose_no_request(self, system):
        plan = (
            FaultPlan()
            .drop(0.05)
            .crash("host2", at=0.08)
            .restart("host2", at=0.16)
        )
        cluster = build(plan=plan)
        stats = cluster.service.run(system)
        assert sum(stats["outcomes"].values()) == stats["arrivals"]
        assert stats["open_requests"] == 0
        assert stats["outcomes"]["completed"] > 0

    @pytest.mark.parametrize("system", ["messengers", "pvm"])
    def test_churn_loses_no_request(self, system):
        cluster = build()
        cluster.service.schedule_churn(0.08, 0.16, "host1")
        stats = cluster.service.run(system)
        assert sum(stats["outcomes"].values()) == stats["arrivals"]
        assert stats["open_requests"] == 0

    @pytest.mark.parametrize("system", ["messengers", "pvm"])
    def test_bit_identical_across_reruns(self, system):
        def run():
            plan = FaultPlan().drop(0.05)
            with hashing_all_simulators() as hasher:
                cluster = build(plan=plan)
                stats = cluster.service.run(system)
            return stats, hasher.hexdigest()

        assert run() == run()

    def test_different_seed_is_a_different_schedule(self):
        def run(seed):
            with hashing_all_simulators() as hasher:
                build(seed=seed).service.run("messengers")
            return hasher.hexdigest()

        assert run(3) != run(4)

    def test_deadline_aware_transport_stops_dead_retransmits(self):
        # Under loss, PVM RPCs carry their deadline down to the
        # reliable channel: once it passes, the retransmitter gives up
        # instead of hammering the wire with undeliverable traffic.
        plan = FaultPlan().drop(0.25)
        cluster = build(rate=250.0, plan=plan, seed=5)
        cluster.service.run("pvm")
        assert cluster.fault_stats.get("retransmits_deadline_expired", 0) > 0

    def test_workload_runs_exactly_once(self):
        cluster = build()
        cluster.service.run("messengers")
        with pytest.raises(RuntimeError, match="exactly once"):
            cluster.service.run("pvm")

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            build().service.run("mpi")


# ---------------------------------------------------------------------------
# facade wiring


class TestFacade:
    def test_cluster_config_carries_service_config(self):
        config = ServiceConfig(rate_rps=50.0, duration_s=0.1)
        cluster = Cluster(config=ClusterConfig(service=config))
        assert cluster.service.config is config

    def test_default_service_config_when_unset(self):
        cluster = Cluster(config=ClusterConfig())
        assert isinstance(cluster.service, ServiceWorkload)
        assert cluster.service.config == ServiceConfig()

    def test_experiment_builder_step(self):
        config = ServiceConfig(rate_rps=50.0, duration_s=0.1)
        experiment = repro.Experiment().hosts(4).service(config)
        cluster = experiment.build()
        assert cluster.config.service is config
        stats = cluster.service.run("messengers")
        assert sum(stats["outcomes"].values()) == stats["arrivals"]

    def test_service_layer_shows_in_repr(self):
        cluster = Cluster(config=ClusterConfig())
        assert "service" not in repr(cluster)
        cluster.service  # materialize
        assert "service" in repr(cluster)

    def test_with_override_helper(self):
        config = ServiceConfig()
        assert config.with_(rate_rps=9.0).rate_rps == 9.0
        assert config.rate_rps == 125.0  # frozen original untouched

    def test_latency_reservoir_plumbs_and_stays_deterministic(self):
        # The reservoir samples from its own named RNG stream, so two
        # identically-seeded runs report identical quantiles; a negative
        # size is rejected at config time.
        with pytest.raises(ValueError):
            ServiceConfig(latency_reservoir=-1)

        def run():
            cluster = Cluster(config=ClusterConfig(
                n_hosts=4,
                seed=3,
                service=ServiceConfig(
                    rate_rps=150.0,
                    duration_s=0.25,
                    latency_reservoir=128,
                ),
            ))
            return cluster.service.run("messengers")

        first, second = run(), run()
        assert first["latency_ms"] == second["latency_ms"]
        assert first["latency_ms"]["p50"] > 0
        assert first == second


# ---------------------------------------------------------------------------
# schedule search over the degradation invariants


class TestScheduleSearch:
    def test_invariants_clean_over_100_schedules(self):
        from repro.bench import run_degradation_search

        report = run_degradation_search(max_schedules=120)
        assert report["clean"], report["violations"]
        assert report["schedules_run"] >= 100

    def test_searcher_terminates_on_exhausted_vocabulary(self):
        # A vocabulary of 4 schedules cannot spin forever chasing a
        # 50-schedule budget.
        calls = []

        def runner(plan, seed):
            calls.append(plan)

        searcher = repro.ScheduleSearcher(
            runner, hosts=["host1"], horizon_s=1.0,
            crash_fractions=(0.5,), loss_rates=(0.05,),
        )
        report = searcher.search(max_schedules=50)
        assert report["clean"]
        assert report["schedules_run"] < 50
