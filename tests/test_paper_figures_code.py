"""Golden tests: the paper's code listings run verbatim.

Figures 3 and 11 are the paper's MESSENGERS programs.  These tests pin
their exact MCL text (as shipped in ``repro.apps``) and check the
properties the paper states about them — so any change to the scripts
or to language semantics that would desynchronize us from the paper
fails loudly.
"""

import numpy as np

from repro.apps.mandelbrot import MANAGER_WORKER_SCRIPT
from repro.apps.matmul import DISTRIBUTE_A_SCRIPT, ROTATE_B_SCRIPT
from repro.des import Simulator
from repro.messengers import MessengersSystem, build_grid, grid_node_name
from repro.messengers.mcl import compile_source
from repro.netsim import build_lan


class TestFigure3Script:
    def test_compiles_with_no_parameters(self):
        program = compile_source(MANAGER_WORKER_SCRIPT)
        assert program.name == "manager_worker"
        assert program.params == []

    def test_structure_matches_figure_3(self):
        """create(ALL), hop($last), and the while-loop with three
        statements — the 8 effective lines of Figure 3."""
        ops = [
            instr.op
            for instr in compile_source(MANAGER_WORKER_SCRIPT).instructions
        ]
        assert ops.count("CREATE") == 1
        assert ops.count("HOP") == 3  # initial return + 2 in the loop
        assert ops.count("SCHED") == 0  # no virtual time in Figure 3

    def test_no_explicit_synchronization(self):
        """'no explicit synchronization is needed' (§3.1): the script
        contains no locks, barriers, or sched calls — coordination is
        entirely the non-preemptive scheduler + navigation."""
        source = MANAGER_WORKER_SCRIPT.lower()
        for forbidden in ("lock", "barrier", "m_sched", "wait"):
            assert forbidden not in source


class TestFigure11Scripts:
    def test_parameters_match_figure_11(self):
        dist = compile_source(DISTRIBUTE_A_SCRIPT)
        rot = compile_source(ROTATE_B_SCRIPT)
        assert dist.params == ["s", "m", "i", "j"]
        assert rot.params == ["s", "m", "i", "j"]

    def test_node_variable_declarations(self):
        dist = compile_source(DISTRIBUTE_A_SCRIPT)
        rot = compile_source(ROTATE_B_SCRIPT)
        assert dist.node_vars == frozenset({"resid_A", "curr_A"})
        assert rot.node_vars == frozenset({"resid_B", "curr_A", "C"})

    def test_distribute_wakes_on_integer_ticks(self):
        """(j - i) mod m lands on 0..m-1 — full ticks."""
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 4))
        build_grid(system, 2)
        wakes = []

        @system.natives.register
        def copy_block(env, block):
            if env.messenger.hops == 0:  # the at-home copy of resid_A
                wakes.append((env.node.name, env.vt))
            return block

        for i in range(2):
            for j in range(2):
                node = grid_node_name(i, j)
                daemon = system.logical.find_named(node)[0].daemon
                system.logical.find_named(node)[0].variables[
                    "resid_A"
                ] = np.zeros((2, 2))
                system.inject(
                    DISTRIBUTE_A_SCRIPT,
                    args=(2, 2, i, j),
                    daemon=daemon,
                    node=node,
                )
        system.run_to_quiescence()
        first_wakes = {}
        for name, vt in wakes:
            first_wakes.setdefault(name, vt)
        # diagonal (0,0),(1,1) at tick 0; (0,1),(1,0) at tick 1
        assert first_wakes["0,0"] == 0.0
        assert first_wakes["1,1"] == 0.0
        assert first_wakes["0,1"] == 1.0
        assert first_wakes["1,0"] == 1.0

    def test_rotation_direction_is_upward(self):
        """rotate_B hops ldir=+ along 'column', i.e. toward row i-1 —
        Figure 8(b)'s upward circular shift."""
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 4))
        build_grid(system, 3)
        path = []

        @system.natives.register
        def mark(env):
            path.append(env.node.name)
            return 0

        system.inject(
            """
            walk() {
                mark();
                hop(ll = "column"; ldir = +);
                mark();
                hop(ll = "column"; ldir = +);
                mark();
            }
            """,
            node=grid_node_name(2, 0),
            daemon=system.logical.find_named(grid_node_name(2, 0))[0].daemon,
        )
        system.run_to_quiescence()
        assert path == ["2,0", "1,0", "0,0"]

    def test_alternation_claim(self):
        """'the two Messengers distribute_A and rotate_B always
        alternate between their respective executions' (§3.2)."""
        from repro.apps.matmul import make_matrices, run_messengers

        a, b = make_matrices(12)
        result = run_messengers(a, b, 2)
        assert np.allclose(result.c, a @ b)
        # m=2: ticks 0, 0.5, 1, 1.5 -> 4 GVT advances minus the free
        # tick-0 start.
        assert result.gvt_rounds == 3
