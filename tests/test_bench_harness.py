"""Unit tests for the benchmark harness (reporting + shape assertions)."""

import pytest

from repro.bench import (
    Figure,
    Series,
    ShapeViolation,
    ascii_chart,
    assert_faster_beyond,
    assert_roughly_monotone,
    assert_speedup_at_least,
    blocking_speedup_model,
    crossover_interval,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.5], ["long-name", 20000.0]],
            title="Things",
        )
        lines = text.splitlines()
        assert lines[0] == "Things"
        assert "name" in lines[1] and "value" in lines[1]
        assert "-" in lines[2]
        assert "1.500" in text and "20000" in text

    def test_small_float_formatting(self):
        text = format_table(["x"], [[0.00123], [0.0]])
        assert "0.0012" in text
        assert "\n  0\n" in text or text.endswith("0")

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestSeriesAndFigure:
    def test_series_lookup(self):
        series = Series("s")
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert series.y_at(2) == 20.0
        with pytest.raises(ValueError):
            series.y_at(99)

    def test_figure_table_unions_x(self):
        figure = Figure("T", "x", "y")
        a = figure.new_series("a")
        b = figure.new_series("b")
        a.add(1, 1.0)
        a.add(2, 2.0)
        b.add(2, 4.0)
        text = figure.as_table()
        assert "T" in text
        # x=1 row has a blank for series b
        lines = [ln for ln in text.splitlines() if ln.strip().startswith("1")]
        assert lines

    def test_render_includes_chart_and_legend(self):
        figure = Figure("T", "x", "seconds")
        s = figure.new_series("only")
        for x in range(5):
            s.add(x, float(x * x))
        text = figure.render()
        assert "a=only" in text
        assert "y: seconds" in text

    def test_empty_chart(self):
        assert ascii_chart([]) == "(empty chart)"

    def test_flat_series_does_not_crash(self):
        s = Series("flat")
        s.add(0, 5.0)
        s.add(10, 5.0)
        text = ascii_chart([s])
        assert "a=flat" in text


class TestShapeAssertions:
    def test_crossover_found(self):
        xs = [1, 2, 3, 4]
        a = [1.0, 2.0, 3.0, 4.0]
        b = [2.0, 2.5, 2.6, 2.7]
        assert crossover_interval(xs, a, b) == (2, 3)

    def test_no_crossover(self):
        xs = [1, 2, 3]
        assert crossover_interval(xs, [1, 2, 3], [4, 5, 6]) is None

    def test_exact_tie_is_a_crossover_point(self):
        xs = [1, 2, 3]
        assert crossover_interval(xs, [1, 5, 9], [3, 5, 7]) == (2, 2)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crossover_interval([1], [1, 2], [1, 2])

    def test_faster_beyond_passes_within_tolerance(self):
        assert_faster_beyond(
            [1, 2, 3], [1.0, 2.0, 3.05], [9.0, 2.0, 3.0],
            threshold_x=2, tolerance=1.05,
        )

    def test_faster_beyond_raises(self):
        with pytest.raises(ShapeViolation):
            assert_faster_beyond(
                [1, 2], [5.0, 5.0], [1.0, 1.0], threshold_x=1
            )

    def test_speedup_assertion(self):
        assert_speedup_at_least(10.0, 2.0, 4.9)
        with pytest.raises(ShapeViolation):
            assert_speedup_at_least(10.0, 2.0, 5.1)

    def test_roughly_monotone_allows_noise(self):
        assert_roughly_monotone([10, 9, 9.5, 5, 5.2], decreasing=True)

    def test_roughly_monotone_rejects_trend_break(self):
        with pytest.raises(ShapeViolation):
            assert_roughly_monotone([10, 5, 9], decreasing=True)

    def test_roughly_monotone_increasing(self):
        assert_roughly_monotone([1, 2, 1.95, 4], decreasing=False)
        with pytest.raises(ShapeViolation):
            assert_roughly_monotone([1, 4, 2], decreasing=False)


class TestBlockingModel:
    def test_paper_anchor(self):
        point = blocking_speedup_model(n=1500, m=3)
        assert point["block"] == 500
        assert 10 < point["speedup_pct"] < 17

    def test_in_cache_no_gain(self):
        point = blocking_speedup_model(n=120, m=2)
        assert point["speedup_pct"] == pytest.approx(0.0, abs=0.5)
