"""Unit tests for simulation processes (spawn, wait, interrupt)."""

import pytest

from repro.des import Interrupt, ProcessDead, Simulator, SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestProcessBasics:
    def test_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_process_is_waitable_event(self, sim):
        def child(sim):
            yield sim.timeout(3)
            return "child-result"

        def parent(sim):
            result = yield sim.process(child(sim))
            assert result == "child-result"
            return "parent-done"

        p = sim.process(parent(sim))
        assert sim.run(until=p) == "parent-done"
        assert sim.now == 3

    def test_exception_propagates_to_waiter(self, sim):
        def child(sim):
            yield sim.timeout(1)
            raise KeyError("missing")

        def parent(sim):
            with pytest.raises(KeyError):
                yield sim.process(child(sim))
            return "survived"

        p = sim.process(parent(sim))
        assert sim.run(until=p) == "survived"

    def test_unwaited_crash_surfaces(self, sim):
        def bad(sim):
            yield sim.timeout(1)
            raise RuntimeError("unobserved")

        sim.process(bad(sim))
        with pytest.raises(RuntimeError, match="unobserved"):
            sim.run()

    def test_yield_non_event_fails_process(self, sim):
        def bad(sim):
            yield "not an event"

        p = sim.process(bad(sim))
        with pytest.raises(SimulationError, match="non-event"):
            sim.run(until=p)

    def test_immediate_return(self, sim):
        def instant(sim):
            return 7
            yield  # pragma: no cover - makes this a generator

        p = sim.process(instant(sim))
        assert sim.run(until=p) == 7
        assert sim.now == 0

    def test_is_alive_transitions(self, sim):
        def proc(sim):
            yield sim.timeout(5)

        p = sim.process(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_active_process_visible(self, sim):
        seen = []

        def proc(sim):
            seen.append(sim.active_process)
            yield sim.timeout(1)

        p = sim.process(proc(sim))
        sim.run()
        assert seen == [p]
        assert sim.active_process is None


class TestInterrupts:
    def test_interrupt_delivers_cause(self, sim):
        causes = []

        def victim(sim):
            try:
                yield sim.timeout(100)
            except Interrupt as intr:
                causes.append((sim.now, intr.cause))

        def attacker(sim, victim_proc):
            yield sim.timeout(2)
            victim_proc.interrupt("wake up")

        v = sim.process(victim(sim))
        sim.process(attacker(sim, v))
        sim.run(until=v)
        assert causes == [(2, "wake up")]
        assert sim.now == 2

    def test_interrupted_process_can_continue(self, sim):
        def victim(sim):
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(5)
            return "finished"

        def attacker(sim, victim_proc):
            yield sim.timeout(1)
            victim_proc.interrupt()

        v = sim.process(victim(sim))
        sim.process(attacker(sim, v))
        assert sim.run(until=v) == "finished"
        assert sim.now == 6

    def test_interrupt_dead_process_raises(self, sim):
        def quick(sim):
            yield sim.timeout(1)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(ProcessDead):
            p.interrupt()

    def test_self_interrupt_rejected(self, sim):
        def proc(sim):
            with pytest.raises(SimulationError):
                sim.active_process.interrupt()
            yield sim.timeout(1)

        p = sim.process(proc(sim))
        sim.run(until=p)

    def test_unhandled_interrupt_kills_process(self, sim):
        def victim(sim):
            yield sim.timeout(100)

        def attacker(sim, victim_proc):
            yield sim.timeout(1)
            victim_proc.interrupt("die")

        v = sim.process(victim(sim))
        sim.process(attacker(sim, v))
        with pytest.raises(Interrupt):
            sim.run(until=v)

    def test_original_target_unaffected_after_interrupt(self, sim):
        """The timeout a victim waited on must not resume it later."""
        resumed = []

        def victim(sim):
            try:
                yield sim.timeout(10)
                resumed.append("timeout")
            except Interrupt:
                resumed.append("interrupt")
            yield sim.timeout(50)
            resumed.append("second")

        def attacker(sim, v):
            yield sim.timeout(1)
            v.interrupt()

        v = sim.process(victim(sim))
        sim.process(attacker(sim, v))
        sim.run()
        assert resumed == ["interrupt", "second"]
        assert sim.now == 51


class TestProcessChains:
    def test_deep_chain(self, sim):
        def leaf(sim):
            yield sim.timeout(1)
            return 1

        def node(sim, depth):
            if depth == 0:
                result = yield sim.process(leaf(sim))
            else:
                result = yield sim.process(node(sim, depth - 1))
            return result + 1

        p = sim.process(node(sim, 20))
        assert sim.run(until=p) == 22

    def test_fan_out_fan_in(self, sim):
        def worker(sim, k):
            yield sim.timeout(k)
            return k * k

        def coordinator(sim):
            workers = [sim.process(worker(sim, k)) for k in range(1, 6)]
            results = yield sim.all_of(workers)
            return sum(results.values())

        p = sim.process(coordinator(sim))
        assert sim.run(until=p) == 1 + 4 + 9 + 16 + 25
        assert sim.now == 5
