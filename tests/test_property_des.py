"""Property-based tests for the simulation kernel (hypothesis)."""


from hypothesis import given, settings, strategies as st

from repro.des import PriorityStore, Resource, Simulator, Store


class TestEventOrderingProperties:
    @given(delays=st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        min_size=1, max_size=50,
    ))
    def test_timeouts_fire_in_sorted_order(self, delays):
        sim = Simulator()
        fired = []

        def proc(sim, delay):
            yield sim.timeout(delay)
            fired.append(delay)

        for delay in delays:
            sim.process(proc(sim, delay))
        sim.run()
        assert fired == sorted(delays)
        assert sim.now == max(delays)

    @given(delays=st.lists(
        st.integers(min_value=0, max_value=100), min_size=2, max_size=30,
    ))
    def test_equal_delays_preserve_creation_order(self, delays):
        sim = Simulator()
        fired = []

        def proc(sim, delay, tag):
            yield sim.timeout(delay)
            fired.append((delay, tag))

        for tag, delay in enumerate(delays):
            sim.process(proc(sim, delay, tag))
        sim.run()
        assert fired == sorted(
            ((delay, tag) for tag, delay in enumerate(delays)),
        )

    @given(
        delays=st.lists(
            st.floats(min_value=0.001, max_value=100, allow_nan=False),
            min_size=1, max_size=20,
        ),
        cutoff=st.floats(min_value=0.0, max_value=120, allow_nan=False),
    )
    def test_run_until_never_overshoots(self, delays, cutoff):
        sim = Simulator()

        def proc(sim, delay):
            yield sim.timeout(delay)

        for delay in delays:
            sim.process(proc(sim, delay))
        sim.run(until=cutoff)
        assert sim.now <= cutoff + 1e-12


class TestStoreProperties:
    @given(items=st.lists(st.integers(), max_size=50))
    def test_store_is_fifo(self, items):
        sim = Simulator()
        store = Store(sim)
        received = []

        def producer(sim):
            for item in items:
                yield store.put(item)

        def consumer(sim):
            for _ in items:
                received.append((yield store.get()))

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert received == items

    @given(items=st.lists(
        st.tuples(st.integers(), st.integers()), max_size=40,
    ))
    def test_priority_store_is_heap_ordered(self, items):
        sim = Simulator()
        store = PriorityStore(sim)
        received = []

        def producer(sim):
            for item in items:
                yield store.put(item)

        def consumer(sim):
            yield sim.timeout(1)
            for _ in items:
                received.append((yield store.get()))

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert received == sorted(items)

    @given(
        items=st.lists(st.integers(), min_size=1, max_size=30),
        capacity=st.integers(min_value=1, max_value=5),
    )
    def test_bounded_store_never_overfills(self, items, capacity):
        sim = Simulator()
        store = Store(sim, capacity=capacity)
        max_seen = 0

        def producer(sim):
            for item in items:
                yield store.put(item)

        def watcher(sim):
            nonlocal max_seen
            while True:
                max_seen = max(max_seen, len(store))
                yield sim.timeout(0.1)

        def consumer(sim):
            for _ in items:
                yield sim.timeout(1)
                yield store.get()

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.process(watcher(sim))
        sim.run(until=len(items) + 2)
        assert max_seen <= capacity


class TestResourceProperties:
    @given(
        holds=st.lists(
            st.floats(min_value=0.01, max_value=5, allow_nan=False),
            min_size=1, max_size=20,
        ),
        capacity=st.integers(min_value=1, max_value=4),
    )
    @settings(deadline=None)
    def test_concurrency_never_exceeds_capacity(self, holds, capacity):
        sim = Simulator()
        resource = Resource(sim, capacity=capacity)
        active = 0
        peak = 0

        def job(sim, hold):
            nonlocal active, peak
            req = resource.request()
            yield req
            active += 1
            peak = max(peak, active)
            yield sim.timeout(hold)
            active -= 1
            resource.release(req)

        for hold in holds:
            sim.process(job(sim, hold))
        sim.run()
        assert peak <= capacity
        assert active == 0
        assert resource.count == 0

    @given(
        holds=st.lists(
            st.floats(min_value=0.1, max_value=2, allow_nan=False),
            min_size=1, max_size=15,
        ),
    )
    @settings(deadline=None)
    def test_exclusive_resource_serializes_total_time(self, holds):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def job(sim, hold):
            with resource.request() as req:
                yield req
                yield sim.timeout(hold)

        for hold in holds:
            sim.process(job(sim, hold))
        sim.run()
        assert sim.now >= sum(holds) - 1e-9


class TestSchedulerEquivalenceProperties:
    """The calendar queue and the binary heap are the same scheduler.

    The equivalence claim the golden-digest tests pin on real workloads,
    stated as a property: for *any* interleaving of pushes and pops of
    valid queue entries, :class:`~repro.des.CalendarQueue` drains in
    exactly the order ``heapq`` does (full-tuple order — time, then
    priority, then event id).  Pushes are allowed at any time, including
    behind the calendar cursor (an earlier-time entry pushed after later
    ones were popped from the same region must still come out first).
    """

    entry_times = st.one_of(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        # Degenerate widths: bursts of identical and near-identical
        # times collapse into one bucket; huge outliers stretch the
        # width estimate.
        st.sampled_from([0.0, 1.0, 1.0, 1.0 + 1e-12, 1e-9, 1e6]),
    )

    @given(
        batches=st.lists(
            st.tuples(
                st.lists(entry_times, min_size=0, max_size=40),
                st.integers(min_value=0, max_value=40),
            ),
            min_size=1, max_size=8,
        ),
        priorities=st.data(),
    )
    @settings(deadline=None, max_examples=200)
    def test_calendar_drains_in_heap_order(self, batches, priorities):
        import heapq

        from repro.des import CalendarQueue

        calendar = CalendarQueue()
        heap: list = []
        popped_cal: list = []
        popped_heap: list = []
        eid = 0
        for times, n_pops in batches:
            for t in times:
                prio = priorities.draw(
                    st.integers(min_value=0, max_value=1)
                )
                entry = (t, prio, eid, eid % 4, None)
                eid += 1
                calendar.push(entry)
                heapq.heappush(heap, entry)
            for _ in range(min(n_pops, len(heap))):
                popped_cal.append(calendar.pop())
                popped_heap.append(heapq.heappop(heap))
        while heap:
            popped_cal.append(calendar.pop())
            popped_heap.append(heapq.heappop(heap))
        assert popped_cal == popped_heap
        assert len(calendar) == 0

    @given(
        delays=st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=1, max_size=30,
        ),
    )
    @settings(deadline=None)
    def test_whole_simulations_agree(self, delays):
        from repro.des import scheduler_default

        def trace(kind):
            with scheduler_default(kind):
                sim = Simulator()
                fired = []

                def proc(sim, delay, tag):
                    yield sim.timeout(delay)
                    fired.append((sim.now, tag))

                for tag, delay in enumerate(delays):
                    sim.process(proc(sim, delay, tag))
                sim.run()
                return fired, sim.now

        assert trace("heap") == trace("calendar")
