"""Tests for execution tracing and logical-network export."""

import pytest

from repro.des import Simulator
from repro.netsim import build_lan
from repro.messengers import (
    MessengersSystem,
    Tracer,
    build_grid,
    to_dot,
    to_networkx,
)


@pytest.fixture
def traced_system():
    sim = Simulator()
    system = MessengersSystem(build_lan(sim, 3))
    tracer = Tracer.attach(system)
    return system, tracer


class TestTracer:
    def test_records_lifecycle(self, traced_system):
        system, tracer = traced_system
        messenger = system.inject(
            "f() { create(ALL); hop(ll = $last); }"
        )
        system.run_to_quiescence()
        kinds = tracer.counts()
        assert kinds.get("arrive", 0) >= 2  # two create arrivals
        assert kinds.get("hop", 0) >= 2  # two hops back
        assert kinds.get("done", 0) >= 2

    def test_journey_follows_one_messenger(self, traced_system):
        system, tracer = traced_system
        system.inject("f() { M_sched_time_abs(1); }")
        system.run_to_quiescence()
        [done] = tracer.of_kind("done")
        journey = tracer.journey(done.messenger)
        assert [e.kind for e in journey] == ["sched", "done"]
        assert journey[0].vt == 0.0
        assert journey[1].vt == 1.0

    def test_timeline_readable(self, traced_system):
        system, tracer = traced_system
        system.inject("f() { create(ALL); }")
        system.run_to_quiescence()
        text = tracer.timeline()
        assert "m#" in text and "done" in text

    def test_timeline_limit(self, traced_system):
        system, tracer = traced_system
        system.inject("f() { create(ALL); hop(ll = $last); }")
        system.run_to_quiescence()
        text = tracer.timeline(limit=2)
        assert "more)" in text

    def test_capacity_drops_excess(self):
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 3))
        tracer = Tracer.attach(system, capacity=3)
        system.inject("f() { create(ALL); hop(ll = $last); }")
        system.run_to_quiescence()
        assert len(tracer) == 3
        assert tracer.dropped > 0

    def test_clear(self, traced_system):
        system, tracer = traced_system
        system.inject("f() { create(ALL); }")
        system.run_to_quiescence()
        tracer.clear()
        assert len(tracer) == 0

    def test_untraced_system_has_no_overhead_records(self):
        sim = Simulator()
        system = MessengersSystem(build_lan(sim, 2))
        system.inject("f() { create(ALL); }")
        system.run_to_quiescence()  # no tracer attached; must not crash
        assert system.tracer is None

    def test_timings_are_deterministic_with_tracing(self):
        def run(with_tracer):
            sim = Simulator()
            system = MessengersSystem(build_lan(sim, 3))
            if with_tracer:
                Tracer.attach(system)
            system.inject("f() { create(ALL); hop(ll = $last); }")
            return system.run_to_quiescence()

        assert run(True) == run(False)  # tracing charges no virtual time


class TestExport:
    def test_dot_contains_nodes_and_clusters(self, traced_system):
        system, _tracer = traced_system
        build_grid(system, 2)
        dot = to_dot(system.logical)
        assert "digraph" in dot
        assert "cluster_0" in dot
        assert '"row"' in dot or "label=\"row\"" in dot
        assert dot.count("->") >= 4  # grid links + init anchors

    def test_dot_marks_undirected_links(self, traced_system):
        system, _tracer = traced_system
        build_grid(system, 2)
        dot = to_dot(system.logical)
        assert "dir=none" in dot  # row links are undirected

    def test_networkx_round_trip(self, traced_system):
        import networkx as nx

        system, _tracer = traced_system
        build_grid(system, 3)
        graph = to_networkx(system.logical)
        # 9 grid nodes + 3 init nodes
        assert graph.number_of_nodes() == 12
        # grid is connected when viewed undirected
        grid_nodes = [
            n for n, data in graph.nodes(data=True)
            if data["name"] != "init"
        ]
        undirected = graph.to_undirected()
        assert nx.is_connected(undirected.subgraph(grid_nodes))

    def test_networkx_attributes(self, traced_system):
        system, _tracer = traced_system
        node = system.logical.create_node("data", "host1")
        node.variables["queue"] = [1, 2]
        graph = to_networkx(system.logical)
        attrs = graph.nodes[node.uid]
        assert attrs["daemon"] == "host1"
        assert attrs["variables"] == ["queue"]
