"""Unit tests for the basic-block closures backend and its plumbing.

The broad equivalence proof lives in ``test_mcl_backend_differential``
(random programs) and ``test_perf_determinism`` (golden traces); these
are the targeted shapes — resumption, block partitioning, error parity,
backend selection, and the bounded program cache.
"""

import pytest

from repro.des import (
    MCL_BACKENDS,
    Simulator,
    mcl_backend_default,
    set_default_mcl_backend,
)
from repro.facade import Cluster, ClusterConfig, Experiment
from repro.messengers.mcl import closures, vm
from repro.messengers.mcl.bytecode import (
    DoneCommand,
    HopCommand,
    SchedCommand,
)
from repro.messengers.mcl.closures import compile_blocks
from repro.messengers.mcl.compiler import LruCache, compile_source
from repro.messengers.mcl.vm import Frame, MclRuntimeError


def _run(frame, mvars, nvars=None, netvals=None, natives=None):
    return closures.run(
        frame,
        mvars,
        nvars if nvars is not None else {},
        lambda name: (netvals or {}).get(name, 0),
        lambda name, args: (natives or {})[name](*args),
    )


class TestCompiledBlocks:
    def test_blocks_cached_on_program(self):
        program = compile_source("f() { x = 1; }", "f")
        program._closures = None
        first = compile_blocks(program)
        assert compile_blocks(program) is first

    def test_partition_splits_at_yields_and_jumps(self):
        program = compile_source(
            'f() { x = 0; while (x < 3) { hop(ll = "l"); x = x + 1; } }',
            "f",
        )
        program._closures = None
        compiled = compile_blocks(program)
        # Loop head, body after the hop, and exit are distinct blocks.
        assert len(compiled.blocks) >= 4
        # Static per-block counts cover the whole program exactly once.
        assert sum(count for _, count in compiled.blocks) == len(
            program.instructions
        )

    def test_resumes_at_block_after_sched(self):
        program = compile_source(
            "f() { x = 1; M_sched_time_dlt(2); x = x + 10; return x; }",
            "f",
        )
        program._closures = None
        frame = Frame(program)
        mvars = {}
        command = _run(frame, mvars)
        assert isinstance(command, SchedCommand)
        assert frame.block >= 0  # resumption hint recorded
        done = _run(frame, mvars)
        assert isinstance(done, DoneCommand)
        assert done.value == 11

    def test_resumes_with_stale_block_hint(self):
        # A frame arriving from the interpreter (block == -1) or with a
        # wrong hint must re-derive the entry block from pc.
        program = compile_source(
            'f() { x = 5; hop(ll = "l"); x = x + 1; return x; }', "f"
        )
        program._closures = None
        frame = Frame(program)
        mvars = {}
        command = vm.run(  # first slice under the interpreter
            frame, mvars, {}, lambda n: 0, lambda n, a: 0
        )
        assert isinstance(command, HopCommand)
        assert frame.block == -1
        done = _run(frame, mvars)  # resumed under closures
        assert isinstance(done, DoneCommand)
        assert done.value == 6

        frame2 = Frame(program)
        mvars2 = {}
        assert isinstance(_run(frame2, mvars2), HopCommand)
        frame2.block = 0  # deliberately wrong hint; pc disagrees
        assert _run(frame2, mvars2).value == 6

    def test_clone_carries_block_hint(self):
        program = compile_source(
            'f() { hop(ll = "l"); return 1; }', "f"
        )
        program._closures = None
        frame = Frame(program)
        assert isinstance(_run(frame, {}), HopCommand)
        clone = frame.clone()
        assert clone.block == frame.block
        assert clone.pc == frame.pc
        assert _run(clone, {}).value == 1

    def test_done_on_frame_past_end(self):
        program = compile_source("f() { x = 1; }", "f")
        program._closures = None
        frame = Frame(program)
        assert isinstance(_run(frame, {}), DoneCommand)
        again = _run(frame, {})  # pc is past the end now
        assert isinstance(again, DoneCommand)
        assert again.instructions == 0

    def test_max_instructions_guard(self):
        program = compile_source("f() { while (1) { x = 1; } }", "f")
        program._closures = None
        with pytest.raises(MclRuntimeError, match="exceeded"):
            closures.run(
                Frame(program), {}, {}, lambda n: 0, lambda n, a: 0,
                max_instructions=1000,
            )

    def test_error_class_parity_on_bad_arith(self):
        program = compile_source('f() { x = 1 + "s"; }', "f")
        for backend in (vm.run, closures.run):
            program._dispatch = None
            program._closures = None
            with pytest.raises(MclRuntimeError):
                backend(
                    Frame(program), {}, {}, lambda n: 0, lambda n, a: 0
                )

    def test_native_exceptions_propagate_raw(self):
        class Boom(Exception):
            pass

        def explode():
            raise Boom()

        program = compile_source("f() { explode(); }", "f")
        program._dispatch = None
        program._closures = None
        for backend in (vm.run, closures.run):
            with pytest.raises(Boom):
                backend(
                    Frame(program), {}, {},
                    lambda n: 0,
                    lambda n, a: {"explode": explode}[n](*a),
                )

    def test_opcounts_requests_take_reference_path(self):
        program = compile_source("f() { x = 1 + 2; return x; }", "f")
        program._closures = None
        counts: dict = {}
        command = closures.run(
            Frame(program), {}, {}, lambda n: 0, lambda n, a: 0,
            opcounts=counts,
        )
        assert isinstance(command, DoneCommand)
        assert sum(counts.values()) == command.instructions


class TestBackendSelection:
    def test_simulator_knob_validates(self):
        assert Simulator().mcl_backend == "interp"
        assert Simulator(mcl_backend="closures").mcl_backend == "closures"
        with pytest.raises(ValueError, match="unknown MCL backend"):
            Simulator(mcl_backend="jit")

    def test_process_default_round_trips(self):
        assert set(MCL_BACKENDS) == {"interp", "closures"}
        with mcl_backend_default("closures"):
            assert Simulator().mcl_backend == "closures"
        assert Simulator().mcl_backend == "interp"
        with pytest.raises(ValueError):
            set_default_mcl_backend("nope")

    def test_cluster_config_knob(self):
        with pytest.raises(ValueError, match="unknown MCL backend"):
            ClusterConfig(mcl_backend="jit")
        cluster = Cluster(
            config=ClusterConfig(n_hosts=2, mcl_backend="closures")
        )
        assert cluster.sim.mcl_backend == "closures"
        daemon = next(iter(cluster.messengers.daemons.values()))
        assert daemon._vm_run is closures.run

    def test_experiment_builder_step(self):
        cluster = (
            Experiment().hosts(2).mcl_backend("closures").build()
        )
        assert cluster.sim.mcl_backend == "closures"

    def test_cluster_end_to_end_under_closures(self):
        results = []
        for backend in ("interp", "closures"):
            cluster = Cluster(
                config=ClusterConfig(n_hosts=2, mcl_backend=backend)
            )
            cluster.inject(
                "f(n) { i = 0; acc = 0; while (i < n) "
                "{ acc = acc + i; i = i + 1; } n_result = acc; }",
                args=[25],
            )
            cluster.run_to_quiescence()
            results.append(cluster.sim.now)
        assert results[0] == results[1] > 0


class TestProgramCacheLru:
    def test_hits_and_misses_counted(self):
        cache = LruCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_capacity_evicts_least_recent(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LruCache(capacity=0)

    def test_cache_gauges_exported_through_obs(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        cluster = Cluster(
            config=ClusterConfig(n_hosts=1, metrics=registry)
        )
        source = "f() { x = 1; }"
        cluster.messengers.compile(source)
        cluster.messengers.compile(source)
        snap = registry.snapshot()
        assert snap["mcl_cache_misses"] == 1
        assert snap["mcl_cache_hits"] == 1
