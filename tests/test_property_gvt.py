"""Property-based tests for the virtual-time kernels (hypothesis).

The central invariant of §2.2: whatever synchronization strategy is
used, the committed computation must be identical.  We generate random
event workloads — random LP graphs, random itineraries, random costs —
and assert the conservative and Time-Warp kernels commit identical
final states.
"""

from hypothesis import given, settings, strategies as st

from repro.des import Simulator
from repro.gvt import (
    ConservativeKernel,
    Event,
    LpSpec,
    TimeWarpKernel,
    phold,
)


@st.composite
def random_workloads(draw):
    """A deterministic multi-hop workload over a small LP set."""
    n_lps = draw(st.integers(min_value=1, max_value=4))
    n_jobs = draw(st.integers(min_value=1, max_value=6))
    hops = draw(st.integers(min_value=1, max_value=8))
    itineraries = [
        [
            (
                draw(st.integers(min_value=0, max_value=n_lps - 1)),
                draw(
                    st.floats(
                        min_value=0.25, max_value=3.0,
                        allow_nan=False, allow_infinity=False,
                    )
                ),
            )
            for _ in range(hops)
        ]
        for _ in range(n_jobs)
    ]
    costs = [
        draw(st.floats(min_value=0.0, max_value=0.01, allow_nan=False))
        for _ in range(n_lps)
    ]
    return n_lps, itineraries, costs


def build(n_lps, itineraries, costs):
    hops = len(itineraries[0])

    def handler(state, event):
        job, hop_index = event.payload
        state.setdefault("trace", []).append(
            (job, hop_index, round(event.timestamp, 9))
        )
        if hop_index + 1 >= hops:
            return []
        target, increment = itineraries[job][hop_index + 1]
        return [
            Event(
                timestamp=event.timestamp + increment,
                target=f"lp{target}",
                payload=(job, hop_index + 1),
            )
        ]

    specs = [
        LpSpec(name=f"lp{i}", handler=handler, cost_s=costs[i])
        for i in range(n_lps)
    ]
    initial = []
    for job, itinerary in enumerate(itineraries):
        target, increment = itinerary[0]
        initial.append(
            Event(timestamp=increment, target=f"lp{target}",
                  payload=(job, 0))
        )
    return specs, initial


def canonical(states):
    return {
        name: sorted(state.get("trace", []))
        for name, state in states.items()
    }


class TestEngineEquivalence:
    @given(workload=random_workloads())
    @settings(max_examples=25, deadline=None)
    def test_conservative_equals_timewarp(self, workload):
        n_lps, itineraries, costs = workload

        specs_c, initial_c = build(n_lps, itineraries, costs)
        kernel_c = ConservativeKernel(Simulator(), specs_c)
        for event in initial_c:
            kernel_c.post(event)
        stats_c = kernel_c.run()
        states_c = canonical({s.name: s.state for s in specs_c})

        specs_o, initial_o = build(n_lps, itineraries, costs)
        kernel_o = TimeWarpKernel(
            Simulator(), specs_o, gvt_interval_s=0.002
        )
        for event in initial_o:
            kernel_o.post(event)
        stats_o = kernel_o.run()
        states_o = canonical(
            {s.name: kernel_o.state_of(s.name) for s in specs_o}
        )

        assert states_c == states_o
        # Committed event counts agree too (TW may process more, but
        # rolled-back work is subtracted).
        committed_c = stats_c.events_processed
        committed_o = stats_o.events_processed - stats_o.events_rolled_back
        assert committed_c == committed_o

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_phold_equivalence_over_seeds(self, seed):
        specs_c, initial_c = phold(
            n_lps=3, population=4, hops=8, seed=seed
        )
        kernel_c = ConservativeKernel(Simulator(), specs_c)
        for event in initial_c:
            kernel_c.post(event)
        kernel_c.run()

        specs_o, initial_o = phold(
            n_lps=3, population=4, hops=8, seed=seed
        )
        kernel_o = TimeWarpKernel(
            Simulator(), specs_o, gvt_interval_s=0.005
        )
        for event in initial_o:
            kernel_o.post(event)
        kernel_o.run()

        for spec_c, spec_o in zip(specs_c, specs_o):
            assert spec_c.state.get("arrivals", 0) == kernel_o.state_of(
                spec_o.name
            ).get("arrivals", 0)
            assert sorted(spec_c.state.get("jobs_seen", [])) == sorted(
                kernel_o.state_of(spec_o.name).get("jobs_seen", [])
            )

    @given(workload=random_workloads())
    @settings(max_examples=15, deadline=None)
    def test_timewarp_commits_every_event_exactly_once(self, workload):
        n_lps, itineraries, costs = workload
        specs, initial = build(n_lps, itineraries, costs)
        kernel = TimeWarpKernel(Simulator(), specs, gvt_interval_s=0.002)
        for event in initial:
            kernel.post(event)
        stats = kernel.run()

        total_committed = sum(
            len(kernel.state_of(s.name).get("trace", [])) for s in specs
        )
        expected = len(itineraries) * len(itineraries[0])
        assert total_committed == expected
        assert (
            stats.events_processed - stats.events_rolled_back == expected
        )
