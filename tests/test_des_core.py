"""Unit tests for the simulation kernel core (events, clock, run)."""

import pytest

from repro.des import (
    EventAlreadyTriggered,
    Simulator,
    SimulationError,
)


@pytest.fixture
def sim():
    return Simulator()


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        def proc(sim):
            yield sim.timeout(5)

        sim.process(proc(sim))
        sim.run()
        assert sim.now == 5

    def test_run_until_time(self, sim):
        def proc(sim):
            while True:
                yield sim.timeout(1)

        sim.process(proc(sim))
        sim.run(until=10)
        assert sim.now == 10

    def test_run_until_past_raises(self, sim):
        def proc(sim):
            yield sim.timeout(100)

        sim.process(proc(sim))
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=50)

    def test_empty_run_returns(self, sim):
        sim.run()
        assert sim.now == 0.0

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")

    def test_peek_reports_next_event_time(self, sim):
        sim.timeout(7)
        assert sim.peek() == 7


class TestEvents:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        seen = []

        def proc(sim):
            seen.append((yield ev))

        sim.process(proc(sim))
        ev.succeed("payload")
        sim.run()
        assert seen == ["payload"]

    def test_double_succeed_raises(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(EventAlreadyTriggered):
            ev.succeed(2)

    def test_fail_then_succeed_raises(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("x"))
        ev.defuse()
        with pytest.raises(EventAlreadyTriggered):
            ev.succeed(1)

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_fail_throws_into_waiter(self, sim):
        ev = sim.event()
        caught = []

        def proc(sim):
            try:
                yield ev
            except RuntimeError as err:
                caught.append(str(err))

        sim.process(proc(sim))
        ev.fail(RuntimeError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_unhandled_failure_surfaces(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("lost"))
        with pytest.raises(RuntimeError, match="lost"):
            sim.run()

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.value
        with pytest.raises(SimulationError):
            ev.ok

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_yield_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed("early")
        log = []

        def late(sim):
            yield sim.timeout(3)
            log.append((yield ev))

        sim.process(late(sim))
        sim.run()
        assert log == ["early"]
        assert sim.now == 3


class TestRunUntilEvent:
    def test_returns_event_value(self, sim):
        def proc(sim):
            yield sim.timeout(2)
            return 42

        p = sim.process(proc(sim))
        assert sim.run(until=p) == 42
        assert sim.now == 2

    def test_raises_event_failure(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            raise ValueError("inside")

        p = sim.process(proc(sim))
        with pytest.raises(ValueError, match="inside"):
            sim.run(until=p)

    def test_already_processed_event(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            return "done"

        p = sim.process(proc(sim))
        sim.run()
        assert sim.run(until=p) == "done"

    def test_never_triggering_event_raises(self, sim):
        ev = sim.event()

        def proc(sim):
            yield sim.timeout(1)

        sim.process(proc(sim))
        with pytest.raises(SimulationError):
            sim.run(until=ev)


class TestConditions:
    def test_any_of_fires_on_first(self, sim):
        def fast(sim):
            yield sim.timeout(1)
            return "fast"

        def slow(sim):
            yield sim.timeout(10)
            return "slow"

        f, s = sim.process(fast(sim)), sim.process(slow(sim))

        def waiter(sim):
            result = yield f | s
            assert f in result and s not in result
            assert sim.now == 1

        w = sim.process(waiter(sim))
        sim.run(until=w)

    def test_all_of_waits_for_all(self, sim):
        def make(delay):
            def proc(sim):
                yield sim.timeout(delay)
                return delay

            return proc

        procs = [sim.process(make(d)(sim)) for d in (3, 1, 2)]

        def waiter(sim):
            result = yield sim.all_of(procs)
            assert sorted(result.values()) == [1, 2, 3]
            assert sim.now == 3

        w = sim.process(waiter(sim))
        sim.run(until=w)

    def test_empty_all_of_fires_immediately(self, sim):
        cond = sim.all_of([])
        assert cond.triggered

    def test_condition_propagates_failure(self, sim):
        def bad(sim):
            yield sim.timeout(1)
            raise RuntimeError("nope")

        def ok(sim):
            yield sim.timeout(5)

        b, o = sim.process(bad(sim)), sim.process(ok(sim))
        caught = []

        def waiter(sim):
            try:
                yield b & o
            except RuntimeError as err:
                caught.append(str(err))

        sim.process(waiter(sim))
        sim.run()
        assert caught == ["nope"]

    def test_cross_simulator_condition_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            sim.any_of([sim.event(), other.event()])


class TestOrdering:
    def test_same_time_events_fifo(self, sim):
        order = []

        def proc(sim, tag):
            yield sim.timeout(5)
            order.append(tag)

        for tag in "abc":
            sim.process(proc(sim, tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_events_in_time_order(self, sim):
        order = []

        def proc(sim, delay):
            yield sim.timeout(delay)
            order.append(delay)

        for delay in (5, 1, 3, 2, 4):
            sim.process(proc(sim, delay))
        sim.run()
        assert order == [1, 2, 3, 4, 5]

    def test_stop_mid_run(self, sim):
        def stopper(sim):
            yield sim.timeout(2)
            sim.stop("halted")

        def runner(sim):
            yield sim.timeout(100)

        sim.process(stopper(sim))
        sim.process(runner(sim))
        assert sim.run() == "halted"
        assert sim.now == 2
