"""Differential test: the closures backend IS the interpreter.

Hypothesis generates random small MCL programs — arithmetic, variable
traffic, short-circuit logic, arrays, native calls, network variables,
hops, scheds, creates, bounded loops — and runs each under both VM
backends from identical starting state.  The two executions must
produce the identical Command stream (types, fields, per-yield
``instructions`` counts), identical final messenger/node variables, and
identical ``frame.pc``/``frame.stack``.  Scripts that fail must fail
with the same exception class at the same command index (error
*message* texts are the one documented divergence).

``frame.block`` is deliberately excluded from the comparison: it is the
closures backend's private resumption hint (-1 under the interpreter).
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.messengers.mcl import closures, vm
from repro.messengers.mcl.bytecode import DoneCommand
from repro.messengers.mcl.compiler import compile_source
from repro.messengers.mcl.vm import Frame

#: Messenger variables every generated program starts from.
VAR_POOL = ("a", "b", "c")

#: Values the native stub and netvar resolver hand back.
NET_VALUES = {"$address": 7, "$last": "ring"}


def _native_env():
    """Deterministic native functions available to generated scripts."""
    return {
        "twist": lambda x: x * 2 + 1,
        "mix": lambda x, y: x - y,
        "mklist": lambda: [3, 1, 4, 1, 5],
    }


# -- program generator -------------------------------------------------------


@st.composite
def expressions(draw, depth=0):
    """Source text of an integer-valued MCL expression over VAR_POOL."""
    if depth >= 3:
        choices = ("literal", "var")
    else:
        choices = (
            "literal", "var", "binop", "compare", "logic", "not",
            "neg", "native", "netvar", "index",
        )
    kind = draw(st.sampled_from(choices))
    if kind == "literal":
        return str(draw(st.integers(min_value=0, max_value=99)))
    if kind == "var":
        return draw(st.sampled_from(VAR_POOL))
    if kind == "binop":
        op = draw(st.sampled_from(["+", "-", "*", "/", "%"]))
        left = draw(expressions(depth=depth + 1))
        right = draw(expressions(depth=depth + 1))
        if op in ("/", "%"):
            # Guarantee a non-zero denominator without constraining the
            # sub-expression (C semantics: % of a positive is in range).
            return f"({left} {op} (({right}) % 7 + 1))"
        return f"({left} {op} {right})"
    if kind == "compare":
        op = draw(st.sampled_from(["==", "!=", "<", ">", "<=", ">="]))
        left = draw(expressions(depth=depth + 1))
        right = draw(expressions(depth=depth + 1))
        return f"({left} {op} {right})"
    if kind == "logic":
        op = draw(st.sampled_from(["&&", "||"]))
        left = draw(expressions(depth=depth + 1))
        right = draw(expressions(depth=depth + 1))
        return f"({left} {op} {right})"
    if kind == "not":
        return f"(!{draw(expressions(depth=depth + 1))})"
    if kind == "neg":
        return f"(-{draw(expressions(depth=depth + 1))})"
    if kind == "native":
        if draw(st.booleans()):
            return f"twist({draw(expressions(depth=depth + 1))})"
        left = draw(expressions(depth=depth + 1))
        right = draw(expressions(depth=depth + 1))
        return f"mix({left}, {right})"
    if kind == "netvar":
        return "$address"
    # kind == "index": read through the list variable initialised in
    # the preamble; the modulus keeps the subscript in range.
    inner = draw(expressions(depth=depth + 1))
    return f"arr[({inner}) % 5]"


@st.composite
def statements(draw, depth=0):
    if depth >= 2:
        choices = ("assign",)
    else:
        choices = (
            "assign", "assign", "augmented", "if", "if_else",
            "while", "hop", "sched", "create", "call", "index_assign",
        )
    kind = draw(st.sampled_from(choices))
    if kind == "assign":
        var = draw(st.sampled_from(VAR_POOL))
        return f"{var} = {draw(expressions())};"
    if kind == "augmented":
        var = draw(st.sampled_from(VAR_POOL))
        return f"{var} = {var} + {draw(expressions())};"
    if kind == "if":
        body = draw(statements(depth=depth + 1))
        return f"if ({draw(expressions())}) {{ {body} }}"
    if kind == "if_else":
        then = draw(statements(depth=depth + 1))
        other = draw(statements(depth=depth + 1))
        cond = draw(expressions())
        return f"if ({cond}) {{ {then} }} else {{ {other} }}"
    if kind == "while":
        # Bounded counting loop over a dedicated counter variable so
        # generated programs always terminate.
        bound = draw(st.integers(min_value=1, max_value=4))
        body = draw(statements(depth=depth + 1))
        return (
            f"k = 0; while (k < {bound}) {{ {body} k = k + 1; }}"
        )
    if kind == "hop":
        if draw(st.booleans()):
            return 'hop(ll = "ring");'
        var = draw(st.sampled_from(VAR_POOL))
        return f'hop(ln = twist({var}); ll = "ring");'
    if kind == "sched":
        return (
            f"M_sched_time_dlt(({draw(expressions())}) % 5 + 1);"
        )
    if kind == "create":
        return 'create(ll = "spur");'
    if kind == "call":
        return f"twist({draw(expressions())});"
    # index_assign
    index = draw(expressions())
    return f"arr[({index}) % 5] = {draw(expressions())};"


@st.composite
def programs(draw):
    body = " ".join(
        draw(st.lists(statements(), min_size=1, max_size=6))
    )
    inits = " ".join(
        f"{name} = {draw(st.integers(min_value=0, max_value=20))};"
        for name in VAR_POOL
    )
    return (
        "p()\n{\n"
        f"    {inits} k = 0; arr = mklist();\n"
        f"    {body}\n"
        "    return a + b + c;\n"
        "}\n"
    )


# -- differential harness ----------------------------------------------------


def execute(backend, source):
    """Run ``source`` to completion; return every observable output.

    Commands are flattened to (type-name, field-tuple); hops/scheds/
    creates are acknowledged by simply resuming (a self-hop).  Errors
    terminate the run and are recorded as the exception class name.
    """
    program = compile_source(source, "p")
    # Fresh compilation artifacts per run: the differential claim is
    # about execution, not about cache sharing.
    program._dispatch = None
    program._closures = None
    natives = _native_env()
    frame = Frame(program)
    mvars: dict = {}
    nvars: dict = {}
    commands = []
    error = None

    def netvar(name):
        return NET_VALUES.get(name, 0)

    def call_native(name, args):
        return natives[name](*args)

    try:
        for _ in range(500):
            command = vm_run_result = backend(
                frame, mvars, nvars, netvar, call_native,
                max_instructions=100_000,
            )
            commands.append(
                (type(command).__name__, dataclasses.astuple(command))
            )
            if isinstance(vm_run_result, DoneCommand):
                break
    except Exception as exc:  # noqa: BLE001 - class identity is the point
        error = type(exc).__name__
    return {
        "commands": commands,
        "error": error,
        "mvars": mvars,
        "nvars": nvars,
        "pc": frame.pc,
        "stack": list(frame.stack),
    }


class TestBackendDifferential:
    @given(source=programs())
    @settings(max_examples=150, deadline=None)
    def test_closures_matches_interp(self, source):
        reference = execute(vm.run, source)
        compiled = execute(closures.run, source)
        assert compiled["commands"] == reference["commands"], source
        assert compiled["error"] == reference["error"], source
        assert compiled["mvars"] == reference["mvars"], source
        assert compiled["nvars"] == reference["nvars"], source
        if reference["error"] is None:
            # Error paths leave pc/stack unspecified (documented); on
            # clean runs the frame state is bit-identical.
            assert compiled["pc"] == reference["pc"], source
            assert compiled["stack"] == reference["stack"], source

    def test_known_tricky_shapes(self):
        """Deterministic regression shapes (no Hypothesis shrinking)."""
        shapes = [
            # Short-circuit value carried across a basic-block boundary.
            "p() { a = 1; b = 0; c = (a && (b || 3)) + 2; return c; }",
            # Value on the stack across a hop is impossible (statement
            # boundary), but a sched mid-expression chain is not.
            'p() { a = 2; M_sched_time_dlt(a); a = a + 1; return a; }',
            # AssignExpr ordering: the store must land before the read.
            "p() { a = (b = 3) + b; return a; }",
            # Deferred loads flushed before an index store mutates.
            "p() { arr = mklist(); a = arr[0]; arr[0] = 9; "
            "b = a + arr[0]; return b; }",
            # Fused comparison feeding a JF at a block end.
            "p() { a = 5; if (a * 2 > 9) { a = 1; } else { a = 0; } "
            "return a; }",
        ]
        for source in shapes:
            reference = execute(vm.run, source)
            compiled = execute(closures.run, source)
            assert compiled == {**reference, "pc": compiled["pc"],
                                "stack": compiled["stack"]}, source
            assert compiled["pc"] == reference["pc"], source
            assert compiled["stack"] == reference["stack"], source
