"""Integration tests: Messengers navigating, replicating, coordinating."""

import pytest

from repro.des import Simulator
from repro.netsim import CostModel, build_lan
from repro.messengers import DaemonNetwork, MessengersSystem


def make_system(n_hosts=4, daemon_graph=None, costs=None):
    sim = Simulator()
    network = build_lan(sim, n_hosts, costs or CostModel())
    system = MessengersSystem(network, daemon_graph=daemon_graph)
    return sim, system


class TestStartup:
    def test_init_node_on_every_daemon(self):
        _sim, system = make_system(3)
        for name in system.daemon_names:
            inits = system.logical.find_named("init", daemon=name)
            assert len(inits) == 1

    def test_daemon_graph_defaults_to_complete(self):
        _sim, system = make_system(3)
        assert sorted(system.daemon_graph.neighbors("host0")) == [
            "host1",
            "host2",
        ]

    def test_daemon_graph_host_validation(self):
        sim = Simulator()
        network = build_lan(sim, 2)
        bad_graph = DaemonNetwork.complete(["host0", "ghost"])
        with pytest.raises(KeyError):
            MessengersSystem(network, daemon_graph=bad_graph)


class TestInjection:
    def test_argument_binding(self):
        _sim, system = make_system(1)
        seen = {}

        @system.natives.register
        def report(env, a, b):
            seen.update(a=a, b=b)
            return 0

        system.inject("f(a, b) { report(a, b); }", args=(7, "x"))
        system.run_to_quiescence()
        assert seen == {"a": 7, "b": "x"}

    def test_wrong_arity_rejected(self):
        _sim, system = make_system(1)
        with pytest.raises(TypeError):
            system.inject("f(a) { x = a; }", args=())

    def test_unknown_daemon_rejected(self):
        _sim, system = make_system(1)
        with pytest.raises(KeyError):
            system.inject("f() { x = 1; }", daemon="ghost")

    def test_unknown_node_rejected(self):
        _sim, system = make_system(1)
        with pytest.raises(KeyError):
            system.inject("f() { x = 1; }", node="nowhere")

    def test_program_cache_reuse(self):
        _sim, system = make_system(1)
        p1 = system.compile("f() { x = 1; }")
        p2 = system.compile("f() { x = 1; }")
        assert p1 is p2


class TestNavigation:
    def test_create_all_replicates_to_neighbors(self):
        _sim, system = make_system(4)
        visited = []

        @system.natives.register
        def mark(env):
            visited.append(env.daemon.name)
            return 0

        system.inject("f() { create(ALL); mark(); }", daemon="host0")
        system.run_to_quiescence()
        assert sorted(visited) == ["host1", "host2", "host3"]
        # init(host0) + 3 inits + 3 created nodes
        assert system.logical.node_count() == 4 + 3

    def test_hop_back_along_last_link(self):
        _sim, system = make_system(2)
        trail = []

        @system.natives.register
        def mark(env):
            trail.append(env.daemon.name)
            return 0

        system.inject(
            "f() { create(ALL); mark(); hop(ll = $last); mark(); }",
            daemon="host0",
        )
        system.run_to_quiescence()
        assert trail == ["host1", "host0"]

    def test_hop_with_no_match_loses_messenger(self):
        _sim, system = make_system(1)
        system.inject('f() { hop(ll = "nonexistent"); }')
        system.run_to_quiescence()
        assert system.finished[-1][1] == "lost"
        stats = system.daemon("host0").stats
        assert stats.messengers_lost == 1

    def test_multi_item_create_replicates(self):
        _sim, system = make_system(3)
        visits = []

        @system.natives.register
        def mark(env):
            visits.append((env.node.name, env.daemon.name))
            return 0

        system.inject(
            """
            f() {
                create(ln = "a", "b"; ll = "spoke", "spoke";
                       dn = "host1", "host2");
                mark();
            }
            """,
            daemon="host0",
        )
        system.run_to_quiescence()
        assert sorted(visits) == [("a", "host1"), ("b", "host2")]

    def test_hop_replication_over_multiple_links(self):
        """The persistent star built by one Messenger is navigated by a
        second one injected later — logical-network persistence (§1)."""
        _sim, system = make_system(3)
        visits = []

        @system.natives.register
        def mark(env):
            visits.append(env.node.name)
            return 0

        system.inject(
            """
            builder() {
                create(ln = "a", "b"; ll = "spoke", "spoke";
                       dn = "host1", "host2");
            }
            """,
            daemon="host0",
        )
        system.run_to_quiescence()

        system.inject(
            'explorer() { hop(ll = "spoke"); mark(); }', daemon="host0"
        )
        system.run_to_quiescence()
        assert sorted(visits) == ["a", "b"]

    def test_virtual_hop_to_init(self):
        _sim, system = make_system(2)
        places = []

        @system.natives.register
        def mark(env):
            places.append((env.node.name, env.daemon.name))
            return 0

        system.inject(
            "f() { create(ALL); hop(ln = init; ll = virtual); mark(); }",
            daemon="host0",
        )
        system.run_to_quiescence()
        # From the created node on host1, virtual-hopping to "init"
        # replicates to BOTH init nodes (they share the name).
        assert sorted(places) == [("init", "host0"), ("init", "host1")]

    def test_delete_removes_scaffolding(self):
        _sim, system = make_system(2)
        system.inject(
            """
            f() {
                create(ln = "work"; ll = "tmp");
                delete(ll = "tmp");
            }
            """,
            daemon="host0",
        )
        system.run_to_quiescence()
        assert system.logical.find_named("work") == []
        deleted = sum(
            d.stats.links_deleted for d in system.daemons.values()
        )
        assert deleted == 1
        # The init node survives singleton collection.
        assert system.logical.find_named("init", daemon="host0")

    def test_directed_create_and_hop(self):
        _sim, system = make_system(1)
        order = []

        @system.natives.register
        def mark(env, tag):
            order.append(tag)
            return 0

        system.inject(
            """
            f() {
                create(ln = "down"; ll = "col"; ldir = +; dn = "host0");
                mark("at-down");
                hop(ll = "col"; ldir = -);
                mark("back-up");
                hop(ll = "col"; ldir = -);
            }
            """,
            daemon="host0",
        )
        system.run_to_quiescence()
        assert order == ["at-down", "back-up"]
        # Final hop tried to go backward from the link's source: lost.
        assert system.finished[-1][1] == "lost"


class TestNodeVariables:
    def test_shared_between_messengers(self):
        _sim, system = make_system(1)

        system.inject("w1() { node counter; counter = 10; }")
        system.run_to_quiescence()
        result = {}

        @system.natives.register
        def read(env, value):
            result["counter"] = value
            return 0

        system.inject("w2() { node counter; counter += 5; read(counter); }")
        system.run_to_quiescence()
        assert result["counter"] == 15

    def test_messenger_vars_are_private(self):
        _sim, system = make_system(2)
        values = []

        @system.natives.register
        def observe(env, x):
            values.append(x)
            return 0

        # Each replica mutates its own copy of x.
        system.inject(
            """
            f() {
                x = 1;
                create(ALL);
                x = x + 1;
                observe(x);
            }
            """,
            daemon="host0",
        )
        system.run_to_quiescence()
        assert values == [2]

    def test_netvars(self):
        _sim, system = make_system(2)
        seen = {}

        @system.natives.register
        def snap(env, addr, node_name, vt):
            seen.update(addr=addr, node=node_name, vt=vt)
            return 0

        system.inject(
            "f() { snap($address, $node, $time); }", daemon="host1"
        )
        system.run_to_quiescence()
        assert seen == {"addr": "host1", "node": "init", "vt": 0.0}

    def test_unknown_netvar_raises(self):
        _sim, system = make_system(1)
        system.inject("f() { x = $bogus; }")
        with pytest.raises(Exception):
            system.run_to_quiescence()


class TestCostAccounting:
    def test_remote_hop_charges_wire_time(self):
        costs = CostModel()
        _sim, system = make_system(2, costs=costs)
        big = [0.0] * 10_000  # ~80 kB messenger variable

        @system.natives.register
        def load_payload(env):
            env.msgr_vars["payload"] = list(big)
            return 0

        system.inject(
            "f() { load_payload(); create(ALL); }", daemon="host0"
        )
        elapsed = system.run_to_quiescence()
        # moving ~80kB over a ~1MB/s wire takes >= 0.08 virtual seconds
        assert elapsed > 0.05

    def test_interpretation_cost_scales_with_instructions(self):
        costs = CostModel()
        sim_a, system_a = make_system(1, costs=costs)
        system_a.inject("f() { for (i = 0; i < 10; i++) x = i; }")
        short = system_a.run_to_quiescence()

        sim_b, system_b = make_system(1, costs=costs)
        system_b.inject("f() { for (i = 0; i < 1000; i++) x = i; }")
        long = system_b.run_to_quiescence()
        assert long > short * 10

    def test_stats_collected(self):
        _sim, system = make_system(2)
        system.inject("f() { create(ALL); hop(ll = $last); }")
        system.run_to_quiescence()
        d0 = system.daemon("host0").stats
        d1 = system.daemon("host1").stats
        assert d1.nodes_created == 1
        assert d0.arrivals >= 1
        assert system.total_instructions() > 0


class TestVirtualTime:
    def test_alternating_ticks(self):
        _sim, system = make_system(2)
        order = []

        @system.natives.register
        def mark(env, who, k):
            order.append((who, k, env.vt))
            return 0

        script = """
        ticker(who, offset, n) {
            for (k = 0; k < n; k++) {
                M_sched_time_abs(k + offset);
                mark(who, k);
            }
        }
        """
        system.inject(script, args=("A", 0.0, 3), daemon="host0")
        system.inject(script, args=("B", 0.5, 3), daemon="host1")
        system.run_to_quiescence()
        assert [(who, k) for who, k, _vt in order] == [
            ("A", 0),
            ("B", 0),
            ("A", 1),
            ("B", 1),
            ("A", 2),
            ("B", 2),
        ]
        assert system.vtime.gvt == 2.5

    def test_sched_dlt_accumulates(self):
        _sim, system = make_system(1)
        times = []

        @system.natives.register
        def mark(env):
            times.append(env.vt)
            return 0

        system.inject(
            """
            f() {
                M_sched_time_dlt(1.5);
                mark();
                M_sched_time_dlt(1.5);
                mark();
            }
            """
        )
        system.run_to_quiescence()
        assert times == [1.5, 3.0]

    def test_sched_into_past_runs_immediately(self):
        _sim, system = make_system(1)
        times = []

        @system.natives.register
        def mark(env):
            times.append(env.vt)
            return 0

        system.inject(
            """
            f() {
                M_sched_time_abs(2);
                mark();
                M_sched_time_abs(1);
                mark();
            }
            """
        )
        system.run_to_quiescence()
        assert times == [2.0, 2.0]

    def test_rounds_charge_wallclock_time(self):
        _sim, system = make_system(4)
        system.inject("f() { M_sched_time_abs(5); }")
        elapsed = system.run_to_quiescence()
        assert system.vtime.rounds == 1
        assert elapsed >= system.costs.gvt_round_s * 4

    def test_barrier_pattern(self):
        """GVT as a general synchronization primitive (paper §5)."""
        _sim, system = make_system(3)
        phases = []

        @system.natives.register
        def phase(env, who, name):
            phases.append((name, who))
            return 0

        script = """
        worker(who, work) {
            phase(who, "before");
            M_sched_time_abs(1);
            phase(who, "after");
        }
        """
        for index, name in enumerate("abc"):
            system.inject(
                script, args=(name, index), daemon=f"host{index}"
            )
        system.run_to_quiescence()
        names = [name for name, _who in phases]
        assert names == ["before"] * 3 + ["after"] * 3
