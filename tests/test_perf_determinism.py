"""Fast path changes no simulated result bit.

The golden digests below were captured with the *pre-optimisation*
kernel (the stack as of commit d15be66, before ``repro.perf`` and the
DES/VM fast path landed).  Every optimisation since must reproduce
them exactly:

* the **trace hash** folds every executed event — time, priority,
  event id, daemon flag, event type — in execution order, so it pins
  the entire schedule including every clock value;
* the **result hash** is a 128-bit digest of the raw result array
  bytes (Mandelbrot image / matmul product);
* the **fault counters** pin the lossy-transport behaviour under an
  armed :class:`~repro.faults.FaultPlan`.

Also here: the MCL VM's fast dispatch must agree with its preserved
counting interpreter, instrumented runs must agree with plain runs,
and a ``repro.bench.sweep`` pool must agree with the serial loop.
"""

import json
from hashlib import blake2b

from repro.apps.mandelbrot.kernel import TaskGrid
from repro.apps.mandelbrot.messengers_app import run_messengers
from repro.apps.mandelbrot.pvm_app import run_pvm
from repro.apps.matmul.kernel import make_matrices
from repro.apps.matmul.messengers_app import run_messengers as run_matmul
from repro.faults import FaultPlan
from repro.perf import hashing_all_simulators

#: name -> (trace digest, events executed, result-bytes digest)
GOLDEN = {
    "mandelbrot_messengers": (
        "1cba609be0acd121edff256344b97996", 828,
        "39c6f88e0a32c8eede71db1286d32e74",
    ),
    "mandelbrot_pvm": (
        "41815c05a1afd6e4afec7fed13d7d82b", 758,
        "39c6f88e0a32c8eede71db1286d32e74",
    ),
    "mandelbrot_messengers_lossy": (
        "20e00bb4c7002e7bfd08db0842ecf046", 1462, None,
    ),
    "mandelbrot_pvm_lossy": (
        "8e8e3dd2a9e7a9769d355ba132118720", 1296, None,
    ),
    "matmul_messengers_2x2": (
        "8e3e548c65249a6bd4ed722555c03a23", 489,
        "fbe52d7374df5502044ad556af3d2f9c",
    ),
    "mandelbrot_messengers_big": (
        "b11efd4bf4e131b1585bf14bb8b1caeb", 2942,
        "b3a189507f335e9af830b4d90aa79d16",
    ),
    "mandelbrot_pvm_big": (
        "649275683faf6a27738eaa072e38c84a", 2978,
        "b3a189507f335e9af830b4d90aa79d16",
    ),
}

GRID = TaskGrid(64, 4)
PROCS = 3


def _digest(raw: bytes) -> str:
    return blake2b(raw, digest_size=16).hexdigest()


def _check(name, fn, result_bytes):
    trace, events, result_hash = GOLDEN[name]
    with hashing_all_simulators() as hasher:
        result = fn()
    assert hasher.hexdigest() == trace, f"{name}: trace diverged"
    assert hasher.events == events, f"{name}: event count diverged"
    if result_hash is not None:
        assert _digest(result_bytes(result)) == result_hash, (
            f"{name}: result bytes diverged"
        )
    return result


class TestGoldenTraces:
    def test_mandelbrot_messengers(self):
        result = _check(
            "mandelbrot_messengers",
            lambda: run_messengers(GRID, PROCS),
            lambda r: r.image.tobytes(),
        )
        # The trace hash already folds every event time; the final
        # clock is pinned directly too for a readable failure.
        assert result.seconds == 0.146332096

    def test_mandelbrot_pvm(self):
        result = _check(
            "mandelbrot_pvm",
            lambda: run_pvm(GRID, PROCS),
            lambda r: r.image.tobytes(),
        )
        assert result.seconds == 0.43461549999999993

    def test_mandelbrot_messengers_lossy(self):
        result = _check(
            "mandelbrot_messengers_lossy",
            lambda: run_messengers(
                GRID, PROCS, faults=FaultPlan().drop(0.05), seed=7
            ),
            lambda r: r.image.tobytes(),
        )
        assert dict(sorted(result.stats["faults"].items())) == {
            "acks_sent": 38, "packets_dropped": 2, "retransmits": 2,
        }
        # Loss slows the run down but never corrupts the answer.
        assert _digest(result.image.tobytes()) == GOLDEN[
            "mandelbrot_messengers"
        ][2]

    def test_mandelbrot_pvm_lossy(self):
        result = _check(
            "mandelbrot_pvm_lossy",
            lambda: run_pvm(
                GRID, PROCS, faults=FaultPlan().drop(0.05), seed=7
            ),
            lambda r: r.image.tobytes(),
        )
        assert dict(sorted(result.stats["faults"].items())) == {
            "acks_sent": 32, "packets_dropped": 2, "retransmits": 2,
        }
        assert _digest(result.image.tobytes()) == GOLDEN[
            "mandelbrot_pvm"
        ][2]

    def test_matmul_messengers_2x2(self):
        a, b = make_matrices(60, seed=0)
        _check(
            "matmul_messengers_2x2",
            lambda: run_matmul(a, b, 2),
            lambda r: r.c.tobytes(),
        )

    def test_mandelbrot_big(self):
        grid = TaskGrid(128, 8)
        _check(
            "mandelbrot_messengers_big",
            lambda: run_messengers(grid, 5),
            lambda r: r.image.tobytes(),
        )
        _check(
            "mandelbrot_pvm_big",
            lambda: run_pvm(grid, 5),
            lambda r: r.image.tobytes(),
        )


class TestVMFastPathIdentity:
    """The int-opcode fast dispatch and the preserved string-dispatch
    counting loop are the same interpreter."""

    SOURCE = """
    f(n) {
        i = 0;
        acc = 0;
        while (i < n) {
            acc = acc + i * 2 - (i % 3);
            if (acc > 5000) { acc = acc - 5000; }
            i = i + 1;
        }
        return acc;
    }
    """

    def _run(self, opcounts):
        from repro.messengers.mcl.compiler import compile_source
        from repro.messengers.mcl.vm import Frame, run

        program = compile_source(self.SOURCE, "f")
        variables = {"n": 500}
        command = run(
            Frame(program),
            variables,
            {},
            lambda name: 0,
            lambda name, args: 0,
            max_instructions=1_000_000,
            opcounts=opcounts,
        )
        return command, variables

    def test_fast_matches_counting(self):
        fast_cmd, fast_vars = self._run(opcounts=None)
        counts: dict = {}
        slow_cmd, slow_vars = self._run(opcounts=counts)
        assert type(fast_cmd) is type(slow_cmd)
        assert fast_cmd.instructions == slow_cmd.instructions
        assert fast_vars == slow_vars
        # The per-opcode histogram accounts for every instruction.
        assert sum(counts.values()) == slow_cmd.instructions


class TestInstrumentationIdentity:
    """Observability hooks may slow a run down, never change it."""

    def test_metrics_run_matches_plain_run(self):
        from repro.obs import MetricsRegistry

        plain = run_messengers(GRID, PROCS)
        metered = run_messengers(
            GRID, PROCS, metrics=MetricsRegistry(opcode_counts=True)
        )
        assert metered.seconds == plain.seconds
        assert metered.image.tobytes() == plain.image.tobytes()


class TestSweepPoolIdentity:
    """A 4-process pool returns exactly what the serial loop returns."""

    def test_seed_sweep_pool_matches_serial(self):
        from repro.bench.sweep import seed_sweep_experiment

        experiment = seed_sweep_experiment()  # 2 systems x 4 seeds
        assert len(experiment.replications) >= 8
        serial = experiment.run(processes=1)
        pooled = experiment.run(processes=4)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )

    def test_loss_sweep_pool_matches_serial(self):
        from repro.bench import run_loss_sweep

        kwargs = dict(image_size=64, grid_size=4, procs=3)
        serial = run_loss_sweep(**kwargs)
        pooled = run_loss_sweep(**kwargs, processes=3)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )

    def test_duplicate_replication_ids_rejected(self):
        import pytest

        from repro.bench.sweep import Replication, run_replications

        with pytest.raises(ValueError):
            run_replications(
                len, [Replication(rid=1), Replication(rid=1)]
            )


class TestSchedulerGoldenEquivalence:
    """The calendar queue reproduces the heapq goldens bit-for-bit.

    The CalendarQueue (``Simulator(scheduler="calendar")``) claims the
    exact ``(time, priority, eid, daemon)`` drain order of the heap it
    replaces at scale.  Proof on real workloads: the pre-optimisation
    golden digests above — fig-5 Mandelbrot (both systems), fig-12b
    matmul, and the 5%-loss fault plan — are reproduced unchanged with
    the calendar scheduler switched on process-wide.
    """

    def test_calendar_reproduces_fig5_goldens(self):
        from repro.des import scheduler_default

        with scheduler_default("calendar"):
            _check(
                "mandelbrot_messengers",
                lambda: run_messengers(GRID, PROCS),
                lambda r: r.image.tobytes(),
            )
            _check(
                "mandelbrot_pvm",
                lambda: run_pvm(GRID, PROCS),
                lambda r: r.image.tobytes(),
            )

    def test_calendar_reproduces_lossy_goldens(self):
        from repro.des import scheduler_default

        with scheduler_default("calendar"):
            _check(
                "mandelbrot_messengers_lossy",
                lambda: run_messengers(
                    GRID, PROCS, faults=FaultPlan().drop(0.05), seed=7
                ),
                lambda r: r.image.tobytes(),
            )
            _check(
                "mandelbrot_pvm_lossy",
                lambda: run_pvm(
                    GRID, PROCS, faults=FaultPlan().drop(0.05), seed=7
                ),
                lambda r: r.image.tobytes(),
            )

    def test_calendar_matches_heap_on_fig12b(self):
        from repro.des import scheduler_default

        a, b = make_matrices(60, seed=0)

        def run_with(kind):
            with scheduler_default(kind):
                with hashing_all_simulators() as hasher:
                    result = run_matmul(a, b, 3)
                return hasher.hexdigest(), hasher.events, result.c.tobytes()

        assert run_with("heap") == run_with("calendar")


class TestClosuresBackendGoldenEquivalence:
    """The closures backend reproduces the interpreter goldens bit-for-bit.

    The basic-block superinstruction compiler
    (``Simulator(mcl_backend="closures")``) claims the interpreter's
    exact Command stream and instruction accounting.  Proof on real
    workloads: the pre-optimisation golden digests above — fig-5
    Mandelbrot (both systems), fig-12b matmul, and the 5%-loss fault
    plan — are reproduced unchanged with the closures backend switched
    on process-wide.
    """

    def test_closures_reproduces_fig5_goldens(self):
        from repro.des import mcl_backend_default

        with mcl_backend_default("closures"):
            _check(
                "mandelbrot_messengers",
                lambda: run_messengers(GRID, PROCS),
                lambda r: r.image.tobytes(),
            )
            _check(
                "mandelbrot_pvm",
                lambda: run_pvm(GRID, PROCS),
                lambda r: r.image.tobytes(),
            )

    def test_closures_reproduces_lossy_golden(self):
        from repro.des import mcl_backend_default

        with mcl_backend_default("closures"):
            _check(
                "mandelbrot_messengers_lossy",
                lambda: run_messengers(
                    GRID, PROCS, faults=FaultPlan().drop(0.05), seed=7
                ),
                lambda r: r.image.tobytes(),
            )

    def test_closures_matches_interp_on_fig12b(self):
        from repro.des import mcl_backend_default

        a, b = make_matrices(60, seed=0)

        def run_with(kind):
            with mcl_backend_default(kind):
                with hashing_all_simulators() as hasher:
                    result = run_matmul(a, b, 3)
                return hasher.hexdigest(), hasher.events, result.c.tobytes()

        assert run_with("interp") == run_with("closures")

    def test_closures_ledger_accounting_identity(self):
        """The obs ledger — including the "interpretation" category the
        paper's figures score on — is identical under both backends."""
        from repro.des import mcl_backend_default
        from repro.obs import MetricsRegistry

        def snapshot(kind):
            with mcl_backend_default(kind):
                registry = MetricsRegistry()
                result = run_messengers(GRID, PROCS, metrics=registry)
            snap = registry.snapshot()
            return result.seconds, result.image.tobytes(), snap

        interp_secs, interp_img, interp_snap = snapshot("interp")
        closures_secs, closures_img, closures_snap = snapshot("closures")
        assert closures_secs == interp_secs
        assert closures_img == interp_img
        assert closures_snap == interp_snap
