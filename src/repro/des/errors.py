"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`repro.des.core.Simulator.run`.

    Users normally stop a simulation by passing ``until=`` to ``run`` or by
    letting the event queue drain; this exception supports explicit,
    immediate termination via :meth:`Simulator.stop`.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party may attach a ``cause`` describing why the
    interrupt happened.  The interrupted process may catch this exception
    and continue, mirroring the semantics of SimPy interrupts.
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        """The cause object passed to :meth:`Process.interrupt`."""
        return self.args[0]


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed more than once."""


class SimDeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    Before fault injection existed this failure mode was a *silent* hang:
    ``Simulator.run()`` would simply return with part of the workload
    still parked on events that can no longer fire (e.g. a ``recv`` whose
    sender's packet was dropped).  The simulator now raises this error
    instead, listing every blocked non-daemon process together with what
    it was waiting for.

    ``blocked`` is a list of ``(process_name, wait_reason)`` pairs;
    service loops marked ``daemon=True`` (transmit pumps, delivery
    daemons, interpreter loops, ...) are expected to wait forever and are
    exempt from the check.
    """

    def __init__(self, blocked):
        self.blocked = list(blocked)
        lines = "; ".join(
            f"{name} waiting on {reason}" for name, reason in self.blocked
        )
        super().__init__(
            f"simulation deadlocked: event queue drained with "
            f"{len(self.blocked)} blocked process(es): {lines}"
        )


class SimOverloadError(SimulationError):
    """A bounded queue ran out of credits (backpressure, not growth).

    Raised by the transport layer when credit-based flow control is
    armed (see ``Network.set_flow_control``) and a sender tries to push
    more unacknowledged reliable packets onto one ``(src, dst, port)``
    channel than its credit window allows.  Without flow control the
    retransmit state would grow without bound under sustained loss or a
    slow receiver; with it, overload surfaces as this typed error at
    the send site instead.
    """

    def __init__(self, src, dst, port, credits):
        self.src = src
        self.dst = dst
        self.port = port
        self.credits = credits
        super().__init__(
            f"flow-control credits exhausted: {src!r} -> {dst!r} on port "
            f"{port!r} already has {credits} unacknowledged packet(s) in "
            "flight"
        )


class ProcessDead(SimulationError):
    """An operation targeted a process that has already terminated."""
