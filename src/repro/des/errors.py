"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`repro.des.core.Simulator.run`.

    Users normally stop a simulation by passing ``until=`` to ``run`` or by
    letting the event queue drain; this exception supports explicit,
    immediate termination via :meth:`Simulator.stop`.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party may attach a ``cause`` describing why the
    interrupt happened.  The interrupted process may catch this exception
    and continue, mirroring the semantics of SimPy interrupts.
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        """The cause object passed to :meth:`Process.interrupt`."""
        return self.args[0]


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed more than once."""


class ProcessDead(SimulationError):
    """An operation targeted a process that has already terminated."""
