"""Discrete-event simulation kernel.

Public surface:

* :class:`Simulator` — clock + event queue;
* :class:`Event`, :class:`Timeout`, :class:`AnyOf`, :class:`AllOf`;
* :class:`Process` (usually created via :meth:`Simulator.process`);
* :class:`Resource`, :class:`Store`, :class:`PriorityStore`,
  :class:`FilterStore`;
* :class:`Interrupt`, :class:`SimulationError` exceptions;
* :class:`RngRegistry` — deterministic named RNG streams.
"""

from .core import (
    MCL_BACKENDS,
    SCHEDULER_KINDS,
    AllOf,
    AnyOf,
    CalendarQueue,
    Event,
    Simulator,
    Timeout,
    mcl_backend_default,
    scheduler_default,
    set_default_mcl_backend,
    set_default_scheduler,
)
from .errors import (
    EventAlreadyTriggered,
    Interrupt,
    ProcessDead,
    SimDeadlockError,
    SimOverloadError,
    SimulationError,
    StopSimulation,
)
from .process import Process
from .resources import FilterStore, PriorityStore, Resource, Store
from .rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Event",
    "MCL_BACKENDS",
    "SCHEDULER_KINDS",
    "mcl_backend_default",
    "scheduler_default",
    "set_default_mcl_backend",
    "set_default_scheduler",
    "EventAlreadyTriggered",
    "FilterStore",
    "Interrupt",
    "PriorityStore",
    "Process",
    "ProcessDead",
    "Resource",
    "RngRegistry",
    "SimDeadlockError",
    "SimOverloadError",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "Timeout",
]
