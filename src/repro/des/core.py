"""Core of the discrete-event simulation kernel.

The kernel is a small, self-contained, SimPy-flavoured engine:

* a :class:`Simulator` owns a virtual clock and a binary-heap event queue;
* an :class:`Event` is a one-shot occurrence that callbacks can wait on;
* a :class:`~repro.des.process.Process` wraps a Python generator that
  ``yield``\\ s events to wait for them.

Everything in this repository — the Ethernet model, the PVM workalike, the
MESSENGERS daemons, global virtual time — is built as processes and events
on top of this module.  All "performance" numbers reported by benchmarks
are values of the simulated clock, which makes every experiment
deterministic and hardware-independent.

Hot-path notes (the ``repro.perf`` fast path):

* every event class uses ``__slots__`` — an event is allocated per
  timeout, per store operation and per process turn, so the per-object
  ``__dict__`` was the single largest allocation cost in the kernel;
* :class:`Timeout` and the resource events initialise themselves inline
  instead of chaining ``super().__init__`` + :meth:`Simulator.schedule`;
* :meth:`Simulator.run` inlines the event loop (heap pop + callback
  dispatch) and only falls back to :meth:`Simulator.step` while
  instrumentation (metrics counter or trace hasher) is attached, so the
  golden-trace path stays byte-for-byte identical to the historical one;
* callback lists are append-only: waiters detach by *tombstoning* their
  recorded slot to ``None`` (O(1)) instead of ``list.remove`` (O(n)),
  which also keeps every other waiter's recorded index stable.

None of this changes scheduling order: the heap still orders on
``(time, priority, eid, daemon)`` with a monotonically increasing integer
``eid``, so optimised runs replay the exact event sequence of the slow
kernel — the golden-hash tests in ``tests/test_perf_determinism.py`` pin
that bit-identity.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from .errors import (
    EventAlreadyTriggered,
    SimDeadlockError,
    SimulationError,
    StopSimulation,
)

__all__ = [
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Simulator",
    "PENDING",
    "URGENT",
    "NORMAL",
]

#: Sentinel for an event value that has not been set yet.
PENDING = object()

#: Scheduling priority for events that must fire before same-time events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

# Bound once: saves a module-dict + attribute lookup on every schedule/pop.
_heappush = heapq.heappush
_heappop = heapq.heappop
_new_event = object.__new__

#: Shared placeholder for "no waiters yet".  Freshly created events point
#: their ``callbacks`` here instead of allocating an empty list each; the
#: first waiter replaces it with a real single-element list.  The object
#: is never mutated — every attach site must test for it by identity.
#: Fire-and-forget timeouts (netsim busy-waits, app delays) thus never
#: allocate a callback list at all.
_NO_WAITERS: list = []


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* when it is scheduled
    with a value (via :meth:`succeed` or :meth:`fail`), and is *processed*
    once the simulator has invoked its callbacks.  Processes wait on an
    event by ``yield``-ing it.

    ``callbacks`` entries may be ``None``: a waiter that detached early
    (an interrupt, a fired AnyOf) tombstones its slot rather than
    shifting the list, and dispatch skips the holes.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = (
            _NO_WAITERS
        )
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: If a failed event's exception is never retrieved, the simulator
        #: re-raises it at the end of the step ("errors never pass
        #: silently").  Waiting on the event defuses it.
        self._defused = False

    # -- introspection ----------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is in the past)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with.

        For failed events this is the exception instance.
        """
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so its error is not re-raised."""
        self._defused = True

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns the event itself so that ``return event.succeed()`` chains.
        """
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        eid = sim._eid
        sim._eid = eid + 1
        _heappush(sim._queue, (sim._now, NORMAL, eid, False, self))
        sim._fg_pending += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        Any process waiting on the event will have the exception thrown
        into it.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        sim = self.sim
        eid = sim._eid
        sim._eid = eid + 1
        _heappush(sim._queue, (sim._now, NORMAL, eid, False, self))
        sim._fg_pending += 1
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition -------------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    ``daemon=True`` marks a *background* timeout: like daemon processes,
    background timeouts never keep the simulation alive — :meth:`Simulator.run`
    returns once only background events remain in the queue.  Periodic
    service loops (failure-detector heartbeats, invariant-check ticks)
    use them so they can run forever without preventing quiescence.
    """

    __slots__ = ("delay", "daemon")

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        daemon: bool = False,
    ):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inline Event.__init__ + Simulator.schedule: a timeout is born
        # triggered, so the generic pending-state machinery is bypassed.
        # ``_defused`` is deliberately not set: it is only ever read
        # behind a failed-event check, and a timeout never fails.
        self.sim = sim
        self.callbacks = _NO_WAITERS
        self._value = value
        self._ok = True
        self.delay = delay
        self.daemon = daemon
        eid = sim._eid
        sim._eid = eid + 1
        _heappush(sim._queue, (sim._now + delay, NORMAL, eid, daemon, self))
        if not daemon:
            sim._fg_pending += 1

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Condition(Event):
    """Waits for a boolean combination of sub-events.

    The value of a condition is a dict mapping each *triggered* sub-event
    to its value, in triggering order.

    Subscriptions record ``(event, slot_index)`` so that once the
    condition fires, every still-pending subscription is detached in
    O(1) per sub-event by tombstoning its slot — long-lived events
    (a retransmitter's ack, say) no longer accumulate dead checker
    callbacks round after round.
    """

    __slots__ = ("_evaluate", "_events", "_count", "_check_cb", "_subs")

    def __init__(self, sim: "Simulator", evaluate, events: Iterable[Event]):
        self.sim = sim
        self.callbacks = _NO_WAITERS
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        self._subs: tuple | list = []

        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("events belong to different simulators")

        if not self._events:
            self.succeed(self._collect_values())
            return
        # One bound method for the condition's lifetime: subscription
        # slots are compared by identity when detaching.
        check = self._check
        self._check_cb = check
        for event in self._events:
            cbs = event.callbacks
            if cbs is None:
                check(event)
            elif self._value is PENDING:
                if cbs is _NO_WAITERS:
                    event.callbacks = [check]
                    self._subs.append((event, 0))
                else:
                    self._subs.append((event, len(cbs)))
                    cbs.append(check)

    def _collect_values(self) -> dict:
        return {e: e._value for e in self._events if e.triggered}

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            self._detach()
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())
            self._detach()

    def _detach(self) -> None:
        """Tombstone every still-pending subscription (O(1) each)."""
        check = self._check_cb
        for event, idx in self._subs:
            cbs = event.callbacks
            if cbs is not None and idx < len(cbs) and cbs[idx] is check:
                cbs[idx] = None
        self._subs = ()


class AnyOf(Condition):
    """Fires when any one of the sub-events fires."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, lambda events, count: count >= 1, events)


class AllOf(Condition):
    """Fires when all of the sub-events have fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(
            sim, lambda events, count: count == len(events), events
        )


class Simulator:
    """Owner of the virtual clock and the event queue.

    Typical use::

        sim = Simulator()

        def proc(sim):
            yield sim.timeout(5)
            print("t =", sim.now)

        sim.process(proc(sim))
        sim.run()
    """

    def __init__(self):
        self._now: float = 0.0
        self._queue: list = []
        #: Monotone tie-break for same-(time, priority) events; plain int
        #: increments are ~3× faster than an itertools.count round-trip.
        self._eid: int = 0
        self._active_process = None
        self._metrics = None
        self._metrics_events = None
        #: The metrics registry iff it is present *and* enabled, else
        #: None (kept in sync by the ``metrics`` setter).  Instrumented
        #: layers read this instead of :attr:`metrics`, so the disabled
        #: path costs exactly one attribute load and ``is None`` test —
        #: no property call, no tuple building, no ``enabled`` re-check.
        self.obs = None
        #: Optional :class:`repro.perf.TraceHasher`; when set, every
        #: executed event is folded into a digest (golden-trace tests).
        self.trace_hash = None
        #: Queued events that are *not* background (daemon) events; the
        #: run loop drains when this reaches zero, exactly as it used to
        #: drain when the whole queue emptied.
        self._fg_pending: int = 0
        #: Live (unfinished) processes, for deadlock detection at drain.
        self._live_processes: set = set()

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- observability -----------------------------------------------------

    @property
    def metrics(self):
        """The attached :class:`~repro.obs.MetricsRegistry`, or None.

        Every instrumented layer (netsim, mp, messengers, gvt) reports
        into this registry when present; when absent, instrumentation
        reduces to one ``is None`` test per site.
        """
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry
        enabled = registry is not None and registry.enabled
        self.obs = registry if enabled else None
        # The event-loop counter is resolved once here so step() pays a
        # single attribute test per event, not a registry lookup.
        self._metrics_events = (
            registry.counter("des.events_executed") if enabled else None
        )

    @property
    def active_process(self):
        """The process whose generator is currently executing, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        # Inline of ``Event(self)``, skipping the ``__init__`` frame.
        event = _new_event(Event)
        event.sim = self
        event.callbacks = _NO_WAITERS
        event._value = PENDING
        event._ok = None
        event._defused = False
        return event

    def timeout(
        self, delay: float, value: Any = None, daemon: bool = False
    ) -> Timeout:
        """Create an event that fires ``delay`` time units from now.

        ``daemon=True`` makes it a background timeout that never keeps
        the simulation alive (see :class:`Timeout`).
        """
        # Hottest allocation site in the kernel: build the Timeout here
        # without a second __init__ frame (mirrors Timeout.__init__).
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        timeout = _new_event(Timeout)
        timeout.sim = self
        timeout.callbacks = _NO_WAITERS
        timeout._value = value
        timeout._ok = True
        timeout.delay = delay
        timeout.daemon = daemon
        eid = self._eid
        self._eid = eid + 1
        _heappush(
            self._queue, (self._now + delay, NORMAL, eid, daemon, timeout)
        )
        if not daemon:
            self._fg_pending += 1
        return timeout

    def process(self, generator, daemon: bool = False) -> "Process":
        """Start a new process running ``generator``.

        ``daemon=True`` marks a service loop that legitimately waits
        forever (a transmit pump, a delivery daemon, ...): such processes
        do not count as deadlocked when the event queue drains.
        """
        return _Process(self, generator, daemon=daemon)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = NORMAL,
        daemon: bool = False,
    ) -> None:
        """Insert a triggered event into the queue ``delay`` from now.

        ``daemon=True`` schedules a background event that does not keep
        :meth:`run` alive once all foreground events have drained.
        """
        eid = self._eid
        self._eid = eid + 1
        _heappush(
            self._queue, (self._now + delay, priority, eid, daemon, event)
        )
        if not daemon:
            self._fg_pending += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`IndexError` ("empty schedule") if nothing is queued.
        """
        time, _prio, _eid, daemon, event = _heappop(self._queue)
        self._now = time
        if not daemon:
            self._fg_pending -= 1
        if self._metrics_events is not None:
            self._metrics_events.value += 1
        if self.trace_hash is not None:
            self.trace_hash.record(
                time, _prio, _eid, daemon, type(event).__name__
            )

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            if callback is not None:
                callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            # Unhandled failure: surface it rather than losing it.
            raise exc

    def stop(self, value: Any = None) -> None:
        """Stop the current :meth:`run` immediately."""
        raise StopSimulation(value)

    def run(self, until: Any = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or an event.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception).

        Background (daemon) events never keep the run alive: once only
        background timeouts remain queued, the run drains exactly as if
        the queue were empty.  This is what lets periodic monitors
        (failure detectors, invariant checkers) tick forever without
        wedging ``run()``.
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed: return/raise its outcome at once.
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
                if stop_event.callbacks is _NO_WAITERS:
                    stop_event.callbacks = [self._stop_callback]
                else:
                    stop_event.callbacks.append(self._stop_callback)
            else:
                deadline = float(until)
                if deadline < self._now:
                    raise ValueError(
                        f"until={deadline} is in the past (now={self._now})"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                stop_event.callbacks = [self._stop_callback]
                eid = self._eid
                self._eid = eid + 1
                _heappush(
                    self._queue, (deadline, URGENT, eid, False, stop_event)
                )
                self._fg_pending += 1

        queue = self._queue
        pop = _heappop
        length = len
        # Instrumentation (metrics counter / trace hasher) is attached
        # before run() is entered; the check is hoisted out of the loop
        # and re-evaluated on every run() call, and the instrumented
        # path routes through step() so counter and hasher observe every
        # event exactly as the historical kernel did.
        instrumented = (
            self._metrics_events is not None or self.trace_hash is not None
        )
        # ``_fg_pending > 0`` implies a non-empty queue (every foreground
        # push increments it, every foreground pop decrements it), so the
        # loop conditions below need not also test ``queue``.
        try:
            if instrumented:
                while self._fg_pending > 0:
                    self.step()
            else:
                # Inlined event loop — semantically identical to
                # ``while fg: self.step()``.
                while self._fg_pending > 0:
                    time, _prio, _eid, daemon, event = pop(queue)
                    self._now = time
                    if not daemon:
                        self._fg_pending -= 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    if length(callbacks) == 1:
                        # The overwhelmingly common case: exactly one
                        # waiter (a parked process).
                        callback = callbacks[0]
                        if callback is not None:
                            callback(event)
                    else:
                        for callback in callbacks:
                            if callback is not None:
                                callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
        except StopSimulation as stop:
            if isinstance(until, Event):
                if until._ok:
                    return until._value
                until.defuse()
                raise until._value
            return stop.value

        self._check_deadlock()
        if isinstance(until, Event) and not until.triggered:
            raise SimulationError(
                "run(until=event) finished but the event never triggered"
            )
        return None

    def _check_deadlock(self) -> None:
        """Raise :class:`SimDeadlockError` if the drained queue left
        non-daemon processes parked on events that can no longer fire."""
        blocked = sorted(
            (p for p in self._live_processes if p.is_alive and not p.daemon),
            key=lambda p: p.name,
        )
        if blocked:
            raise SimDeadlockError(
                [(p.name, _describe_wait(p)) for p in blocked]
            )

    def _stop_callback(self, event: Event) -> None:
        raise StopSimulation(event._value if event._ok else None)

    def __repr__(self) -> str:
        return f"<Simulator now={self._now} queued={len(self._queue)}>"


#: Human-readable labels for the internal wait-event classes, so a
#: :class:`SimDeadlockError` says "store.get" instead of "_Get".
_WAIT_LABELS = {
    "_Get": "store.get",
    "_FilterGet": "filter_store.get",
    "_Put": "store.put",
    "_Request": "resource.request",
    "Timeout": "timeout",
    "AnyOf": "any_of",
    "AllOf": "all_of",
    "Event": "event",
}


def _describe_wait(process) -> str:
    target = process.target
    if target is None:
        return "(nothing — never parked)"
    kind = type(target).__name__
    if kind == "Process":
        return f"process {target.name!r}"
    return _WAIT_LABELS.get(kind, kind)


# Resolved once at import time (the module cycle with .process is safe
# here: everything .process needs from this module is defined above).
# ``Simulator.process`` used to import it per call, which was a
# measurable cost when layers spawn processes by the thousand.
from .process import Process as _Process  # noqa: E402
