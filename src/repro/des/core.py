"""Core of the discrete-event simulation kernel.

The kernel is a small, self-contained, SimPy-flavoured engine:

* a :class:`Simulator` owns a virtual clock and a binary-heap event queue;
* an :class:`Event` is a one-shot occurrence that callbacks can wait on;
* a :class:`~repro.des.process.Process` wraps a Python generator that
  ``yield``\\ s events to wait for them.

Everything in this repository — the Ethernet model, the PVM workalike, the
MESSENGERS daemons, global virtual time — is built as processes and events
on top of this module.  All "performance" numbers reported by benchmarks
are values of the simulated clock, which makes every experiment
deterministic and hardware-independent.

Hot-path notes (the ``repro.perf`` fast path):

* every event class uses ``__slots__`` — an event is allocated per
  timeout, per store operation and per process turn, so the per-object
  ``__dict__`` was the single largest allocation cost in the kernel;
* :class:`Timeout` and the resource events initialise themselves inline
  instead of chaining ``super().__init__`` + :meth:`Simulator.schedule`;
* :meth:`Simulator.run` inlines the event loop (heap pop + callback
  dispatch) and only falls back to :meth:`Simulator.step` while
  instrumentation (metrics counter or trace hasher) is attached, so the
  golden-trace path stays byte-for-byte identical to the historical one;
* callback lists are append-only: waiters detach by *tombstoning* their
  recorded slot to ``None`` (O(1)) instead of ``list.remove`` (O(n)),
  which also keeps every other waiter's recorded index stable.

None of this changes scheduling order: the queue still orders on
``(time, priority, eid, daemon)`` with a monotonically increasing integer
``eid``, so optimised runs replay the exact event sequence of the slow
kernel — the golden-hash tests in ``tests/test_perf_determinism.py`` pin
that bit-identity.

Scheduler kinds (the ``repro.perf.scale`` pass):

* ``"heap"`` (the default) keeps the single binary heap: O(log n)
  enqueue/dequeue, unbeatable constants at paper scale;
* ``"calendar"`` swaps in a :class:`CalendarQueue` — a Brown-style
  calendar of buckets, each bucket itself a tiny heap, with an adaptive
  bucket width.  Enqueue and dequeue are O(1) amortized when event
  times are spread across buckets, and degrade gracefully to plain
  heap behaviour (everything in one bucket) instead of going quadratic
  when they are not.  Pops come out in *exactly* the heap's
  ``(time, priority, eid, daemon)`` order, so traces are bit-identical
  under either scheduler (proven in ``tests/test_perf_determinism.py``).

Pick a kind per simulator (``Simulator(scheduler="calendar")``), or flip
the process-wide default with :func:`set_default_scheduler` /
``with scheduler_default("calendar"): ...``.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from sys import getrefcount as _getrefcount
from typing import Any, Callable, Iterable, Optional

from .errors import (
    EventAlreadyTriggered,
    SimDeadlockError,
    SimulationError,
    StopSimulation,
)

__all__ = [
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Simulator",
    "CalendarQueue",
    "SCHEDULER_KINDS",
    "set_default_scheduler",
    "scheduler_default",
    "PENDING",
    "URGENT",
    "NORMAL",
]

#: Sentinel for an event value that has not been set yet.
PENDING = object()

#: Scheduling priority for events that must fire before same-time events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

# Bound once: saves a module-dict + attribute lookup on every schedule/pop.
_heappush = heapq.heappush
_heappop = heapq.heappop
_new_event = object.__new__

#: Shared placeholder for "no waiters yet".  Freshly created events point
#: their ``callbacks`` here instead of allocating an empty list each; the
#: first waiter replaces it with a real single-element list.  The object
#: is never mutated — every attach site must test for it by identity.
#: Fire-and-forget timeouts (netsim busy-waits, app delays) thus never
#: allocate a callback list at all.
_NO_WAITERS: list = []

#: Valid values for ``Simulator(scheduler=...)``.
SCHEDULER_KINDS = ("heap", "calendar")

#: Process-wide default scheduler kind for new simulators.
_DEFAULT_SCHEDULER = "heap"


def set_default_scheduler(kind: str) -> str:
    """Set the scheduler kind new :class:`Simulator`\\ s use by default.

    Returns the previous default so callers can restore it.  Existing
    simulators are unaffected — the kind is fixed at construction.
    """
    global _DEFAULT_SCHEDULER
    if kind not in SCHEDULER_KINDS:
        raise ValueError(
            f"unknown scheduler {kind!r}; expected one of {SCHEDULER_KINDS}"
        )
    previous = _DEFAULT_SCHEDULER
    _DEFAULT_SCHEDULER = kind
    return previous


@contextmanager
def scheduler_default(kind: str):
    """Context manager: temporarily change the default scheduler kind."""
    previous = set_default_scheduler(kind)
    try:
        yield
    finally:
        set_default_scheduler(previous)


#: Valid values for ``Simulator(mcl_backend=...)``: the int-opcode
#: interpreter (default) or the basic-block closures compiler
#: (:mod:`repro.messengers.mcl.closures`).  Both produce bit-identical
#: Command streams and instruction counts; only host wall clock differs.
MCL_BACKENDS = ("interp", "closures")

#: Process-wide default MCL backend for new simulators.
_DEFAULT_MCL_BACKEND = "interp"


def set_default_mcl_backend(kind: str) -> str:
    """Set the MCL backend new :class:`Simulator`\\ s use by default.

    Returns the previous default so callers can restore it.  Existing
    simulators are unaffected — the kind is fixed at construction.
    """
    global _DEFAULT_MCL_BACKEND
    if kind not in MCL_BACKENDS:
        raise ValueError(
            f"unknown MCL backend {kind!r}; expected one of {MCL_BACKENDS}"
        )
    previous = _DEFAULT_MCL_BACKEND
    _DEFAULT_MCL_BACKEND = kind
    return previous


@contextmanager
def mcl_backend_default(kind: str):
    """Context manager: temporarily change the default MCL backend."""
    previous = set_default_mcl_backend(kind)
    try:
        yield
    finally:
        set_default_mcl_backend(previous)


class CalendarQueue:
    """Calendar (bucket) event queue with heap-identical pop order.

    A ring of ``nbuckets`` buckets; an entry with time ``t`` lives in
    bucket ``int(t * inv_width) & mask``.  Each bucket is itself a small
    binary heap, so:

    * enqueue is O(1) amortized — one multiply, one mask, one heappush
      into a bucket of O(1) expected occupancy (the queue doubles its
      bucket count whenever occupancy exceeds 2 and re-estimates the
      bucket width from the observed inter-event gaps);
    * dequeue scans forward from the current virtual bucket ``_cur_v``
      and pops the head of the first bucket whose head belongs to the
      bucket under the cursor — O(1) amortized for the dense case, with
      an always-correct O(nbuckets) min-over-heads fallback for sparse
      regions (time jumps much larger than ``nbuckets * width``);
    * when every event carries the *same* time (a burst), all entries
      share one bucket and the structure degrades to exactly a binary
      heap — never worse than the heap scheduler by more than a
      constant, unlike the classic sorted-list calendar queue which
      goes quadratic.

    Pop order is *exactly* the heap's tuple order: within a bucket the
    heap yields the tuple-min, and across buckets the virtual bucket
    number ``int(t * inv_width)`` is monotone in ``t`` (multiplication
    by a positive constant and ``int()`` truncation are both monotone),
    so an entry in an earlier eligible bucket always has a strictly
    smaller time.  Same-time entries necessarily share a bucket.  The
    cursor invariant — ``_cur_v <=`` every queued entry's virtual
    bucket — is maintained by stepping the cursor back on enqueues of
    earlier times, which the kernel only produces for times ``>= now``.
    """

    __slots__ = (
        "_buckets", "_nbuckets", "_mask", "_inv_width", "_size", "_cur_v"
    )

    #: Bucket-count bounds.  The cap bounds the fallback scan and the
    #: resize cost; past it buckets simply get deeper (still heaps).
    MIN_BUCKETS = 8
    MAX_BUCKETS = 1 << 16
    #: Pop scans at most this many buckets before the min-over-heads
    #: fallback — bounds the cost of a cursor stranded far behind a
    #: sparse time jump.
    MAX_SCAN = 128

    def __init__(self, width: float = 1e-5):
        if width <= 0.0:
            raise ValueError(f"bucket width must be positive, got {width}")
        nb = self.MIN_BUCKETS
        self._buckets: list[list] = [[] for _ in range(nb)]
        self._nbuckets = nb
        self._mask = nb - 1
        self._inv_width = 1.0 / width
        self._size = 0
        self._cur_v = 0

    def __len__(self) -> int:
        return self._size

    def push(self, entry) -> None:
        """Insert ``entry`` (a ``(time, prio, eid, daemon, event)`` tuple)."""
        v = int(entry[0] * self._inv_width)
        _heappush(self._buckets[v & self._mask], entry)
        if v < self._cur_v or not self._size:
            self._cur_v = v
        size = self._size + 1
        self._size = size
        if size > (self._nbuckets << 1) and self._nbuckets < self.MAX_BUCKETS:
            self._grow()

    def pop(self):
        """Remove and return the least entry (heap tuple order)."""
        size = self._size
        if not size:
            raise IndexError("pop from an empty calendar queue")
        self._size = size - 1
        buckets = self._buckets
        mask = self._mask
        inv = self._inv_width
        v = self._cur_v
        for _ in range(self._nbuckets if self._nbuckets < self.MAX_SCAN
                       else self.MAX_SCAN):
            bucket = buckets[v & mask]
            if bucket and int(bucket[0][0] * inv) <= v:
                self._cur_v = v
                return _heappop(bucket)
            v += 1
        # Sparse region: jump the cursor straight to the earliest head.
        # Each bucket is a heap, so the min over heads is the global min
        # regardless of cursor state — this path is unconditionally
        # correct, just O(nbuckets).
        best = None
        for bucket in buckets:
            if bucket and (best is None or bucket[0] < best[0]):
                best = bucket
        self._cur_v = int(best[0][0] * inv)
        return _heappop(best)

    def peek_time(self) -> float:
        """Time of the least entry, or ``inf`` when empty (O(nbuckets))."""
        if not self._size:
            return float("inf")
        best = None
        for bucket in self._buckets:
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        return best[0]

    def _grow(self) -> None:
        """Double the bucket count and re-estimate the bucket width."""
        entries = []
        extend = entries.extend
        for bucket in self._buckets:
            extend(bucket)
        # Estimate width as 3x the median inter-event gap of a sorted
        # sample: robust against the one far-future heartbeat that would
        # wreck a (max - min) / n estimate.  Deterministic (stride
        # sample, no RNG) so replays resize identically.
        stride = len(entries) // 256 or 1
        times = sorted(entry[0] for entry in entries[::stride])
        gaps = sorted(b - a for a, b in zip(times, times[1:]) if b > a)
        if gaps:
            width = 3.0 * gaps[len(gaps) // 2]
            if width < 1e-12:
                width = 1e-12
            self._inv_width = 1.0 / width
        nb = self._nbuckets << 1
        self._nbuckets = nb
        mask = nb - 1
        self._mask = mask
        buckets = [[] for _ in range(nb)]
        self._buckets = buckets
        inv = self._inv_width
        cur = None
        for entry in entries:
            v = int(entry[0] * inv)
            _heappush(buckets[v & mask], entry)
            if cur is None or v < cur:
                cur = v
        if cur is not None:
            self._cur_v = cur

    def __repr__(self) -> str:
        return (
            f"<CalendarQueue size={self._size} buckets={self._nbuckets} "
            f"width={1.0 / self._inv_width:g}>"
        )


# Plain-function handles: ``sim._push(sim._queue, entry)`` works for both
# scheduler kinds without a per-call bound-method allocation.
_cal_push = CalendarQueue.push
_cal_pop = CalendarQueue.pop


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* when it is scheduled
    with a value (via :meth:`succeed` or :meth:`fail`), and is *processed*
    once the simulator has invoked its callbacks.  Processes wait on an
    event by ``yield``-ing it.

    ``callbacks`` entries may be ``None``: a waiter that detached early
    (an interrupt, a fired AnyOf) tombstones its slot rather than
    shifting the list, and dispatch skips the holes.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = (
            _NO_WAITERS
        )
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: If a failed event's exception is never retrieved, the simulator
        #: re-raises it at the end of the step ("errors never pass
        #: silently").  Waiting on the event defuses it.
        self._defused = False

    # -- introspection ----------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is in the past)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with.

        For failed events this is the exception instance.
        """
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so its error is not re-raised."""
        self._defused = True

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns the event itself so that ``return event.succeed()`` chains.
        """
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        eid = sim._eid
        sim._eid = eid + 1
        sim._push(sim._queue, (sim._now, NORMAL, eid, False, self))
        sim._fg_pending += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        Any process waiting on the event will have the exception thrown
        into it.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        sim = self.sim
        eid = sim._eid
        sim._eid = eid + 1
        sim._push(sim._queue, (sim._now, NORMAL, eid, False, self))
        sim._fg_pending += 1
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition -------------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    ``daemon=True`` marks a *background* timeout: like daemon processes,
    background timeouts never keep the simulation alive — :meth:`Simulator.run`
    returns once only background events remain in the queue.  Periodic
    service loops (failure-detector heartbeats, invariant-check ticks)
    use them so they can run forever without preventing quiescence.
    """

    __slots__ = ("delay", "daemon")

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        daemon: bool = False,
    ):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inline Event.__init__ + Simulator.schedule: a timeout is born
        # triggered, so the generic pending-state machinery is bypassed.
        # ``_defused`` is deliberately not set: it is only ever read
        # behind a failed-event check, and a timeout never fails.
        self.sim = sim
        self.callbacks = _NO_WAITERS
        self._value = value
        self._ok = True
        self.delay = delay
        self.daemon = daemon
        eid = sim._eid
        sim._eid = eid + 1
        sim._push(sim._queue, (sim._now + delay, NORMAL, eid, daemon, self))
        if not daemon:
            sim._fg_pending += 1

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Condition(Event):
    """Waits for a boolean combination of sub-events.

    The value of a condition is a dict mapping each *triggered* sub-event
    to its value, in triggering order.

    Subscriptions record ``(event, slot_index)`` so that once the
    condition fires, every still-pending subscription is detached in
    O(1) per sub-event by tombstoning its slot — long-lived events
    (a retransmitter's ack, say) no longer accumulate dead checker
    callbacks round after round.
    """

    __slots__ = ("_evaluate", "_events", "_count", "_check_cb", "_subs")

    def __init__(self, sim: "Simulator", evaluate, events: Iterable[Event]):
        self.sim = sim
        self.callbacks = _NO_WAITERS
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        self._subs: tuple | list = []

        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("events belong to different simulators")

        if not self._events:
            self.succeed(self._collect_values())
            return
        # One bound method for the condition's lifetime: subscription
        # slots are compared by identity when detaching.
        check = self._check
        self._check_cb = check
        for event in self._events:
            cbs = event.callbacks
            if cbs is None:
                check(event)
            elif self._value is PENDING:
                if cbs is _NO_WAITERS:
                    event.callbacks = [check]
                    self._subs.append((event, 0))
                else:
                    self._subs.append((event, len(cbs)))
                    cbs.append(check)

    def _collect_values(self) -> dict:
        return {e: e._value for e in self._events if e.triggered}

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            self._detach()
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())
            self._detach()

    def _detach(self) -> None:
        """Tombstone every still-pending subscription (O(1) each)."""
        check = self._check_cb
        for event, idx in self._subs:
            cbs = event.callbacks
            if cbs is not None and idx < len(cbs) and cbs[idx] is check:
                cbs[idx] = None
        self._subs = ()


class AnyOf(Condition):
    """Fires when any one of the sub-events fires."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, lambda events, count: count >= 1, events)


class AllOf(Condition):
    """Fires when all of the sub-events have fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(
            sim, lambda events, count: count == len(events), events
        )


class Simulator:
    """Owner of the virtual clock and the event queue.

    Typical use::

        sim = Simulator()

        def proc(sim):
            yield sim.timeout(5)
            print("t =", sim.now)

        sim.process(proc(sim))
        sim.run()
    """

    def __init__(
        self,
        scheduler: Optional[str] = None,
        mcl_backend: Optional[str] = None,
    ):
        kind = _DEFAULT_SCHEDULER if scheduler is None else scheduler
        if kind not in SCHEDULER_KINDS:
            raise ValueError(
                f"unknown scheduler {kind!r}; expected one of "
                f"{SCHEDULER_KINDS}"
            )
        #: Scheduler kind ("heap" or "calendar"), fixed at construction.
        self.scheduler = kind
        backend = (
            _DEFAULT_MCL_BACKEND if mcl_backend is None else mcl_backend
        )
        if backend not in MCL_BACKENDS:
            raise ValueError(
                f"unknown MCL backend {backend!r}; expected one of "
                f"{MCL_BACKENDS}"
            )
        #: MCL execution backend ("interp" or "closures"), fixed at
        #: construction; daemons resolve their VM entry point from it.
        self.mcl_backend = backend
        self._now: float = 0.0
        # ``_push(queue, entry)`` / ``_pop(queue)`` are plain functions
        # resolved once here, so every schedule site pays one attribute
        # load instead of a per-call isinstance test.  Both schedulers
        # pop in identical ``(time, prio, eid, daemon)`` order.
        if kind == "heap":
            self._queue: Any = []
            self._push = _heappush
            self._pop = _heappop
        else:
            self._queue = CalendarQueue()
            self._push = _cal_push
            self._pop = _cal_pop
        #: Free-list of recycled Timeout objects.  The uninstrumented
        #: run loop returns a just-fired timeout here when it can prove
        #: (via refcount) that nobody else holds it; :meth:`timeout`
        #: then reinitialises it in place of a fresh allocation.
        self._timeout_pool: list = []
        #: Monotone tie-break for same-(time, priority) events; plain int
        #: increments are ~3× faster than an itertools.count round-trip.
        self._eid: int = 0
        self._active_process = None
        self._metrics = None
        self._metrics_events = None
        #: The metrics registry iff it is present *and* enabled, else
        #: None (kept in sync by the ``metrics`` setter).  Instrumented
        #: layers read this instead of :attr:`metrics`, so the disabled
        #: path costs exactly one attribute load and ``is None`` test —
        #: no property call, no tuple building, no ``enabled`` re-check.
        self.obs = None
        #: Optional :class:`repro.perf.TraceHasher`; when set, every
        #: executed event is folded into a digest (golden-trace tests).
        self.trace_hash = None
        #: Queued events that are *not* background (daemon) events; the
        #: run loop drains when this reaches zero, exactly as it used to
        #: drain when the whole queue emptied.
        self._fg_pending: int = 0
        #: Live (unfinished) processes, for deadlock detection at drain.
        self._live_processes: set = set()

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- observability -----------------------------------------------------

    @property
    def metrics(self):
        """The attached :class:`~repro.obs.MetricsRegistry`, or None.

        Every instrumented layer (netsim, mp, messengers, gvt) reports
        into this registry when present; when absent, instrumentation
        reduces to one ``is None`` test per site.
        """
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry
        enabled = registry is not None and registry.enabled
        self.obs = registry if enabled else None
        # The event-loop counter is resolved once here so step() pays a
        # single attribute test per event, not a registry lookup.
        self._metrics_events = (
            registry.counter("des.events_executed") if enabled else None
        )

    @property
    def active_process(self):
        """The process whose generator is currently executing, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        # Inline of ``Event(self)``, skipping the ``__init__`` frame.
        event = _new_event(Event)
        event.sim = self
        event.callbacks = _NO_WAITERS
        event._value = PENDING
        event._ok = None
        event._defused = False
        return event

    def timeout(
        self, delay: float, value: Any = None, daemon: bool = False
    ) -> Timeout:
        """Create an event that fires ``delay`` time units from now.

        ``daemon=True`` makes it a background timeout that never keeps
        the simulation alive (see :class:`Timeout`).
        """
        # Hottest allocation site in the kernel: build the Timeout here
        # without a second __init__ frame (mirrors Timeout.__init__),
        # reusing a recycled object from the free-list when one exists.
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
        else:
            timeout = _new_event(Timeout)
            timeout.sim = self
        timeout.callbacks = _NO_WAITERS
        timeout._value = value
        timeout._ok = True
        timeout.delay = delay
        timeout.daemon = daemon
        eid = self._eid
        self._eid = eid + 1
        self._push(
            self._queue, (self._now + delay, NORMAL, eid, daemon, timeout)
        )
        if not daemon:
            self._fg_pending += 1
        return timeout

    def process(self, generator, daemon: bool = False) -> "Process":
        """Start a new process running ``generator``.

        ``daemon=True`` marks a service loop that legitimately waits
        forever (a transmit pump, a delivery daemon, ...): such processes
        do not count as deadlocked when the event queue drains.
        """
        return _Process(self, generator, daemon=daemon)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = NORMAL,
        daemon: bool = False,
    ) -> None:
        """Insert a triggered event into the queue ``delay`` from now.

        ``daemon=True`` schedules a background event that does not keep
        :meth:`run` alive once all foreground events have drained.
        """
        eid = self._eid
        self._eid = eid + 1
        self._push(
            self._queue, (self._now + delay, priority, eid, daemon, event)
        )
        if not daemon:
            self._fg_pending += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        queue = self._queue
        if not queue:
            return float("inf")
        if self._pop is _heappop:
            return queue[0][0]
        return queue.peek_time()

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`IndexError` ("empty schedule") if nothing is queued.
        """
        time, _prio, _eid, daemon, event = self._pop(self._queue)
        self._now = time
        if not daemon:
            self._fg_pending -= 1
        if self._metrics_events is not None:
            self._metrics_events.value += 1
        if self.trace_hash is not None:
            self.trace_hash.record(
                time, _prio, _eid, daemon, type(event).__name__
            )

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            if callback is not None:
                callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            # Unhandled failure: surface it rather than losing it.
            raise exc

    def stop(self, value: Any = None) -> None:
        """Stop the current :meth:`run` immediately."""
        raise StopSimulation(value)

    def run(self, until: Any = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or an event.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception).

        Background (daemon) events never keep the run alive: once only
        background timeouts remain queued, the run drains exactly as if
        the queue were empty.  This is what lets periodic monitors
        (failure detectors, invariant checkers) tick forever without
        wedging ``run()``.
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed: return/raise its outcome at once.
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
                if stop_event.callbacks is _NO_WAITERS:
                    stop_event.callbacks = [self._stop_callback]
                else:
                    stop_event.callbacks.append(self._stop_callback)
            else:
                deadline = float(until)
                if deadline < self._now:
                    raise ValueError(
                        f"until={deadline} is in the past (now={self._now})"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                stop_event.callbacks = [self._stop_callback]
                eid = self._eid
                self._eid = eid + 1
                self._push(
                    self._queue, (deadline, URGENT, eid, False, stop_event)
                )
                self._fg_pending += 1

        queue = self._queue
        pop = self._pop
        length = len
        refcount = _getrefcount
        pool = self._timeout_pool
        recycle = pool.append
        # Instrumentation (metrics counter / trace hasher) is attached
        # before run() is entered; the check is hoisted out of the loop
        # and re-evaluated on every run() call, and the instrumented
        # path routes through step() so counter and hasher observe every
        # event exactly as the historical kernel did.
        instrumented = (
            self._metrics_events is not None or self.trace_hash is not None
        )
        # ``_fg_pending > 0`` implies a non-empty queue (every foreground
        # push increments it, every foreground pop decrements it), so the
        # loop conditions below need not also test ``queue``.
        try:
            if instrumented:
                while self._fg_pending > 0:
                    self.step()
            else:
                # Inlined event loop — semantically identical to
                # ``while fg: self.step()``.
                while self._fg_pending > 0:
                    time, _prio, _eid, daemon, event = pop(queue)
                    self._now = time
                    if not daemon:
                        self._fg_pending -= 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    if length(callbacks) == 1:
                        # The overwhelmingly common case: exactly one
                        # waiter (a parked process).
                        callback = callbacks[0]
                        if callback is not None:
                            callback(event)
                    else:
                        for callback in callbacks:
                            if callback is not None:
                                callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    # Recycle fire-and-forget timeouts: refcount 2 means
                    # the only references are this frame's local and the
                    # getrefcount argument — no condition, process frame,
                    # or user variable holds the object, so reusing it is
                    # invisible.  (Timeout has no __weakref__ slot, so no
                    # untracked reference can exist.)
                    if (
                        type(event) is Timeout
                        and refcount(event) == 2
                        and length(pool) < 4096
                    ):
                        recycle(event)
        except StopSimulation as stop:
            if isinstance(until, Event):
                if until._ok:
                    return until._value
                until.defuse()
                raise until._value
            return stop.value

        self._check_deadlock()
        if isinstance(until, Event) and not until.triggered:
            raise SimulationError(
                "run(until=event) finished but the event never triggered"
            )
        return None

    def _check_deadlock(self) -> None:
        """Raise :class:`SimDeadlockError` if the drained queue left
        non-daemon processes parked on events that can no longer fire."""
        blocked = sorted(
            (p for p in self._live_processes if p.is_alive and not p.daemon),
            key=lambda p: p.name,
        )
        if blocked:
            raise SimDeadlockError(
                [(p.name, _describe_wait(p)) for p in blocked]
            )

    def _stop_callback(self, event: Event) -> None:
        raise StopSimulation(event._value if event._ok else None)

    def __repr__(self) -> str:
        return f"<Simulator now={self._now} queued={len(self._queue)}>"


#: Human-readable labels for the internal wait-event classes, so a
#: :class:`SimDeadlockError` says "store.get" instead of "_Get".
_WAIT_LABELS = {
    "_Get": "store.get",
    "_FilterGet": "filter_store.get",
    "_Put": "store.put",
    "_Request": "resource.request",
    "Timeout": "timeout",
    "AnyOf": "any_of",
    "AllOf": "all_of",
    "Event": "event",
}


def _describe_wait(process) -> str:
    target = process.target
    if target is None:
        return "(nothing — never parked)"
    kind = type(target).__name__
    if kind == "Process":
        return f"process {target.name!r}"
    return _WAIT_LABELS.get(kind, kind)


# Resolved once at import time (the module cycle with .process is safe
# here: everything .process needs from this module is defined above).
# ``Simulator.process`` used to import it per call, which was a
# measurable cost when layers spawn processes by the thousand.
from .process import Process as _Process  # noqa: E402
