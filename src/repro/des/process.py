"""Coroutine processes for the simulation kernel.

A process wraps a Python generator.  The generator ``yield``\\ s
:class:`~repro.des.core.Event` objects; the process resumes when the event
fires, receiving the event's value as the result of the ``yield``
expression (or having the event's exception thrown into it).

Hot-path notes: a process parks on an event by appending one *cached*
bound method (``_resume_cb``) to the event's callback list and recording
the slot index, so an interrupt can detach it in O(1) by tombstoning the
slot instead of ``list.remove``.  ``Process`` and ``Initialize`` use
``__slots__`` and inline ``Event.__init__`` — one of each is allocated
per process, and the messenger layers spawn processes by the thousand.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Optional

from .core import (
    Event,
    NORMAL,
    PENDING,
    URGENT,
    _NO_WAITERS,
    _new_event,
)
from .errors import Interrupt, ProcessDead, SimulationError

__all__ = ["Process", "Initialize"]


class Initialize(Event):
    """Internal event that kicks off a newly created process."""

    __slots__ = ()

    def __init__(self, sim, process: "Process"):
        self.sim = sim
        self._value = None
        self._ok = True
        self._defused = False
        self.callbacks = [process._resume_cb]
        # Inline of ``sim.schedule(self, priority=URGENT)``.
        eid = sim._eid
        sim._eid = eid + 1
        sim._push(sim._queue, (sim._now, URGENT, eid, False, self))
        sim._fg_pending += 1


class Process(Event):
    """An executing generator.  The process is itself an event that fires
    with the generator's return value when the generator finishes — so one
    process can wait for another simply by yielding it.
    """

    __slots__ = (
        "_generator",
        "daemon",
        "_target",
        "_resume_cb",
        "_park_idx",
        "_send",
    )

    def __init__(self, sim, generator, daemon: bool = False):
        if not isinstance(generator, GeneratorType):
            raise TypeError(
                f"process() needs a generator, got {generator!r}; "
                "did you forget to call the generator function?"
            )
        self.sim = sim
        self.callbacks = _NO_WAITERS
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._generator = generator
        # ``send`` is cached because it runs once per resume; ``throw``
        # is looked up lazily in the (rare) failure branch.
        self._send = generator.send
        #: Daemon processes (service loops) may wait forever without
        #: tripping the simulator's drain-time deadlock check.
        self.daemon = daemon
        #: One bound method for the process's lifetime; parked slots are
        #: compared against it by identity when detaching.
        resume_cb = self._resume
        self._resume_cb = resume_cb
        self._park_idx = -1
        # Inline of ``Initialize(sim, self)``: one Initialize event is
        # built per spawn, so the class-call + ``__init__`` frames were
        # measurable when layers spawn processes by the thousand.
        init = _new_event(Initialize)
        init.sim = sim
        init._value = None
        init._ok = True
        init._defused = False
        init.callbacks = [resume_cb]
        eid = sim._eid
        sim._eid = eid + 1
        sim._push(sim._queue, (sim._now, URGENT, eid, False, init))
        sim._fg_pending += 1
        self._target: Optional[Event] = init
        sim._live_processes.add(self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def name(self) -> str:
        return self._generator.__name__

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.des.errors.Interrupt` into the process.

        The interrupt is delivered as an urgent event so it preempts
        whatever the process was waiting for.  Interrupting a finished
        process raises :class:`ProcessDead`.
        """
        if self._value is not PENDING:
            raise ProcessDead(f"{self!r} has terminated; cannot interrupt")
        if self.sim.active_process is self:
            raise SimulationError("a process cannot interrupt itself")

        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume_interrupt]
        self.sim.schedule(interrupt_event, priority=URGENT)

    # -- internal ------------------------------------------------------------

    def _resume_interrupt(self, event: Event) -> None:
        if self._value is not PENDING:
            return  # process died before interrupt delivery; drop it
        # Detach from whatever we were waiting on: tombstone the parked
        # slot (O(1)) — indices stay valid because callback lists are
        # append-only.
        target = self._target
        if target is not None:
            cbs = target.callbacks
            idx = self._park_idx
            if (
                cbs is not None
                and 0 <= idx < len(cbs)
                and cbs[idx] is self._resume_cb
            ):
                cbs[idx] = None
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        sim = self.sim
        sim._active_process = self
        send = self._send
        try:
            while True:
                try:
                    if event is None:
                        next_target = send(None)
                    elif event._ok:
                        next_target = send(event._value)
                    else:
                        event._defused = True
                        next_target = self._generator.throw(event._value)
                except StopIteration as stop:
                    self._target = None
                    # Break the ``self → _resume_cb → self`` cycle so the
                    # finished process dies by refcount, not gc.
                    self._resume_cb = None
                    self._send = None
                    sim._live_processes.discard(self)
                    # Inline of ``self.succeed(stop.value)``.
                    if self._value is not PENDING:
                        self.succeed(stop.value)  # raises AlreadyTriggered
                    self._ok = True
                    self._value = stop.value
                    eid = sim._eid
                    sim._eid = eid + 1
                    sim._push(
                        sim._queue, (sim._now, NORMAL, eid, False, self)
                    )
                    sim._fg_pending += 1
                    return
                except BaseException as error:
                    self._target = None
                    self._resume_cb = None
                    self._send = None
                    sim._live_processes.discard(self)
                    self.fail(error)
                    return

                try:
                    # Only Event exposes .callbacks; reading it doubles
                    # as the (hot) yielded-an-event type check.
                    cbs = next_target.callbacks
                except AttributeError:
                    # Tell the generator it misbehaved; let it clean up.
                    event = Event(sim)
                    event._ok = False
                    event._value = SimulationError(
                        f"process {self.name!r} yielded a non-event: "
                        f"{next_target!r}"
                    )
                    continue

                if cbs is not None:
                    # Not yet processed: park until it fires.  A fresh
                    # event still carries the shared no-waiters marker;
                    # build its real (single-element) list directly.
                    if cbs is _NO_WAITERS:
                        next_target.callbacks = [self._resume_cb]
                        self._park_idx = 0
                    else:
                        self._park_idx = len(cbs) if cbs else 0
                        cbs.append(self._resume_cb)
                    self._target = next_target
                    return
                # Already processed: loop and deliver immediately.
                event = next_target
        finally:
            sim._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"
