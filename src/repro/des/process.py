"""Coroutine processes for the simulation kernel.

A process wraps a Python generator.  The generator ``yield``\\ s
:class:`~repro.des.core.Event` objects; the process resumes when the event
fires, receiving the event's value as the result of the ``yield``
expression (or having the event's exception thrown into it).
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Optional

from .core import Event, NORMAL, URGENT
from .errors import Interrupt, ProcessDead, SimulationError

__all__ = ["Process", "Initialize"]


class Initialize(Event):
    """Internal event that kicks off a newly created process."""

    def __init__(self, sim, process: "Process"):
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks = [process._resume]
        sim.schedule(self, priority=URGENT)


class Process(Event):
    """An executing generator.  The process is itself an event that fires
    with the generator's return value when the generator finishes — so one
    process can wait for another simply by yielding it.
    """

    def __init__(self, sim, generator, daemon: bool = False):
        if not isinstance(generator, GeneratorType):
            raise TypeError(
                f"process() needs a generator, got {generator!r}; "
                "did you forget to call the generator function?"
            )
        super().__init__(sim)
        self._generator = generator
        #: Daemon processes (service loops) may wait forever without
        #: tripping the simulator's drain-time deadlock check.
        self.daemon = daemon
        self._target: Optional[Event] = Initialize(sim, self)
        sim._live_processes.add(self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def name(self) -> str:
        return self._generator.__name__

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.des.errors.Interrupt` into the process.

        The interrupt is delivered as an urgent event so it preempts
        whatever the process was waiting for.  Interrupting a finished
        process raises :class:`ProcessDead`.
        """
        if self.triggered:
            raise ProcessDead(f"{self!r} has terminated; cannot interrupt")
        if self.sim.active_process is self:
            raise SimulationError("a process cannot interrupt itself")

        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume_interrupt]
        self.sim.schedule(interrupt_event, priority=URGENT)

    # -- internal ------------------------------------------------------------

    def _resume_interrupt(self, event: Event) -> None:
        if self.triggered:
            return  # process died before interrupt delivery; drop it
        # Detach from whatever we were waiting on.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self.sim._active_process = self
        try:
            while True:
                try:
                    if event is None or event._ok:
                        next_target = self._generator.send(
                            None if event is None else event._value
                        )
                    else:
                        event.defuse()
                        next_target = self._generator.throw(event._value)
                except StopIteration as stop:
                    self._target = None
                    self.sim._live_processes.discard(self)
                    self.succeed(stop.value)
                    return
                except BaseException as error:
                    self._target = None
                    self.sim._live_processes.discard(self)
                    self.fail(error)
                    return

                if not isinstance(next_target, Event):
                    # Tell the generator it misbehaved; let it clean up.
                    event = Event(self.sim)
                    event._ok = False
                    event._value = SimulationError(
                        f"process {self.name!r} yielded a non-event: "
                        f"{next_target!r}"
                    )
                    continue

                if next_target.callbacks is not None:
                    # Not yet processed: park until it fires.
                    next_target.callbacks.append(self._resume)
                    self._target = next_target
                    return
                # Already processed: loop and deliver immediately.
                event = next_target
        finally:
            self.sim._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"
