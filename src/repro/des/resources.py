"""Shared resources for simulation processes.

Three primitives cover everything the upper layers need:

* :class:`Resource` — a counted semaphore (e.g. a CPU, a bus);
* :class:`Store` — an unbounded-or-bounded FIFO of Python objects
  (e.g. a daemon's inbox, a PVM message queue);
* :class:`PriorityStore` — a store that releases the smallest item first
  (used for virtual-time event queues).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from .core import Event, PENDING, Simulator, _NO_WAITERS
from .errors import SimulationError

__all__ = ["Resource", "Store", "PriorityStore", "FilterStore"]


class _Request(Event):
    """Pending acquisition of a resource slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.sim = resource.sim
        self.callbacks = _NO_WAITERS
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with FIFO granting.

    Usage::

        cpu = Resource(sim, capacity=1)

        def proc(sim):
            req = cpu.request()
            yield req
            try:
                yield sim.timeout(3)       # hold the cpu
            finally:
                cpu.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: set = set()
        self._waiting: deque = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> _Request:
        """Request a slot; the returned event fires when granted."""
        return _Request(self)

    def _do_request(self, request: _Request) -> None:
        if len(self._users) < self.capacity:
            self._users.add(request)
            request.succeed()
        else:
            self._waiting.append(request)

    def release(self, request: _Request) -> None:
        """Return a previously granted slot."""
        if request in self._users:
            self._users.remove(request)
        else:
            # Cancelling a queued request is also a release.
            try:
                self._waiting.remove(request)
                return
            except ValueError:
                raise SimulationError("release() of a request never granted")
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()


class _Get(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        self.sim = store.sim
        self.callbacks = _NO_WAITERS
        self._value = PENDING
        self._ok = None
        self._defused = False
        store._getters.append(self)
        store._dispatch()


class _FilterGet(Event):
    __slots__ = ("predicate",)

    def __init__(self, store: "FilterStore", predicate):
        self.sim = store.sim
        self.callbacks = _NO_WAITERS
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.predicate = predicate
        store._getters.append(self)
        store._dispatch()


class _Put(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        self.sim = store.sim
        self.callbacks = _NO_WAITERS
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.item = item
        store._putters.append(self)
        store._dispatch()


class Store:
    """FIFO store of arbitrary items, optionally bounded.

    ``put`` returns an event that fires once the item is accepted (always
    immediately for unbounded stores); ``get`` returns an event that fires
    with the oldest item once one is available.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque = deque()
        self._putters: deque = deque()

    # -- container-ish introspection -----------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list:
        """Snapshot of currently stored items (oldest first)."""
        return list(self._items)

    # -- operations -------------------------------------------------------------

    def put(self, item: Any) -> Event:
        """Insert ``item``; returned event fires when accepted."""
        return _Put(self, item)

    def get(self) -> Event:
        """Remove and return the oldest item via the returned event."""
        return _Get(self)

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            item = self._pop_item()
            self._admit_putters()
            return True, item
        return False, None

    def cancel_get(self, get_event: Event) -> bool:
        """Withdraw a still-pending ``get``; returns False if it already
        fired (or was never ours).

        A getter that lost an ``AnyOf`` race (e.g. a recv-with-timeout)
        must be withdrawn, or it would silently steal a later item.
        """
        if get_event.triggered:
            return False
        try:
            self._getters.remove(get_event)
        except ValueError:
            return False
        return True

    def clear(self) -> list:
        """Drop and return everything currently stored.

        Waiting getters stay parked (their events remain pending); the
        fault layer uses this to model volatile queues lost in a host
        crash.
        """
        items = list(self._items)
        self._items.clear()
        self._admit_putters()
        return items

    # -- internals ---------------------------------------------------------------

    def _store_item(self, item: Any) -> None:
        self._items.append(item)

    def _pop_item(self) -> Any:
        return self._items.popleft()

    def _admit_putters(self) -> None:
        while self._putters and len(self._items) < self.capacity:
            put = self._putters.popleft()
            self._store_item(put.item)
            put.succeed()

    def _dispatch(self) -> None:
        self._admit_putters()
        while self._getters and self._items:
            get = self._match_getter()
            if get is None:
                break
            self._admit_putters()
        # A successful get may have freed capacity for a waiting putter,
        # whose item may in turn satisfy a waiting getter.
        if self._getters and self._items:
            self._dispatch()

    def _match_getter(self) -> Optional[Event]:
        get = self._getters.popleft()
        get.succeed(self._pop_item())
        return get


class PriorityStore(Store):
    """A store whose ``get`` returns the smallest item (heap order).

    Items must be comparable; the virtual-time layers store
    ``(timestamp, tiebreak, payload)`` tuples.
    """

    def _store_item(self, item: Any) -> None:
        heapq.heappush(self._items, item)  # type: ignore[arg-type]

    def _pop_item(self) -> Any:
        return heapq.heappop(self._items)  # type: ignore[arg-type]

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        super().__init__(sim, capacity)
        self._items: list = []  # heap, not deque

    def peek(self) -> Any:
        """Smallest stored item without removing it."""
        if not self._items:
            raise SimulationError("peek() on empty PriorityStore")
        return self._items[0]


class FilterStore(Store):
    """A store whose getters may demand items matching a predicate."""

    def get(self, predicate: Callable[[Any], bool] = lambda item: True):
        return _FilterGet(self, predicate)

    def _dispatch(self) -> None:
        self._admit_putters()
        progress = True
        while progress:
            progress = False
            for get in list(self._getters):
                for item in self._items:
                    if get.predicate(item):
                        self._items.remove(item)
                        self._getters.remove(get)
                        get.succeed(item)
                        progress = True
                        break
            if progress:
                self._admit_putters()
