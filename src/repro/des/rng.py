"""Deterministic random-number streams for simulations.

Each subsystem draws from its own named stream so that adding randomness
to one component never perturbs another ("variance reduction by common
random numbers").  All streams derive from a single root seed, so a whole
experiment is reproducible from one integer.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of named, independent :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        The per-stream seed mixes the root seed with a CRC of the name, so
        the same (root_seed, name) pair always yields the same sequence.
        """
        if name not in self._streams:
            mixed = (self.root_seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            self._streams[name] = random.Random(mixed)
        return self._streams[name]

    def reset(self) -> None:
        """Forget all streams (they will be re-created from scratch)."""
        self._streams.clear()

    def __repr__(self) -> str:
        return (
            f"<RngRegistry seed={self.root_seed} "
            f"streams={sorted(self._streams)}>"
        )
