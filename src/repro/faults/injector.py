"""Apply a :class:`~repro.faults.plan.FaultPlan` to a live network.

The injector is the bridge between the *description* of faults and the
machinery that suffers them:

* timed events (crash/restart/partition/heal/hang) are replayed by a
  daemon process at their scheduled virtual times;
* per-packet decisions (drop/duplicate/corrupt) are sampled on demand by
  :meth:`FaultInjector.packet_action`, which the transmit pump in
  :class:`~repro.netsim.transport.Network` consults for every non-local
  packet — but only when the plan can actually perturb the wire, so an
  attached zero-fault plan stays off the hot path;
* every fault and recovery action is double-counted: into the plain
  ``counts`` dict (always, so ``repro chaos`` can report statistics
  without a metrics registry) and into the ``faults.*`` metric family +
  trace instants when a :class:`~repro.obs.MetricsRegistry` is attached.

Randomness comes exclusively from named
:class:`~repro.des.rng.RngRegistry` streams (``faults.drop``,
``faults.duplicate``, ``faults.corrupt``, ``faults.retransmit``), so a
(seed, plan) pair replays bit-identically — the property the
determinism tests in ``tests/test_faults.py`` pin down.
"""

from __future__ import annotations

from ..des.rng import RngRegistry
from .plan import CRASH, FaultPlan, HANG, HEAL, PARTITION, RESTART

__all__ = ["FaultInjector"]

#: Trace track used for fault/recovery instants in the Chrome trace.
TRACK = "faults"


class FaultInjector:
    """Wires a :class:`FaultPlan` into a ``netsim`` Network.

    Construction attaches immediately: the network's transmit pumps
    start consulting :meth:`packet_action`, reliable ports arm their
    ack/retransmit machinery (if the plan is lossy), and a scheduler
    process is started for the plan's timed events.
    """

    def __init__(self, network, plan: FaultPlan, rng=None, seed: int = 0):
        self.network = network
        self.sim = network.sim
        self.plan = plan.validate(network.host_names)
        self.rng = rng if rng is not None else RngRegistry(seed)
        #: Host-name pairs currently partitioned (order-insensitive).
        self.partitions: set[frozenset] = set()
        #: Plain counters, always maintained (metrics or not).
        self.counts: dict[str, int] = {}

        # Pre-resolve the sampling streams and fast-path flags once.
        self._drop_rng = self.rng.stream("faults.drop")
        self._dup_rng = self.rng.stream("faults.duplicate")
        self._corrupt_rng = self.rng.stream("faults.corrupt")
        self.retransmit_rng = self.rng.stream("faults.retransmit")
        #: True when per-packet sampling can ever change an outcome.
        self.perturbs = plan.lossy
        #: True when checkpoint/recovery machinery must be armed.
        self.can_crash = plan.can_crash

        network.attach_faults(self)
        if plan.events:
            self.sim.process(self._scheduler(), daemon=True)

    # -- accounting --------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Bump fault counter ``name`` (dict always, metrics if present)."""
        self.counts[name] = self.counts.get(name, 0) + n
        metrics = self.sim.obs
        if metrics is not None:
            metrics.count(f"faults.{name}", n)

    def _instant(self, name: str, args=None) -> None:
        metrics = self.sim.obs
        if metrics is not None:
            metrics.instant(TRACK, name, self.sim.now, args)

    # -- timed events ------------------------------------------------------

    def _scheduler(self):
        """Daemon process replaying the plan's timed events in order."""
        for event in self.plan.sorted_events():
            if event.at > self.sim.now:
                yield self.sim.timeout(event.at - self.sim.now)
            self._apply(event)

    def _apply(self, event) -> None:
        if event.kind == CRASH:
            self.count("host_crashes")
            self._instant("crash", {"host": event.host})
            self.network.crash_host(event.host)
        elif event.kind == RESTART:
            self.count("host_restarts")
            self._instant("restart", {"host": event.host})
            self.network.restart_host(event.host)
        elif event.kind == PARTITION:
            self.count("partitions")
            self._instant(
                "partition", {"a": event.host, "b": event.peer}
            )
            self.partitions.add(frozenset((event.host, event.peer)))
        elif event.kind == HEAL:
            self.count("heals")
            self._instant("heal", {"a": event.host, "b": event.peer})
            self.partitions.discard(frozenset((event.host, event.peer)))
            self.network.notify_heal(event.host, event.peer)
        elif event.kind == HANG:
            self.count("hangs")
            self._instant(
                "hang", {"host": event.host, "duration": event.duration}
            )
            self.sim.process(
                self._hang(event.host, event.duration), daemon=True
            )

    def _hang(self, host_name: str, duration: float):
        """Seize the host's CPU: everything queued behind us waits."""
        host = self.network.host(host_name)
        request = host.cpu.request()
        yield request
        try:
            yield self.sim.timeout(duration)
        finally:
            host.cpu.release(request)

    # -- per-packet decisions ----------------------------------------------

    def partitioned(self, a: str, b: str) -> bool:
        return (
            bool(self.partitions)
            and frozenset((a, b)) in self.partitions
        )

    def packet_action(self, packet) -> str:
        """Decide one packet's fate: ``deliver``, ``drop``, ``corrupt``,
        ``duplicate``, or ``partitioned``.

        Called by the transmit pump for every non-local packet while
        ``perturbs`` is true.  Sampling order (drop, then corrupt, then
        duplicate) is fixed so runs replay identically.
        """
        src, dst = packet.src, packet.dst
        if self.partitioned(src, dst):
            self.count("packets_partitioned")
            return "partitioned"
        plan = self.plan
        rate = plan.drop_rate(src, dst)
        if rate and self._drop_rng.random() < rate:
            self.count("packets_dropped")
            self._instant(
                "drop", {"src": src, "dst": dst, "port": packet.port}
            )
            return "drop"
        rate = plan.corrupt_rate(src, dst)
        if rate and self._corrupt_rng.random() < rate:
            self.count("packets_corrupted")
            self._instant(
                "corrupt", {"src": src, "dst": dst, "port": packet.port}
            )
            return "corrupt"
        rate = plan.duplicate_rate(src, dst)
        if rate and self._dup_rng.random() < rate:
            self.count("packets_duplicated")
            return "duplicate"
        return "deliver"

    def __repr__(self) -> str:
        return (
            f"<FaultInjector plan={self.plan!r} "
            f"counts={dict(sorted(self.counts.items()))}>"
        )
