"""Declarative, seed-reproducible fault plans.

A :class:`FaultPlan` is a pure description — *what* can go wrong and
*when* — with no reference to a simulator, network, or RNG.  The same
plan object can therefore drive a MESSENGERS run and a PVM run (or two
repetitions of either) and, combined with one root seed, reproduce the
exact same fault sequence each time.  The half that *applies* a plan to
a live :class:`~repro.netsim.transport.Network` is
:class:`~repro.faults.injector.FaultInjector`.

Two kinds of trouble are described:

* **probabilistic packet perturbation** — per-link (or global) drop,
  duplicate, and corrupt rates, sampled per packet from dedicated
  :class:`~repro.des.rng.RngRegistry` streams;
* **timed events** — host crash/restart, link partition/heal, and
  daemon hang, applied at fixed virtual times.

The builder methods all return ``self`` so plans read fluently::

    plan = (FaultPlan()
            .drop(0.05)                      # 5% loss on every link
            .corrupt(0.01, src="host1")      # bad NIC on host1
            .crash("host2", at=0.5)
            .restart("host2", at=0.9))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["FaultEvent", "FaultPlan", "FaultPlanError", "RetransmitPolicy"]

#: Timed-event kinds understood by the injector.
CRASH = "crash"
RESTART = "restart"
PARTITION = "partition"
HEAL = "heal"
HANG = "hang"

_KINDS = (CRASH, RESTART, PARTITION, HEAL, HANG)


class FaultPlanError(ValueError):
    """A fault plan is malformed for the cluster it is being armed on.

    Raised at *arm* time (``FaultInjector`` construction), not at build
    time: a plan is a pure description and may legitimately mention
    hosts that only exist in some clusters.  Rate and per-event range
    errors are still raised eagerly by the builder as ``ValueError``.
    """


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: ``kind`` applied at virtual time ``at``.

    ``host`` names the victim (or one partition endpoint); ``peer`` is
    the second partition endpoint; ``duration`` is how long a ``hang``
    seizes the host's CPU.
    """

    at: float
    kind: str
    host: Optional[str] = None
    peer: Optional[str] = None
    duration: float = 0.0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.kind == HANG and self.duration <= 0:
            raise ValueError("hang needs a positive duration")


@dataclass(frozen=True)
class RetransmitPolicy:
    """Tuning knobs for the reliable (ack/seq/retransmit) channel."""

    timeout_s: float = 0.05       # first retransmit timeout
    backoff: float = 2.0          # multiplier per unsuccessful attempt
    jitter: float = 0.25          # +U(0, jitter) fraction, from des.rng
    max_retries: int = 12         # then the packet is abandoned

    def __post_init__(self):
        if self.timeout_s <= 0:
            raise ValueError("retransmit timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_retries < 1:
            raise ValueError("need at least one retry")


def _check_rate(rate: float) -> float:
    rate = float(rate)
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    return rate


class FaultPlan:
    """Builder for a reproducible set of faults.

    Rates are keyed by ``(src, dst)`` host-name pairs where ``None``
    acts as a wildcard; the most specific key wins:
    ``(src, dst)`` > ``(src, None)`` > ``(None, dst)`` > ``(None, None)``.
    """

    def __init__(self):
        self.events: list[FaultEvent] = []
        #: ``None`` means "use the CostModel's retransmit_* defaults";
        #: :meth:`retransmit` installs an explicit override.
        self.retransmit_policy: Optional[RetransmitPolicy] = None
        self._drop: dict[tuple, float] = {}
        self._duplicate: dict[tuple, float] = {}
        self._corrupt: dict[tuple, float] = {}

    # -- probabilistic perturbation ---------------------------------------

    def _set_rate(self, table, rate, src, dst) -> "FaultPlan":
        rate = _check_rate(rate)
        key = (src, dst)
        if rate == 0.0:
            table.pop(key, None)  # a zero rate is the same as no rate
        else:
            table[key] = rate
        return self

    def drop(self, rate: float, src: str = None, dst: str = None):
        """Lose packets on the wire with probability ``rate``."""
        return self._set_rate(self._drop, rate, src, dst)

    def duplicate(self, rate: float, src: str = None, dst: str = None):
        """Deliver packets twice with probability ``rate``."""
        return self._set_rate(self._duplicate, rate, src, dst)

    def corrupt(self, rate: float, src: str = None, dst: str = None):
        """Corrupt frames (dropped at the receiver's checksum) with
        probability ``rate``."""
        return self._set_rate(self._corrupt, rate, src, dst)

    # -- timed events ------------------------------------------------------

    def _add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def crash(self, host: str, at: float):
        """Crash ``host`` at virtual time ``at`` (fail-stop: its CPU
        rejects work, queued and arriving packets are lost)."""
        return self._add(FaultEvent(at=at, kind=CRASH, host=host))

    def restart(self, host: str, at: float):
        """Restart a crashed ``host`` at ``at`` (ports re-register,
        volatile state is gone)."""
        return self._add(FaultEvent(at=at, kind=RESTART, host=host))

    def partition(self, a: str, b: str, at: float):
        """Cut the link between hosts ``a`` and ``b`` at ``at``."""
        return self._add(FaultEvent(at=at, kind=PARTITION, host=a, peer=b))

    def heal(self, a: str, b: str, at: float):
        """Undo a partition between ``a`` and ``b`` at ``at``."""
        return self._add(FaultEvent(at=at, kind=HEAL, host=a, peer=b))

    def hang(self, host: str, at: float, duration: float):
        """Seize ``host``'s CPU for ``duration`` seconds starting at
        ``at`` (models a wedged daemon: the host is alive but busy)."""
        return self._add(
            FaultEvent(at=at, kind=HANG, host=host, duration=duration)
        )

    def retransmit(
        self,
        timeout_s: float = 0.05,
        backoff: float = 2.0,
        jitter: float = 0.25,
        max_retries: int = 12,
    ):
        """Configure the reliable channel's retransmission behaviour."""
        self.retransmit_policy = RetransmitPolicy(
            timeout_s=timeout_s,
            backoff=backoff,
            jitter=jitter,
            max_retries=max_retries,
        )
        return self

    # -- queries (used by the injector and the transport fast paths) -------

    def _rate_for(self, table, src: str, dst: str) -> float:
        for key in ((src, dst), (src, None), (None, dst), (None, None)):
            rate = table.get(key)
            if rate is not None:
                return rate
        return 0.0

    def drop_rate(self, src: str, dst: str) -> float:
        return self._rate_for(self._drop, src, dst)

    def duplicate_rate(self, src: str, dst: str) -> float:
        return self._rate_for(self._duplicate, src, dst)

    def corrupt_rate(self, src: str, dst: str) -> float:
        return self._rate_for(self._corrupt, src, dst)

    @property
    def lossy(self) -> bool:
        """True if the wire itself can misbehave (rates or partitions).

        Reliable (ack/retransmit) delivery is switched on exactly when
        this is true, so a crash-only plan pays no ack traffic and a
        zero-fault plan costs nothing at all.
        """
        return bool(
            self._drop
            or self._duplicate
            or self._corrupt
            or any(e.kind in (PARTITION, HEAL) for e in self.events)
        )

    @property
    def can_crash(self) -> bool:
        """True if any host may crash — gates checkpointing overhead."""
        return any(e.kind == CRASH for e in self.events)

    @property
    def empty(self) -> bool:
        return not self.events and not self.lossy

    def sorted_events(self) -> list[FaultEvent]:
        """Events in application order (stable on insertion order)."""
        return sorted(self.events, key=lambda e: e.at)

    # -- validation --------------------------------------------------------

    def validate(self, host_names=None) -> "FaultPlan":
        """Check the plan's internal consistency; returns ``self``.

        Raises :class:`FaultPlanError` on the schedule-level mistakes a
        per-event constructor cannot see: events (or rate keys) naming
        hosts the cluster does not have, a restart of a host that never
        crashed, a second crash without an intervening restart, and
        overlapping partition intervals (or a heal with no matching
        partition) on the same link.  Partition/heal windows are checked
        in virtual-time order (``sorted_events``), so an unordered pair
        — a heal scheduled *before* its partition — is rejected as a
        heal of an uncut link, and timed events must name concrete
        hosts (``None`` wildcards are only meaningful for rate keys).
        The injector calls this at arm time with the live network's
        host list.
        """
        known = set(host_names) if host_names is not None else None

        def check_host(name, what):
            if name is not None and known is not None and name not in known:
                raise FaultPlanError(
                    f"{what} names unknown host {name!r}; cluster has "
                    f"{sorted(known)}"
                )

        def require_host(name, what):
            if name is None:
                raise FaultPlanError(
                    f"{what} must name a concrete host, not None "
                    "(wildcards are only meaningful for rates)"
                )
            check_host(name, what)

        for table, label in (
            (self._drop, "drop"),
            (self._duplicate, "duplicate"),
            (self._corrupt, "corrupt"),
        ):
            for src, dst in table:
                check_host(src, f"{label} rate src")
                check_host(dst, f"{label} rate dst")

        down: set[str] = set()
        cut: set[frozenset] = set()
        for event in self.sorted_events():
            require_host(event.host, f"{event.kind} event at t={event.at}")
            if event.kind in (PARTITION, HEAL):
                require_host(
                    event.peer, f"{event.kind} peer at t={event.at}"
                )
            else:
                check_host(event.peer, f"{event.kind} event at t={event.at}")
            if event.kind == CRASH:
                if event.host in down:
                    raise FaultPlanError(
                        f"host {event.host!r} crashes again at "
                        f"t={event.at} without an intervening restart"
                    )
                down.add(event.host)
            elif event.kind == RESTART:
                if event.host not in down:
                    raise FaultPlanError(
                        f"restart of {event.host!r} at t={event.at} "
                        "but it never crashed before that"
                    )
                down.discard(event.host)
            elif event.kind in (PARTITION, HEAL):
                if event.host == event.peer:
                    raise FaultPlanError(
                        f"{event.kind} at t={event.at} links host "
                        f"{event.host!r} to itself"
                    )
                pair = frozenset((event.host, event.peer))
                if event.kind == PARTITION:
                    if pair in cut:
                        raise FaultPlanError(
                            f"link {event.host!r}<->{event.peer!r} is "
                            f"partitioned again at t={event.at} while "
                            "already cut (overlapping intervals)"
                        )
                    cut.add(pair)
                else:
                    if pair not in cut:
                        raise FaultPlanError(
                            f"heal of {event.host!r}<->{event.peer!r} at "
                            f"t={event.at} but that link is not "
                            "partitioned"
                        )
                    cut.discard(pair)
        return self

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON form; inverse of :meth:`from_dict`.

        Rate keys flatten to ``[src, dst, rate]`` triples (``None`` is a
        wildcard) because JSON objects cannot key on tuples.
        """
        policy = self.retransmit_policy
        return {
            "events": [
                {
                    "at": e.at,
                    "kind": e.kind,
                    "host": e.host,
                    "peer": e.peer,
                    "duration": e.duration,
                }
                for e in self.events
            ],
            "drop": [[s, d, r] for (s, d), r in sorted(
                self._drop.items(), key=repr)],
            "duplicate": [[s, d, r] for (s, d), r in sorted(
                self._duplicate.items(), key=repr)],
            "corrupt": [[s, d, r] for (s, d), r in sorted(
                self._corrupt.items(), key=repr)],
            "retransmit": None if policy is None else {
                "timeout_s": policy.timeout_s,
                "backoff": policy.backoff,
                "jitter": policy.jitter,
                "max_retries": policy.max_retries,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_dict` (validating as
        the builder would)."""
        plan = cls()
        for entry in data.get("events", ()):
            plan._add(FaultEvent(**entry))
        for method, key in (
            (plan.drop, "drop"),
            (plan.duplicate, "duplicate"),
            (plan.corrupt, "corrupt"),
        ):
            for src, dst, rate in data.get(key, ()):
                method(rate, src=src, dst=dst)
        policy = data.get("retransmit")
        if policy is not None:
            plan.retransmit(**policy)
        return plan

    def __repr__(self) -> str:
        return (
            f"<FaultPlan events={len(self.events)} "
            f"drop={len(self._drop)} dup={len(self._duplicate)} "
            f"corrupt={len(self._corrupt)}>"
        )
