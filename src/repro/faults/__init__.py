"""Deterministic fault injection for the simulated cluster.

``repro.faults`` makes the perfectly-reliable simulated LAN misbehave —
reproducibly.  A :class:`FaultPlan` describes packet drop/duplicate/
corrupt rates, link partitions, host crash/restart and daemon hangs; a
:class:`FaultInjector` replays that plan against a live
:class:`~repro.netsim.transport.Network`, with all randomness drawn from
seeded :class:`~repro.des.rng.RngRegistry` streams.

The recovery machinery lives with the layers it protects:

* ``netsim.transport`` — ack/seq/retransmit reliable delivery;
* ``messengers`` — hop-boundary checkpoints, logical-network repair and
  messenger re-dispatch;
* ``mp`` — ``pvm_notify``-style task-exit/host-delete notifications.

Entry points: ``repro.cluster(n, faults=plan, seed=s)``,
``Experiment().faults(plan)``, and the ``repro chaos`` CLI command.
"""

from .injector import FaultInjector
from .plan import FaultEvent, FaultPlan, FaultPlanError, RetransmitPolicy

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "RetransmitPolicy",
]
