"""repro — a full reproduction of "Messages versus Messengers in
Distributed Programming" (Fukuda, Bic, Dillencourt, Cahill; ICDCS 1997).

Subpackages
-----------
``repro.des``
    Deterministic discrete-event simulation kernel.
``repro.netsim``
    The physical substrate: hosts (cache-aware CPU model) on a shared
    Ethernet, plus the :class:`~repro.netsim.costs.CostModel` every
    virtual-time charge comes from.
``repro.mp``
    The message-passing baseline: a PVM 3.3 workalike.
``repro.messengers``
    The paper's contribution: daemons, logical networks, navigational
    statements, the MCL script language (``repro.messengers.mcl``),
    non-preemptive scheduling, conservative GVT, the net_builder
    service, shell, and tracing.
``repro.gvt``
    Standalone conservative and Time-Warp virtual-time kernels.
``repro.apps``
    The evaluation applications (Mandelbrot, matrix multiplication) in
    sequential / message-passing / MESSENGERS form, plus the swarm
    extension.
``repro.bench``
    Sweep drivers and reporting for regenerating every paper artifact.
``repro.faults``
    Deterministic fault injection: timed/probabilistic fault plans
    (packet loss, duplication, corruption, partitions, host crashes and
    restarts), the reliable-delivery layer they force, and the recovery
    machinery's counters.
``repro.mailbox``
    Durable per-node mailboxes with an explicit delivery lifecycle
    (sent → delivered → seen → processed → read), broadcast with
    per-recipient dedup, poll-mode consumers, and exactly-once
    guarantees that hold under faults and host churn.
``repro.resilience``
    Detection-driven recovery: heartbeat/phi-accrual failure detectors,
    supervision restart policies, transport flow control, in-run
    invariant checkers, and a fault-schedule searcher that shrinks
    violations to minimal reproducers.
``repro.service``
    Open-system service workloads: deadline-carrying requests under
    Poisson/bursty/diurnal open-loop arrivals, served by per-request
    Messengers or PVM-style RPC, behind a graceful-degradation stack
    (admission control, retry budgets, circuit breakers, load
    shedding) with "no request lost silently" invariants.
``repro.obs``
    Cross-cutting observability: metrics, the virtual-time cost
    ledger, Chrome-trace/JSONL exporters.

The facade (this package's top level) is the quickest way in::

    import repro

    c = repro.cluster(4)
    c.inject('hello() { create(ALL); M_log("hi from", $address); }')
    c.run_to_quiescence()

See README.md for a tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-versus-measured results.
"""

from .des import Simulator
from .facade import (
    Cluster,
    ClusterConfig,
    Experiment,
    ExperimentResult,
    cluster,
)
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    RetransmitPolicy,
)
from .mailbox import (
    Mail,
    Mailbox,
    MailboxConfig,
    MailboxService,
    NoDoubleRead,
    NoLiveDaemonError,
    NoLostMail,
)
from .messengers import (
    DaemonNetwork,
    MessengersSystem,
    NativeRegistry,
    Shell,
    Tracer,
)
from .mp import MessagePassingSystem, PackBuffer, UnpackBuffer
from .netsim import (
    CacheModel,
    CostModel,
    DEFAULT_COSTS,
    Network,
    build_lan,
    sparc5_costs,
)
from .obs import (
    CATEGORIES,
    MetricsRegistry,
    cost_breakdown,
    dump_chrome_trace,
    format_breakdown,
    to_chrome_trace,
    to_jsonl,
)
from .replication import ReplicationConfig, ReplicationService
from .resilience import (
    InvariantViolation,
    ResiliencePolicy,
    ResilienceSuite,
    RestartPolicy,
    ScheduleSearcher,
    WorkLedger,
)
from .service import ServiceConfig, ServiceWorkload

__version__ = "1.5.0"

__all__ = [
    "CATEGORIES",
    "CacheModel",
    "Cluster",
    "ClusterConfig",
    "CostModel",
    "DEFAULT_COSTS",
    "DaemonNetwork",
    "Experiment",
    "ExperimentResult",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "InvariantViolation",
    "Mail",
    "Mailbox",
    "MailboxConfig",
    "MailboxService",
    "MessagePassingSystem",
    "MessengersSystem",
    "MetricsRegistry",
    "NativeRegistry",
    "Network",
    "NoDoubleRead",
    "NoLiveDaemonError",
    "NoLostMail",
    "PackBuffer",
    "ReplicationConfig",
    "ReplicationService",
    "ResiliencePolicy",
    "ResilienceSuite",
    "RestartPolicy",
    "RetransmitPolicy",
    "ScheduleSearcher",
    "ServiceConfig",
    "ServiceWorkload",
    "Shell",
    "Simulator",
    "Tracer",
    "UnpackBuffer",
    "WorkLedger",
    "__version__",
    "build_lan",
    "cluster",
    "cost_breakdown",
    "dump_chrome_trace",
    "format_breakdown",
    "sparc5_costs",
    "to_chrome_trace",
    "to_jsonl",
]
