"""repro — a full reproduction of "Messages versus Messengers in
Distributed Programming" (Fukuda, Bic, Dillencourt, Cahill; ICDCS 1997).

Subpackages
-----------
``repro.des``
    Deterministic discrete-event simulation kernel.
``repro.netsim``
    The physical substrate: hosts (cache-aware CPU model) on a shared
    Ethernet, plus the :class:`~repro.netsim.costs.CostModel` every
    virtual-time charge comes from.
``repro.mp``
    The message-passing baseline: a PVM 3.3 workalike.
``repro.messengers``
    The paper's contribution: daemons, logical networks, navigational
    statements, the MCL script language (``repro.messengers.mcl``),
    non-preemptive scheduling, conservative GVT, the net_builder
    service, shell, and tracing.
``repro.gvt``
    Standalone conservative and Time-Warp virtual-time kernels.
``repro.apps``
    The evaluation applications (Mandelbrot, matrix multiplication) in
    sequential / message-passing / MESSENGERS form, plus the swarm
    extension.
``repro.bench``
    Sweep drivers and reporting for regenerating every paper artifact.

See README.md for a tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-versus-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
