"""MESSENGERS — autonomous self-migrating computations (the paper's
primary contribution).

Layered exactly as §2.1 describes: the *physical network*
(:mod:`repro.netsim`) carries the *daemon network*
(:class:`DaemonNetwork`, :class:`Daemon`), on which applications build a
persistent *logical network* (:class:`LogicalNetwork`) navigated by
:class:`Messenger` objects executing MCL scripts
(:mod:`repro.messengers.mcl`), coordinated in virtual time
(:class:`ConservativeVirtualTime`).

Quick use::

    sim = Simulator()
    net = build_lan(sim, 4)
    system = MessengersSystem(net)
    system.inject('''
        hello() {
            create(ALL);
            M_log("hello from", $address);
        }
    ''')
    system.run_to_quiescence()
"""

from .daemon import Daemon, DaemonStats
from .daemon_graph import DaemonLink, DaemonNetwork
from .logical import (
    ANY,
    BACKWARD,
    EITHER,
    FORWARD,
    LogicalLink,
    LogicalNetwork,
    LogicalNode,
    UNNAMED,
    VIRTUAL,
)
from .messenger import Messenger
from .natives import NativeEnv, NativeRegistry, UnknownNativeError
from .netbuilder import (
    TopologyError,
    build_from_text,
    build_grid,
    build_ring,
    build_star,
    build_torus,
    grid_node_name,
)
from .shell import Shell, ShellError
from .trace import TraceEvent, Tracer, to_dot, to_networkx
from .system import MessengersSystem
from .vtime import ConservativeVirtualTime, VirtualTimeError

__all__ = [
    "ANY",
    "BACKWARD",
    "ConservativeVirtualTime",
    "Daemon",
    "DaemonLink",
    "DaemonNetwork",
    "DaemonStats",
    "EITHER",
    "FORWARD",
    "LogicalLink",
    "LogicalNetwork",
    "LogicalNode",
    "Messenger",
    "MessengersSystem",
    "NativeEnv",
    "NativeRegistry",
    "Shell",
    "ShellError",
    "TopologyError",
    "TraceEvent",
    "Tracer",
    "UNNAMED",
    "UnknownNativeError",
    "VIRTUAL",
    "VirtualTimeError",
    "build_from_text",
    "build_grid",
    "build_ring",
    "build_star",
    "build_torus",
    "grid_node_name",
    "to_dot",
    "to_networkx",
]
