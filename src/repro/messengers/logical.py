"""The logical network: persistent nodes and links Messengers navigate.

The logical network is the paper's "exogenous skeleton" (§1): an
application-specific graph of named or unnamed nodes connected by named
or unnamed, directed or undirected links, superimposed on the daemon
network.  It persists independently of any Messenger — nodes hold *node
variables* that outlive the computations that wrote them.

Naming conventions follow §2.1:

* node/link names are strings; ``UNNAMED`` (``~`` in MCL) creates an
  anonymous node/link;
* the wildcard ``ANY`` (``*`` in MCL) matches any name;
* link directions are ``+`` (forward), ``-`` (backward), ``*`` (either);
  an undirected link matches every direction.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = [
    "ANY",
    "UNNAMED",
    "VIRTUAL",
    "FORWARD",
    "BACKWARD",
    "EITHER",
    "LogicalNode",
    "LogicalLink",
    "LogicalNetwork",
]

#: Wildcard matching any node or link name (``*``).
ANY = "*"
#: Marker for an anonymous node or link (``~``).
UNNAMED = "~"
#: Pseudo link name requesting a direct jump to the named node.
VIRTUAL = "virtual"

FORWARD = "+"
BACKWARD = "-"
EITHER = "*"

_DIRECTIONS = (FORWARD, BACKWARD, EITHER)


class LogicalNode:
    """One place in the logical network.

    Node variables (shared by all Messengers at the node, §2.1) live in
    :attr:`variables`.  ``name`` may be ``None`` for unnamed nodes; the
    unique ``uid`` disambiguates.

    Scale note: the class uses ``__slots__``, and both containers are
    *lazy* — ``variables`` and ``links`` materialise on first touch.  An
    idle node (created, never written, never linked) is therefore one
    fixed-size object with five slots and no owned containers, which is
    what lets a logical network hold ~1M mostly-idle nodes
    (``benchmarks/test_scale_memory.py`` pins the per-node budget).
    """

    __slots__ = ("uid", "name", "daemon", "_variables", "_links")

    def __init__(self, uid: int, name: Optional[str], daemon: str):
        self.uid = uid
        self.name = name
        self.daemon = daemon
        self._variables: Optional[dict[str, Any]] = None
        self._links: Optional[list["LogicalLink"]] = None

    @property
    def variables(self) -> dict[str, Any]:
        """Node variables, materialised on first access."""
        variables = self._variables
        if variables is None:
            variables = self._variables = {}
        return variables

    @property
    def links(self) -> list["LogicalLink"]:
        """Incident links, materialised on first access."""
        links = self._links
        if links is None:
            links = self._links = []
        return links

    @property
    def display_name(self) -> str:
        return self.name if self.name is not None else f"~{self.uid}"

    def matches(self, pattern: str) -> bool:
        """Does this node match a destination-specification name?

        Unnamed nodes match their unique display name (``~<uid>``), so a
        Messenger can return to a specific anonymous node it has seen.
        """
        if pattern == ANY:
            return True
        return self.name == pattern or self.display_name == pattern

    def neighbors(self) -> list["LogicalNode"]:
        """All nodes one link away."""
        links = self._links
        if links is None:
            return []
        return [link.other(self) for link in links]

    def degree(self) -> int:
        links = self._links
        return 0 if links is None else len(links)

    def __repr__(self) -> str:
        return f"<LogicalNode {self.display_name} @ {self.daemon}>"


class LogicalLink:
    """A (possibly directed) link between two logical nodes.

    For directed links, ``src`` → ``dst`` is the forward (``+``)
    direction.  Undirected links have ``directed=False`` and match any
    requested direction.
    """

    __slots__ = ("uid", "name", "src", "dst", "directed")

    def __init__(
        self,
        uid: int,
        name: Optional[str],
        src: LogicalNode,
        dst: LogicalNode,
        directed: bool = False,
    ):
        self.uid = uid
        self.name = name
        self.src = src
        self.dst = dst
        self.directed = directed

    @property
    def display_name(self) -> str:
        return self.name if self.name is not None else f"~{self.uid}"

    def other(self, node: LogicalNode) -> LogicalNode:
        """The endpoint that is not ``node``."""
        if node is self.src:
            return self.dst
        if node is self.dst:
            return self.src
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def matches_name(self, pattern: str) -> bool:
        """Match by name; unnamed links match their ``~<uid>`` display
        name, which is what ``$last`` reports after traversing them."""
        if pattern == ANY:
            return True
        return self.name == pattern or self.display_name == pattern

    def matches_direction(self, from_node: LogicalNode, want: str) -> bool:
        """Would traversing from ``from_node`` satisfy direction ``want``?

        ``want`` is ``+`` / ``-`` / ``*`` as written in the hop statement.
        Traversing a directed link from its source is the forward
        direction; from its destination, backward.  Undirected links
        satisfy everything.
        """
        if want not in _DIRECTIONS:
            raise ValueError(f"bad link direction {want!r}")
        if want == EITHER or not self.directed:
            return True
        travelling_forward = from_node is self.src
        return travelling_forward == (want == FORWARD)

    def __repr__(self) -> str:
        arrow = "->" if self.directed else "--"
        return (
            f"<LogicalLink {self.display_name}: "
            f"{self.src.display_name}{arrow}{self.dst.display_name}>"
        )


class LogicalNetwork:
    """The full logical graph, with per-daemon views.

    In the real system each daemon stores only its local nodes; we keep
    one registry (the simulation runs in one address space) and model the
    *costs* of distribution at the daemon layer.  The registry offers the
    queries daemons need: name lookup scoped to a daemon, global lookup
    for virtual links, and creation/deletion with singleton cleanup.

    The registry is *sharded*: besides the global uid table it maintains
    a per-daemon shard and a per-name bucket, so :meth:`nodes_on`,
    :meth:`find_named` and virtual-hop resolution never scan the global
    table — at ~1M nodes those scans were the dominant cost of daemon
    injection and service-workload key lookup.  Every query still
    returns nodes in ascending-uid order (the order the old full scans
    produced, which fault-recovery and mailbox code rely on for
    determinism): shards are insertion-ordered by creation, and the rare
    :meth:`rehome` marks its destination shard for a lazy re-sort.
    """

    def __init__(self):
        self._uids = itertools.count(1)
        self._nodes: dict[int, LogicalNode] = {}
        #: daemon name -> {uid: node}, ascending uid unless in _unsorted.
        self._shards: dict[str, dict[int, LogicalNode]] = {}
        #: node name -> {uid: node}; always ascending uid (names are
        #: immutable, so only creation/deletion touch a bucket).
        self._names: dict[str, dict[int, LogicalNode]] = {}
        #: Shards whose uid order was broken by a rehome.
        self._unsorted: set[str] = set()

    # -- creation ----------------------------------------------------------

    def create_node(
        self, name: Optional[str], daemon: str
    ) -> LogicalNode:
        """Create a logical node on ``daemon``.  ``name=None`` = unnamed."""
        node = LogicalNode(next(self._uids), name, daemon)
        uid = node.uid
        self._nodes[uid] = node
        shard = self._shards.get(daemon)
        if shard is None:
            shard = self._shards[daemon] = {}
        shard[uid] = node
        if name is not None:
            bucket = self._names.get(name)
            if bucket is None:
                bucket = self._names[name] = {}
            bucket[uid] = node
        return node

    def rehome(self, node: LogicalNode, daemon: str) -> None:
        """Move ``node`` to ``daemon`` (crash recovery, host churn).

        The only supported way to change a node's residence — writing
        ``node.daemon`` directly would leave the shards stale.
        """
        if node.daemon == daemon:
            return
        shard = self._shards.get(node.daemon)
        if shard is not None:
            shard.pop(node.uid, None)
        node.daemon = daemon
        shard = self._shards.get(daemon)
        if shard is None:
            shard = self._shards[daemon] = {}
        shard[node.uid] = node
        # The moved uid lands at the shard's insertion end regardless of
        # magnitude; re-sort lazily on the next per-daemon read.
        self._unsorted.add(daemon)

    def _forget(self, node: LogicalNode) -> None:
        """Drop ``node`` from every index (global, shard, name bucket)."""
        uid = node.uid
        del self._nodes[uid]
        shard = self._shards.get(node.daemon)
        if shard is not None:
            shard.pop(uid, None)
        if node.name is not None:
            bucket = self._names.get(node.name)
            if bucket is not None:
                bucket.pop(uid, None)
                if not bucket:
                    del self._names[node.name]

    def create_link(
        self,
        name: Optional[str],
        src: LogicalNode,
        dst: LogicalNode,
        directed: bool = False,
    ) -> LogicalLink:
        """Create a link; forward direction is ``src`` → ``dst``."""
        link = LogicalLink(next(self._uids), name, src, dst, directed)
        src.links.append(link)
        dst.links.append(link)
        return link

    # -- deletion ------------------------------------------------------------

    def delete_link(self, link: LogicalLink) -> list[LogicalNode]:
        """Remove a link; singleton endpoints are deleted too (§2.1).

        Returns the nodes that were garbage-collected.
        """
        removed = []
        link.src.links.remove(link)
        link.dst.links.remove(link)
        for node in (link.src, link.dst):
            if not node.degree() and node.uid in self._nodes:
                # init nodes are permanent anchors; never collect them.
                if node.name != "init":
                    self._forget(node)
                    removed.append(node)
        return removed

    def delete_node(self, node: LogicalNode) -> None:
        """Remove a node and all of its links."""
        links = node._links
        for link in list(links) if links else ():
            if link in link.src.links:
                link.src.links.remove(link)
            if link in link.dst.links:
                link.dst.links.remove(link)
        if links:
            links.clear()
        if node.uid in self._nodes:
            self._forget(node)

    # -- queries --------------------------------------------------------------

    @property
    def nodes(self) -> list[LogicalNode]:
        return list(self._nodes.values())

    @property
    def links(self) -> list[LogicalLink]:
        seen: dict[int, LogicalLink] = {}
        for node in self._nodes.values():
            for link in node.links:
                seen[link.uid] = link
        return list(seen.values())

    def node_count(self) -> int:
        return len(self._nodes)

    def nodes_on(self, daemon: str) -> list[LogicalNode]:
        """All nodes resident on one daemon, in ascending-uid order.

        O(size of the daemon's shard) — never a global scan.
        """
        shard = self._shards.get(daemon)
        if not shard:
            return []
        if daemon in self._unsorted:
            # A rehome appended an out-of-order uid; restore the sorted
            # invariant once, then reads are cheap again.
            shard = dict(sorted(shard.items()))
            self._shards[daemon] = shard
            self._unsorted.discard(daemon)
        return list(shard.values())

    def find_named(
        self, name: str, daemon: Optional[str] = None
    ) -> list[LogicalNode]:
        """All nodes with ``name`` (optionally restricted to a daemon).

        O(nodes with that name) via the name bucket, ascending uid.
        """
        bucket = self._names.get(name)
        if not bucket:
            return []
        if daemon is None:
            return list(bucket.values())
        return [n for n in bucket.values() if n.daemon == daemon]

    def contains(self, node: LogicalNode) -> bool:
        return node.uid in self._nodes

    def _match_name(self, pattern: str) -> list[LogicalNode]:
        """All nodes whose :meth:`LogicalNode.matches` accepts ``pattern``
        (a concrete name, never ``ANY``), in ascending-uid order.

        Index-backed equivalent of scanning the global table: the name
        bucket covers named nodes; a ``~<uid>`` pattern additionally
        matches the unnamed node with that uid by display name.
        """
        bucket = self._names.get(pattern)
        matched = dict(bucket) if bucket else {}
        if pattern.startswith(UNNAMED):
            try:
                uid = int(pattern[1:])
            except ValueError:
                pass
            else:
                node = self._nodes.get(uid)
                if node is not None and node.name is None:
                    matched[uid] = node
        if len(matched) > 1:
            return [node for _uid, node in sorted(matched.items())]
        return list(matched.values())

    def resolve(
        self, pattern: str, daemon: Optional[str] = None
    ) -> list[LogicalNode]:
        """Nodes matching a destination ``pattern`` (name, ``~<uid>`` or
        ``ANY``), optionally restricted to one daemon — ascending uid.

        Index-backed replacement for filtering :meth:`nodes_on` through
        :meth:`LogicalNode.matches` (what daemon injection used to do).
        """
        if pattern == ANY:
            if daemon is None:
                return list(self._nodes.values())
            return self.nodes_on(daemon)
        matched = self._match_name(pattern)
        if daemon is None:
            return matched
        return [node for node in matched if node.daemon == daemon]

    def match_moves(
        self,
        current: LogicalNode,
        node_pattern: str = ANY,
        link_pattern: str = ANY,
        direction: str = EITHER,
    ) -> list[tuple[Optional[LogicalLink], LogicalNode]]:
        """Resolve a hop/delete destination specification (§2.1).

        Returns ``(link, node)`` pairs for every neighbor of ``current``
        reachable over a link matching ``link_pattern``/``direction``
        whose far node matches ``node_pattern``.  With
        ``link_pattern=VIRTUAL`` the result is a direct jump to every
        node in the whole network matching ``node_pattern`` by name
        (link is ``None``).
        """
        if link_pattern == VIRTUAL:
            if node_pattern == ANY:
                raise ValueError("virtual hop requires a concrete node name")
            return [
                (None, node)
                for node in self._match_name(node_pattern)
                if node is not current
            ]
        moves = []
        for link in current.links:
            if not link.matches_name(link_pattern):
                continue
            if not link.matches_direction(current, direction):
                continue
            far = link.other(current)
            if far.matches(node_pattern):
                moves.append((link, far))
        return moves

    def __repr__(self) -> str:
        return f"<LogicalNetwork nodes={len(self._nodes)}>"
