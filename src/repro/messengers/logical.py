"""The logical network: persistent nodes and links Messengers navigate.

The logical network is the paper's "exogenous skeleton" (§1): an
application-specific graph of named or unnamed nodes connected by named
or unnamed, directed or undirected links, superimposed on the daemon
network.  It persists independently of any Messenger — nodes hold *node
variables* that outlive the computations that wrote them.

Naming conventions follow §2.1:

* node/link names are strings; ``UNNAMED`` (``~`` in MCL) creates an
  anonymous node/link;
* the wildcard ``ANY`` (``*`` in MCL) matches any name;
* link directions are ``+`` (forward), ``-`` (backward), ``*`` (either);
  an undirected link matches every direction.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = [
    "ANY",
    "UNNAMED",
    "VIRTUAL",
    "FORWARD",
    "BACKWARD",
    "EITHER",
    "LogicalNode",
    "LogicalLink",
    "LogicalNetwork",
]

#: Wildcard matching any node or link name (``*``).
ANY = "*"
#: Marker for an anonymous node or link (``~``).
UNNAMED = "~"
#: Pseudo link name requesting a direct jump to the named node.
VIRTUAL = "virtual"

FORWARD = "+"
BACKWARD = "-"
EITHER = "*"

_DIRECTIONS = (FORWARD, BACKWARD, EITHER)


class LogicalNode:
    """One place in the logical network.

    Node variables (shared by all Messengers at the node, §2.1) live in
    :attr:`variables`.  ``name`` may be ``None`` for unnamed nodes; the
    unique ``uid`` disambiguates.
    """

    def __init__(self, uid: int, name: Optional[str], daemon: str):
        self.uid = uid
        self.name = name
        self.daemon = daemon
        self.variables: dict[str, Any] = {}
        self.links: list["LogicalLink"] = []

    @property
    def display_name(self) -> str:
        return self.name if self.name is not None else f"~{self.uid}"

    def matches(self, pattern: str) -> bool:
        """Does this node match a destination-specification name?

        Unnamed nodes match their unique display name (``~<uid>``), so a
        Messenger can return to a specific anonymous node it has seen.
        """
        if pattern == ANY:
            return True
        return self.name == pattern or self.display_name == pattern

    def neighbors(self) -> list["LogicalNode"]:
        """All nodes one link away."""
        return [link.other(self) for link in self.links]

    def degree(self) -> int:
        return len(self.links)

    def __repr__(self) -> str:
        return f"<LogicalNode {self.display_name} @ {self.daemon}>"


class LogicalLink:
    """A (possibly directed) link between two logical nodes.

    For directed links, ``src`` → ``dst`` is the forward (``+``)
    direction.  Undirected links have ``directed=False`` and match any
    requested direction.
    """

    def __init__(
        self,
        uid: int,
        name: Optional[str],
        src: LogicalNode,
        dst: LogicalNode,
        directed: bool = False,
    ):
        self.uid = uid
        self.name = name
        self.src = src
        self.dst = dst
        self.directed = directed

    @property
    def display_name(self) -> str:
        return self.name if self.name is not None else f"~{self.uid}"

    def other(self, node: LogicalNode) -> LogicalNode:
        """The endpoint that is not ``node``."""
        if node is self.src:
            return self.dst
        if node is self.dst:
            return self.src
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def matches_name(self, pattern: str) -> bool:
        """Match by name; unnamed links match their ``~<uid>`` display
        name, which is what ``$last`` reports after traversing them."""
        if pattern == ANY:
            return True
        return self.name == pattern or self.display_name == pattern

    def matches_direction(self, from_node: LogicalNode, want: str) -> bool:
        """Would traversing from ``from_node`` satisfy direction ``want``?

        ``want`` is ``+`` / ``-`` / ``*`` as written in the hop statement.
        Traversing a directed link from its source is the forward
        direction; from its destination, backward.  Undirected links
        satisfy everything.
        """
        if want not in _DIRECTIONS:
            raise ValueError(f"bad link direction {want!r}")
        if want == EITHER or not self.directed:
            return True
        travelling_forward = from_node is self.src
        return travelling_forward == (want == FORWARD)

    def __repr__(self) -> str:
        arrow = "->" if self.directed else "--"
        return (
            f"<LogicalLink {self.display_name}: "
            f"{self.src.display_name}{arrow}{self.dst.display_name}>"
        )


class LogicalNetwork:
    """The full logical graph, with per-daemon views.

    In the real system each daemon stores only its local nodes; we keep
    one registry (the simulation runs in one address space) and model the
    *costs* of distribution at the daemon layer.  The registry offers the
    queries daemons need: name lookup scoped to a daemon, global lookup
    for virtual links, and creation/deletion with singleton cleanup.
    """

    def __init__(self):
        self._uids = itertools.count(1)
        self._nodes: dict[int, LogicalNode] = {}

    # -- creation ----------------------------------------------------------

    def create_node(
        self, name: Optional[str], daemon: str
    ) -> LogicalNode:
        """Create a logical node on ``daemon``.  ``name=None`` = unnamed."""
        node = LogicalNode(next(self._uids), name, daemon)
        self._nodes[node.uid] = node
        return node

    def create_link(
        self,
        name: Optional[str],
        src: LogicalNode,
        dst: LogicalNode,
        directed: bool = False,
    ) -> LogicalLink:
        """Create a link; forward direction is ``src`` → ``dst``."""
        link = LogicalLink(next(self._uids), name, src, dst, directed)
        src.links.append(link)
        dst.links.append(link)
        return link

    # -- deletion ------------------------------------------------------------

    def delete_link(self, link: LogicalLink) -> list[LogicalNode]:
        """Remove a link; singleton endpoints are deleted too (§2.1).

        Returns the nodes that were garbage-collected.
        """
        removed = []
        link.src.links.remove(link)
        link.dst.links.remove(link)
        for node in (link.src, link.dst):
            if not node.links and node.uid in self._nodes:
                # init nodes are permanent anchors; never collect them.
                if node.name != "init":
                    del self._nodes[node.uid]
                    removed.append(node)
        return removed

    def delete_node(self, node: LogicalNode) -> None:
        """Remove a node and all of its links."""
        for link in list(node.links):
            if link in link.src.links:
                link.src.links.remove(link)
            if link in link.dst.links:
                link.dst.links.remove(link)
        node.links.clear()
        self._nodes.pop(node.uid, None)

    # -- queries --------------------------------------------------------------

    @property
    def nodes(self) -> list[LogicalNode]:
        return list(self._nodes.values())

    @property
    def links(self) -> list[LogicalLink]:
        seen: dict[int, LogicalLink] = {}
        for node in self._nodes.values():
            for link in node.links:
                seen[link.uid] = link
        return list(seen.values())

    def node_count(self) -> int:
        return len(self._nodes)

    def nodes_on(self, daemon: str) -> list[LogicalNode]:
        """All nodes resident on one daemon."""
        return [n for n in self._nodes.values() if n.daemon == daemon]

    def find_named(
        self, name: str, daemon: Optional[str] = None
    ) -> list[LogicalNode]:
        """All nodes with ``name`` (optionally restricted to a daemon)."""
        return [
            n
            for n in self._nodes.values()
            if n.name == name and (daemon is None or n.daemon == daemon)
        ]

    def contains(self, node: LogicalNode) -> bool:
        return node.uid in self._nodes

    def match_moves(
        self,
        current: LogicalNode,
        node_pattern: str = ANY,
        link_pattern: str = ANY,
        direction: str = EITHER,
    ) -> list[tuple[Optional[LogicalLink], LogicalNode]]:
        """Resolve a hop/delete destination specification (§2.1).

        Returns ``(link, node)`` pairs for every neighbor of ``current``
        reachable over a link matching ``link_pattern``/``direction``
        whose far node matches ``node_pattern``.  With
        ``link_pattern=VIRTUAL`` the result is a direct jump to every
        node in the whole network matching ``node_pattern`` by name
        (link is ``None``).
        """
        if link_pattern == VIRTUAL:
            if node_pattern == ANY:
                raise ValueError("virtual hop requires a concrete node name")
            return [
                (None, node)
                for node in self._nodes.values()
                if node.matches(node_pattern) and node is not current
            ]
        moves = []
        for link in current.links:
            if not link.matches_name(link_pattern):
                continue
            if not link.matches_direction(current, direction):
                continue
            far = link.other(current)
            if far.matches(node_pattern):
                moves.append((link, far))
        return moves

    def __repr__(self) -> str:
        return f"<LogicalNetwork nodes={len(self._nodes)}>"
