"""The MESSENGERS daemon: interpreter + dispatcher on one host.

"A daemon's task is to continuously receive Messengers arriving from
other daemons, interpret their behaviors … and send them on to their
next destinations as dictated by their behaviors" (§2.1).

Cost accounting at a glance (all constants in
:mod:`repro.netsim.costs`):

==========================  =================================================
interpretation              ``interp_instr_s`` × bytecode instructions
native-mode function        ``native_call_s`` + whatever the native charges
hop dispatch                ``hop_dispatch_s`` per arriving/relocated Messenger
remote hop                  messenger state bytes over the shared Ethernet
local hop                   ``msgr_state_local_per_byte_s`` × state bytes
node/link creation          ``logical_create_s`` each
==========================  =================================================

Crucially there is **no pack/unpack copy** on hops — messenger variables
migrate as-is (§2.1's zero-copy argument against message passing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..des import Store
from ..netsim import Host, HostCrashedError, Packet
from .logical import LogicalNode
from .mcl.bytecode import (
    CreateCommand,
    DeleteCommand,
    DoneCommand,
    HopCommand,
    SchedCommand,
)
from .mcl.closures import run as closures_run
from .mcl.vm import run as vm_run
from .messenger import Messenger
from .natives import NativeEnv

__all__ = ["Daemon", "DaemonStats"]


@dataclass
class DaemonStats:
    """Lifetime counters for one daemon."""

    executed_slices: int = 0
    instructions: int = 0
    native_calls: int = 0
    hops_out_local: int = 0
    hops_out_remote: int = 0
    arrivals: int = 0
    forwarded: int = 0  # arrivals re-routed away by a retired daemon
    messengers_finished: int = 0
    messengers_lost: int = 0  # hop matched no destination
    nodes_created: int = 0
    links_created: int = 0
    links_deleted: int = 0


class Daemon:
    """One daemon process pair (arrival pump + interpreter loop)."""

    port_name = "messengers"

    def __init__(self, system, host: Host):
        self.system = system
        self.host = host
        self.sim = system.sim
        #: VM entry point, resolved once from the simulator's backend
        #: knob; both backends share signature and Command contract.
        self._vm_run = (
            closures_run
            if getattr(self.sim, "mcl_backend", "interp") == "closures"
            else vm_run
        )
        self.ready: Store = Store(self.sim)
        self.stats = DaemonStats()
        #: Set by the system's crash listener while this daemon's host is
        #: down; cleared on restart.  A dead daemon neither receives nor
        #: dispatches Messengers.
        self.dead = False
        #: Set by :meth:`MessengersSystem.retire_daemon` (graceful host
        #: leave).  The host stays physically alive so late arrivals can
        #: still land here, but the daemon only *forwards* them to their
        #: nodes' new homes — it never executes anything again.
        self.retired = False
        #: The permanent ``init`` node anchored on this daemon (§2.1).
        self.init_node: Optional[LogicalNode] = None
        self.sim.process(self._arrival_pump(), daemon=True)
        self.sim.process(self._interpreter_loop(), daemon=True)

    @property
    def name(self) -> str:
        return self.host.name

    # -- queue interfaces ------------------------------------------------------

    def enqueue_ready(self, messenger: Messenger) -> None:
        """Make a Messenger runnable on this daemon (no cost charged)."""
        self.ready.put(messenger)

    # -- processes ----------------------------------------------------------------

    def _arrival_pump(self):
        """Receive Messengers (and create requests) from other daemons."""
        port = self.host.port(self.port_name)
        costs = self.system.costs
        recycle = self.system.network.recycle
        spent = None
        while True:
            packet = yield port.get()
            if spent is not None:
                # By the time a further arrival lands, the previous
                # packet's delivery bookkeeping (its done event) is
                # gone, so the object can go back to the free-list.
                recycle(spent)
            spent = packet
            kind, data = packet.payload
            metrics = self.sim.obs
            if self.retired:
                try:
                    yield from self._forward(packet, kind, data, costs)
                except HostCrashedError:
                    pass
                continue
            if kind == "messenger":
                messenger = data
                try:
                    yield self.sim.process(
                        self.host.busy(
                            costs.hop_dispatch_s,
                            category="dispatch",
                            label="hop.dispatch",
                        )
                    )
                except HostCrashedError:
                    # The crash landed while the dispatch was queued on
                    # the CPU: the work item dies with the host (crash
                    # recovery collects it as a victim); the pump parks
                    # again and resumes after a restart.
                    continue
                self.stats.arrivals += 1
                if metrics is not None:
                    metrics.count("messengers.arrivals")
                if not messenger.alive:
                    # Killed in transit by crash recovery and already
                    # re-dispatched elsewhere; drop the stale copy.
                    continue
                self.system.checkpoint_delivered(messenger)
                self.system.trace(messenger, "arrive", self.name)
                self.enqueue_ready(messenger)
            elif kind == "create":
                messenger, item, origin_node = data
                try:
                    yield self.sim.process(
                        self.host.busy(
                            costs.hop_dispatch_s,
                            category="dispatch",
                            label="hop.dispatch",
                        )
                    )
                except HostCrashedError:
                    continue
                self.stats.arrivals += 1
                if metrics is not None:
                    metrics.count("messengers.arrivals")
                if not messenger.alive:
                    continue
                self.system.checkpoint_delivered(messenger)
                self._create_local(messenger, item, origin_node)
                # creation cost itself
                try:
                    yield self.sim.process(
                        self.host.busy(
                            2 * costs.logical_create_s,
                            category="dispatch",
                            label="logical.create",
                        )
                    )
                except HostCrashedError:
                    continue
                self.enqueue_ready(messenger)
            else:  # pragma: no cover - internal protocol
                raise RuntimeError(f"bad daemon packet kind {kind!r}")

    def _forward(self, packet: Packet, kind, data, costs):
        """A retired daemon re-routes late arrivals instead of executing.

        A "messenger" packet chases its node's new home (retirement
        re-homed every resident node before the graph tombstone went
        in); a "create" request is re-aimed at the first live daemon in
        graph order — deterministic, and acceptable as a placement
        change under churn.  With no live daemon left the Messenger is
        recorded lost, exactly like a hop that matches nothing.
        """
        messenger = data if kind == "messenger" else data[0]
        if not messenger.alive:
            return
        if kind == "messenger":
            target = messenger.node.daemon
        else:
            target = next(
                (
                    name
                    for name in self.system.daemon_graph.daemons
                    if not self.system.daemons[name].dead
                    and not self.system.daemons[name].retired
                ),
                None,
            )
        if target is None or target == self.name:
            self.stats.messengers_lost += 1
            self.system.trace(
                messenger, "lost", self.name,
                "arrived at retired daemon with no live forward target",
            )
            self.system.messenger_done(messenger, lost=True)
            return
        yield self.sim.process(
            self.host.busy(
                costs.hop_dispatch_s,
                category="dispatch",
                label="hop.forward",
            )
        )
        self.stats.forwarded += 1
        if self.sim.obs is not None:
            self.sim.obs.count("messengers.forwarded")
        self.system.trace(messenger, "forward", self.name, f"-> {target}")
        self.system.network.enqueue(self.system.network.packet(
            src=self.name,
            dst=target,
            port=self.port_name,
            payload=packet.payload,
            size_bytes=packet.size_bytes,
        ))

    def _interpreter_loop(self):
        """Pop ready Messengers and run each to its next preemption point.

        This loop *is* the modified non-preemptive scheduler: a
        Messenger's computational statements and native calls execute as
        one uninterrupted burst; control returns to the daemon only at
        navigational statements, virtual-time suspensions, or
        termination (§2.1).
        """
        while True:
            messenger = yield self.ready.get()
            if not messenger.alive:
                continue
            try:
                yield from self._execute_slice(messenger)
            except HostCrashedError:
                # The host died under the slice: the Messenger is a
                # crash casualty (recovery kills and replays it from
                # its checkpoint), not a script error.
                continue
            except Exception as error:  # noqa: BLE001 - daemon must survive
                # The failed Messenger was already recorded as a casualty
                # by _execute_slice; the daemon itself keeps serving.
                # run_to_quiescence() re-raises recorded errors.
                self.system.script_errors.append(error)

    # -- execution ---------------------------------------------------------------------

    def _execute_slice(self, messenger: Messenger):
        costs = self.system.costs
        env = NativeEnv(self.system, self, messenger)
        native_calls = 0
        metrics = self.sim.obs
        opcounts = (
            {}
            if metrics is not None and metrics.opcode_counts
            else None
        )

        def call_native(name, args):
            nonlocal native_calls
            native_calls += 1
            function = self.system.natives.lookup(name)
            return function(env, *args)

        def netvar(name):
            return self.system.netvar(self, messenger, name)

        try:
            command = self._vm_run(
                messenger.frame,
                messenger.variables,
                messenger.node.variables,
                netvar,
                call_native,
                opcounts=opcounts,
            )
        except Exception:
            # Script or native-function failure: record the casualty and
            # unregister it so the rest of the system stays consistent,
            # then let the error surface (errors never pass silently).
            self.system.messenger_failed(messenger)
            raise

        self.stats.executed_slices += 1
        self.stats.instructions += command.instructions
        self.stats.native_calls += native_calls
        messenger.instructions_executed += command.instructions

        interp = (
            command.instructions * costs.interp_instr_s
            + native_calls * costs.native_call_s
        )
        charges = env.drain_charges()
        busy = interp + sum(charges.values())
        if busy > 0:
            # One uninterrupted burst (the non-preemptive policy); the
            # attribution is split below: script interpretation versus
            # whatever the natives charged (compute, copies, ...).
            yield self.sim.process(
                self.host.busy(busy, category=None, label="slice")
            )
        if not messenger.alive:
            # Killed mid-burst (crash recovery, or an external kill()):
            # the work was charged, but the resulting command must not
            # act for a dead Messenger.  Deactivation is idempotent, so
            # this composes with recovery having already accounted it.
            self.system.deactivate(messenger)
            return
        if metrics is not None:
            metrics.count("messengers.slices")
            metrics.count(
                "mcl.vm.instructions_total", command.instructions
            )
            if native_calls:
                metrics.count("messengers.native_calls", native_calls)
            metrics.charge("interpretation", interp)
            for category, seconds in charges.items():
                metrics.charge(category, seconds)
            if opcounts:
                metrics.counter_family(
                    "mcl.vm.instructions", "opcode"
                ).merge(opcounts)

        if isinstance(command, DoneCommand):
            self.stats.messengers_finished += 1
            self.system.trace(messenger, "done", self.name)
            self.system.messenger_done(messenger)
        elif isinstance(command, SchedCommand):
            suspended = self.system.vtime.suspend(
                self, messenger, command.kind, command.time
            )
            self.system.trace(
                messenger,
                "sched",
                self.name,
                f"{command.kind}({command.time:g})"
                + ("" if suspended else " immediate"),
            )
            if suspended:
                self.system.deactivate(messenger)
            else:
                self.enqueue_ready(messenger)
        elif isinstance(command, (HopCommand, DeleteCommand)):
            yield from self._do_hop(
                messenger, command, delete=isinstance(command, DeleteCommand)
            )
        elif isinstance(command, CreateCommand):
            yield from self._do_create(messenger, command)
        else:  # pragma: no cover - exhaustive over Command subclasses
            raise RuntimeError(f"unhandled command {command!r}")

    # -- navigation ---------------------------------------------------------------------

    def _do_hop(self, messenger: Messenger, command, delete: bool):
        """Replicate ``messenger`` to every matching destination (§2.1)."""
        costs = self.system.costs
        logical = self.system.logical
        moves = logical.match_moves(
            messenger.node, command.ln, command.ll, command.ldir
        )
        if delete:
            for link, _node in moves:
                if link is not None:
                    logical.delete_link(link)
                    self.stats.links_deleted += 1
            if moves:
                yield self.sim.process(
                    self.host.busy(
                        costs.logical_create_s * len(moves),
                        category="dispatch",
                        label="link.delete",
                    )
                )

        if not moves:
            # No destination matches: the Messenger ceases to exist.
            self.stats.messengers_lost += 1
            self.system.trace(
                messenger, "lost", self.name,
                f"hop(ln={command.ln}, ll={command.ll}) matched nothing",
            )
            self.system.messenger_done(messenger, lost=True)
            return

        replicas = [messenger]
        for _ in moves[1:]:
            replica = messenger.clone()
            self.system.register_replica(replica)
            replicas.append(replica)

        state = messenger.state_bytes()
        dispatch_cost = 0.0
        copy_cost = 0.0
        n_local = 0
        n_remote = 0
        for (link, node), replica in zip(moves, replicas):
            replica.place(node, link)
            if node.daemon == self.name:
                dispatch_cost += costs.hop_dispatch_s
                copy_cost += state * costs.msgr_state_local_per_byte_s
                self.stats.hops_out_local += 1
                n_local += 1
                self.system.trace(
                    replica, "hop", self.name, "local"
                )
                self.enqueue_ready(replica)
            else:
                self.stats.hops_out_remote += 1
                n_remote += 1
                self.system.trace(
                    replica, "hop", self.name,
                    f"-> {node.daemon} ({state}B)",
                )
                packet = self.system.network.packet(
                    src=self.name,
                    dst=node.daemon,
                    port=self.port_name,
                    payload=("messenger", replica),
                    size_bytes=state,
                )
                self.system.network.enqueue(packet)
                self.system.checkpoint_dispatch(
                    replica, holder=self.name, kind="hop"
                )
        local_cost = dispatch_cost + copy_cost
        if local_cost > 0:
            yield self.sim.process(
                self.host.busy(local_cost, category=None, label="hop.local")
            )
        metrics = self.sim.obs
        if metrics is not None:
            metrics.count("messengers.hops", n_local + n_remote)
            if n_local:
                metrics.count("messengers.hops_local", n_local)
            if n_remote:
                metrics.count("messengers.hops_remote", n_remote)
                metrics.count("messengers.state_bytes_moved",
                              state * n_remote)
            metrics.charge("dispatch", dispatch_cost)
            metrics.charge("copies", copy_cost)

    def _create_local(self, messenger: Messenger, item, origin_node):
        """Materialize one create item on *this* daemon's tables."""
        logical = self.system.logical
        node = logical.create_node(item.ln, self.name)
        directed = item.ldir in ("+", "-")
        if item.ldir == "-":
            link = logical.create_link(item.ll, node, origin_node, True)
        else:
            link = logical.create_link(
                item.ll, origin_node, node, directed
            )
        self.stats.nodes_created += 1
        self.stats.links_created += 1
        messenger.place(node, link)

    def _do_create(self, messenger: Messenger, command: CreateCommand):
        """Create new logical nodes/links, replicating the Messenger into
        each new node (§2.1: "the Messenger automatically moves to the
        new node")."""
        costs = self.system.costs
        origin = messenger.node
        placements = []  # (daemon_name, item)
        daemons = self.system.daemons
        for item in command.items:
            candidates = [
                c
                for c in self.system.daemon_graph.matches(
                    self.name, item.dn, item.dl, item.ddir
                )
                if not daemons[c].dead and not daemons[c].retired
            ]
            if not candidates:
                continue
            if command.all_daemons:
                placements.extend((daemon, item) for daemon in candidates)
            else:
                placements.append(
                    (self.system.choose_daemon(self.name, candidates), item)
                )

        if not placements:
            self.stats.messengers_lost += 1
            self.system.messenger_done(messenger, lost=True)
            return

        replicas = [messenger]
        for _ in placements[1:]:
            replica = messenger.clone()
            self.system.register_replica(replica)
            replicas.append(replica)

        state = messenger.state_bytes()
        dispatch_cost = 0.0
        copy_cost = 0.0
        for (daemon_name, item), replica in zip(placements, replicas):
            if daemon_name == self.name:
                self._create_local(replica, item, origin)
                self.system.trace(replica, "create", self.name, "local")
                dispatch_cost += 2 * costs.logical_create_s
                copy_cost += state * costs.msgr_state_local_per_byte_s
                self.enqueue_ready(replica)
            else:
                packet = self.system.network.packet(
                    src=self.name,
                    dst=daemon_name,
                    port=self.port_name,
                    payload=("create", (replica, item, origin)),
                    size_bytes=state + 64,  # state + create request header
                )
                self.system.network.enqueue(packet)
                self.system.checkpoint_dispatch(
                    replica,
                    holder=self.name,
                    kind="create",
                    item=item,
                    origin=origin,
                    dest=daemon_name,
                )
        local_cost = dispatch_cost + copy_cost
        if local_cost > 0:
            yield self.sim.process(
                self.host.busy(
                    local_cost, category=None, label="create.local"
                )
            )
        metrics = self.sim.obs
        if metrics is not None:
            metrics.charge("dispatch", dispatch_cost)
            metrics.charge("copies", copy_cost)

    def __repr__(self) -> str:
        return f"<Daemon {self.name} ready={len(self.ready)}>"
