"""The ``net_builder`` service: construct static logical networks.

"Any static logical network is constructed by describing its topology in
a file (either manually or using a graphics tool) and then starting a
specialized service Messenger called net_builder, which reads the
topology file and creates the corresponding logical network" (§3.2).

Two entry points:

* :func:`build_from_text` — parse the topology file format below;
* :func:`build_grid` and friends — regular topologies parameterized by
  size and connectivity ("the user only needs to specify the size and
  connectivity along each dimension", §3.2), including the exact
  matrix-multiplication network of Figure 10.

Topology file format (one declaration per line)::

    # comment
    node A @ host0            # logical node A on daemon host0
    link A -- B               # unnamed undirected link
    link A -- B : row         # named undirected link
    link A -> B : column      # named directed link (forward A→B)
"""

from __future__ import annotations

from typing import Optional

from .logical import LogicalNode
from .system import MessengersSystem

__all__ = [
    "TopologyError",
    "build_from_text",
    "build_grid",
    "build_ring",
    "build_star",
    "build_torus",
    "grid_node_name",
]


class TopologyError(ValueError):
    """Malformed topology description."""


def grid_node_name(i: int, j: int) -> str:
    """Canonical name of grid node ``[i, j]`` (paper's block address)."""
    return f"{i},{j}"


def build_from_text(
    system: MessengersSystem, text: str
) -> dict[str, LogicalNode]:
    """Create the logical network described by a topology file.

    Returns name → node for every declared node.  Each node's daemon
    must exist in the system; links may span daemons.
    """
    nodes: dict[str, LogicalNode] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if parts[0] == "node":
            _parse_node(system, nodes, parts, lineno)
        elif parts[0] == "link":
            _parse_link(system, nodes, parts, lineno)
        else:
            raise TopologyError(
                f"line {lineno}: unknown declaration {parts[0]!r}"
            )
    return nodes


def _parse_node(system, nodes, parts, lineno):
    # node <name> @ <daemon>
    if len(parts) != 4 or parts[2] != "@":
        raise TopologyError(
            f"line {lineno}: expected 'node <name> @ <daemon>'"
        )
    name, daemon = parts[1], parts[3]
    if name in nodes:
        raise TopologyError(f"line {lineno}: duplicate node {name!r}")
    if daemon not in system.daemons:
        raise TopologyError(f"line {lineno}: unknown daemon {daemon!r}")
    nodes[name] = system.logical.create_node(name, daemon)


def _parse_link(system, nodes, parts, lineno):
    # link <a> (--|->) <b> [: <name>]
    if len(parts) not in (4, 6) or (len(parts) == 6 and parts[4] != ":"):
        raise TopologyError(
            f"line {lineno}: expected 'link <a> --|-> <b> [: <name>]'"
        )
    a_name, arrow, b_name = parts[1], parts[2], parts[3]
    if arrow not in ("--", "->"):
        raise TopologyError(f"line {lineno}: bad arrow {arrow!r}")
    link_name = parts[5] if len(parts) == 6 else None
    try:
        a, b = nodes[a_name], nodes[b_name]
    except KeyError as missing:
        raise TopologyError(
            f"line {lineno}: undeclared node {missing.args[0]!r}"
        ) from None
    system.logical.create_link(link_name, a, b, directed=(arrow == "->"))


def build_grid(
    system: MessengersSystem,
    m: int,
    daemons: Optional[list] = None,
    row_link: str = "row",
    column_link: str = "column",
) -> dict[str, LogicalNode]:
    """Build the paper's matrix-multiplication network (Figure 10).

    An ``m × m`` grid of nodes named ``"i,j"``; each row is a fully
    connected subnet of undirected ``row`` links; each column is a ring
    of ``column`` links directed "upward" (from ``[i,j]`` toward
    ``[(i-1) mod m, j]``).  Node ``[i,j]`` is placed on
    ``daemons[i*m + j]`` (cycled if fewer daemons than nodes).
    """
    if m < 1:
        raise TopologyError(f"grid size must be >= 1, got {m}")
    daemon_names = daemons if daemons is not None else system.daemon_names
    if not daemon_names:
        raise TopologyError("no daemons to place grid nodes on")

    nodes: dict[str, LogicalNode] = {}
    for i in range(m):
        for j in range(m):
            daemon = daemon_names[(i * m + j) % len(daemon_names)]
            name = grid_node_name(i, j)
            nodes[name] = system.logical.create_node(name, daemon)

    # Rows: complete subnets of undirected links.
    for i in range(m):
        for j in range(m):
            for k in range(j + 1, m):
                system.logical.create_link(
                    row_link,
                    nodes[grid_node_name(i, j)],
                    nodes[grid_node_name(i, k)],
                )

    # Columns: rings directed upward ([i,j] -> [(i-1) mod m, j]).
    if m > 1:
        for j in range(m):
            for i in range(m):
                system.logical.create_link(
                    column_link,
                    nodes[grid_node_name(i, j)],
                    nodes[grid_node_name((i - 1) % m, j)],
                    directed=True,
                )
    return nodes


def build_ring(
    system: MessengersSystem,
    n: int,
    daemons: Optional[list] = None,
    link: str = "ring",
    directed: bool = True,
    name_prefix: str = "n",
) -> dict[str, LogicalNode]:
    """A ring of ``n`` nodes, one per daemon (cycled)."""
    if n < 1:
        raise TopologyError(f"ring size must be >= 1, got {n}")
    daemon_names = daemons if daemons is not None else system.daemon_names
    nodes = {}
    for index in range(n):
        name = f"{name_prefix}{index}"
        nodes[name] = system.logical.create_node(
            name, daemon_names[index % len(daemon_names)]
        )
    if n > 1:
        for index in range(n):
            system.logical.create_link(
                link,
                nodes[f"{name_prefix}{index}"],
                nodes[f"{name_prefix}{(index + 1) % n}"],
                directed=directed,
            )
    return nodes


def build_torus(
    system: MessengersSystem,
    rows: int,
    cols: int,
    daemons: Optional[list] = None,
    east_link: str = "east",
    south_link: str = "south",
) -> dict[str, LogicalNode]:
    """A toroidal grid for individual-based simulations (paper §1).

    Cell ``(r, c)`` is named ``"r,c"``.  Each cell has a directed
    ``east`` link to ``(r, (c+1) mod cols)`` and a directed ``south``
    link to ``((r+1) mod rows, c)``, so creatures move with::

        hop(ll = "east";  ldir = +)   /* east  */
        hop(ll = "east";  ldir = -)   /* west  */
        hop(ll = "south"; ldir = +)   /* south */
        hop(ll = "south"; ldir = -)   /* north */

    Cells are striped across daemons row-major (cycled).
    """
    if rows < 1 or cols < 1:
        raise TopologyError("torus needs positive dimensions")
    daemon_names = daemons if daemons is not None else system.daemon_names
    nodes: dict[str, LogicalNode] = {}
    for r in range(rows):
        for c in range(cols):
            daemon = daemon_names[(r * cols + c) % len(daemon_names)]
            name = grid_node_name(r, c)
            nodes[name] = system.logical.create_node(name, daemon)
    for r in range(rows):
        for c in range(cols):
            here = nodes[grid_node_name(r, c)]
            if cols > 1:
                system.logical.create_link(
                    east_link,
                    here,
                    nodes[grid_node_name(r, (c + 1) % cols)],
                    directed=True,
                )
            if rows > 1:
                system.logical.create_link(
                    south_link,
                    here,
                    nodes[grid_node_name((r + 1) % rows, c)],
                    directed=True,
                )
    return nodes


def build_star(
    system: MessengersSystem,
    center_daemon: Optional[str] = None,
    spoke_link: str = "spoke",
    center_name: str = "center",
) -> dict[str, LogicalNode]:
    """A hub node plus one worker node per *other* daemon.

    This is the manager/worker skeleton the ``create(ALL)`` statement of
    Figure 3 builds dynamically; having it as a static topology lets
    tests and examples construct it directly.
    """
    center_daemon = center_daemon or system.daemon_names[0]
    center = system.logical.create_node(center_name, center_daemon)
    nodes = {center_name: center}
    for name in system.daemon_names:
        if name == center_daemon:
            continue
        worker = system.logical.create_node(f"worker-{name}", name)
        system.logical.create_link(spoke_link, center, worker)
        nodes[f"worker-{name}"] = worker
    return nodes
