"""The daemon network: the middle layer of the three-level architecture.

"The lowest level is the physical network … Superimposed on the physical
layer is the daemon network, where each daemon is a UNIX process running
a Messengers language interpreter" (§2.1).  Daemon links, like logical
links, can be named and directed; ``create``'s ``(dn, dl, ddir)`` triple
selects placement daemons by matching against this graph.

On the paper's platform (one Ethernet LAN) the daemon network is the
complete graph, which :meth:`DaemonNetwork.complete` builds; rings and
grids are provided for experiments with other topologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

__all__ = ["DaemonLink", "DaemonNetwork"]


@dataclass(frozen=True)
class DaemonLink:
    """A (possibly directed, possibly named) daemon-level link."""

    src: str
    dst: str
    name: Optional[str] = None
    directed: bool = False


class DaemonNetwork:
    """Adjacency structure over daemon (host) names."""

    def __init__(self, daemons: Iterable[str]):
        self._daemons = list(dict.fromkeys(daemons))
        if not self._daemons:
            raise ValueError("daemon network needs at least one daemon")
        self._adjacency: dict[str, list[DaemonLink]] = {
            name: [] for name in self._daemons
        }

    # -- construction ------------------------------------------------------

    def add_link(
        self,
        src: str,
        dst: str,
        name: Optional[str] = None,
        directed: bool = False,
    ) -> DaemonLink:
        """Connect two daemons; forward direction is ``src`` → ``dst``."""
        for endpoint in (src, dst):
            if endpoint not in self._adjacency:
                raise KeyError(f"unknown daemon {endpoint!r}")
        link = DaemonLink(src, dst, name, directed)
        self._adjacency[src].append(link)
        self._adjacency[dst].append(link)
        return link

    @classmethod
    def complete(cls, daemons: Sequence[str]) -> "DaemonNetwork":
        """Complete graph — every daemon neighbors every other (a LAN)."""
        network = cls(daemons)
        names = network.daemons
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                network.add_link(a, b)
        return network

    @classmethod
    def ring(cls, daemons: Sequence[str], directed: bool = False):
        """A cycle over the daemons in the given order."""
        network = cls(daemons)
        names = network.daemons
        for index, name in enumerate(names):
            network.add_link(
                name, names[(index + 1) % len(names)], directed=directed
            )
        return network

    # -- churn -----------------------------------------------------------------

    def add_daemon(self, name: str) -> None:
        """Admit a new daemon with no links yet (host churn: join).

        Re-admitting a previously removed daemon revives its (empty)
        adjacency entry.  The caller wires links afterwards —
        :meth:`MessengersSystem.add_daemon` connects a joiner to every
        current daemon, the LAN rule.
        """
        if name in self._daemons:
            raise ValueError(f"daemon {name!r} already in the graph")
        self._daemons.append(name)
        self._adjacency.setdefault(name, [])

    def remove_daemon(self, name: str) -> None:
        """Retire ``name`` from the graph (host churn: leave).

        All of its links are severed and it stops being a placement
        candidate, but its adjacency entry survives as an empty
        tombstone: a Messenger still executing *on* the leaving daemon
        can resolve ``create`` matches (to an empty candidate set)
        without a KeyError while it migrates away.
        """
        if name not in self._adjacency:
            raise KeyError(f"unknown daemon {name!r}")
        self._daemons = [d for d in self._daemons if d != name]
        for links in self._adjacency.values():
            links[:] = [
                link for link in links
                if link.src != name and link.dst != name
            ]

    # -- queries --------------------------------------------------------------

    @property
    def daemons(self) -> list[str]:
        return list(self._daemons)

    def __len__(self) -> int:
        return len(self._daemons)

    def __contains__(self, name: str) -> bool:
        return name in self._adjacency

    def neighbors(self, name: str) -> list[str]:
        """All daemons one link away from ``name``."""
        seen = []
        for link in self._adjacency[name]:
            other = link.dst if link.src == name else link.src
            if other not in seen:
                seen.append(other)
        return seen

    def matches(
        self,
        from_daemon: str,
        dn: str = "*",
        dl: str = "*",
        ddir: str = "*",
    ) -> list[str]:
        """Resolve a create statement's daemon destination triple.

        Matching mirrors the logical-network rules: ``dn`` matches the
        far daemon's name (``*`` = any), ``dl`` the link name, ``ddir``
        the traversal direction.  As in the paper's example, matching is
        over *neighboring* daemons ("create … on all neighboring
        daemons").  A concrete ``dn`` that happens to be this daemon
        itself is also accepted, so Messengers can create purely local
        subnetworks.
        """
        if from_daemon not in self._adjacency:
            raise KeyError(f"unknown daemon {from_daemon!r}")
        results = []
        for link in self._adjacency[from_daemon]:
            other = link.dst if link.src == from_daemon else link.src
            if dn != "*" and other != dn:
                continue
            if dl != "*" and link.name != dl:
                continue
            if ddir != "*" and link.directed:
                forward = link.src == from_daemon
                if forward != (ddir == "+"):
                    continue
            if other not in results:
                results.append(other)
        if dn == from_daemon and dn not in results:
            results.append(dn)
        return results

    def __repr__(self) -> str:
        return f"<DaemonNetwork {len(self._daemons)} daemons>"
