"""Global Virtual Time for MESSENGERS (§2.2) — conservative engine.

Messengers suspend themselves with ``M_sched_time_abs(t)`` /
``M_sched_time_dlt(dt)``.  The conservative engine guarantees that a
suspended Messenger wakes only when the *global* virtual time has
reached its wake-up time, i.e. when no Messenger anywhere could still
act at an earlier virtual time.

In the simulation, the moment "nothing can act at an earlier virtual
time" is precise: the system is *quiescent* — no Messenger is ready,
executing, or in transit; every live Messenger is suspended on the
virtual-time queue.  At that point the engine runs one synchronization
round (charged ``gvt_round_s`` per daemon plus wire latency — the
"continuous periodic exchange of timing information" the paper calls a
significant overhead), advances GVT to the minimum pending wake-up
time, and releases exactly the Messengers scheduled at that time.

The *optimistic* (Time-Warp) alternative the paper mentions is
implemented as a standalone kernel in :mod:`repro.gvt.optimistic`; see
DESIGN.md for the split.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

__all__ = ["ConservativeVirtualTime", "VirtualTimeError"]


class VirtualTimeError(RuntimeError):
    """Misuse of the virtual-time facility."""


class ConservativeVirtualTime:
    """The conservative GVT engine wired into the daemons."""

    def __init__(self, system):
        self._system = system
        self.gvt = 0.0
        self._pending: list = []  # heap of (wake_vt, seq, messenger, daemon)
        self._seq = itertools.count()
        #: Number of synchronization rounds performed.
        self.rounds = 0
        self._round_running = False

    # -- API used by daemons --------------------------------------------------

    def suspend(self, daemon, messenger, kind: str, time: float) -> bool:
        """Suspend ``messenger`` until virtual time per the SCHED command.

        Returns ``True`` if the Messenger was actually suspended, or
        ``False`` if its wake-up time is not in the virtual future (the
        daemon should keep it running; its ``vt`` is already advanced).
        """
        if kind == "abs":
            wake = float(time)
        elif kind == "dlt":
            wake = messenger.vt + float(time)
        else:
            raise VirtualTimeError(f"bad sched kind {kind!r}")

        if wake <= messenger.vt and wake <= self.gvt:
            # Scheduling into the virtual past/present: no suspension.
            messenger.vt = max(messenger.vt, wake)
            return False

        messenger.suspended = True
        heapq.heappush(
            self._pending, (wake, next(self._seq), messenger, daemon)
        )
        return True

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def next_wake_time(self) -> Optional[float]:
        return self._pending[0][0] if self._pending else None

    # -- quiescence hook ---------------------------------------------------------

    def on_quiescent(self) -> None:
        """Called by the system whenever its active count reaches zero."""
        if self._pending and not self._round_running:
            self._round_running = True
            self._system.sim.process(self._round())

    def _round_delay(self) -> float:
        # Crashed and retired daemons are excluded from the cut: the
        # survivors only exchange timing information among themselves.
        costs = self._system.costs
        n = sum(
            1
            for d in self._system.daemons.values()
            if not d.dead and not d.retired
        )
        return costs.gvt_round_s * max(n, 1) + 2 * costs.wire_latency_s

    def _round(self):
        """One GVT synchronization round (a simulation process)."""
        sim = self._system.sim
        start = sim.now
        yield sim.timeout(self._round_delay())
        self._round_running = False
        metrics = sim.obs
        if metrics is not None:
            # The timing-information exchange happened whether or not
            # GVT advances — that is the paper's "significant overhead".
            metrics.span("gvt", "round", "gvt", start, sim.now)
        if self._system.active_count > 0:
            # Someone was injected while the round was in flight; the
            # computation is no longer quiescent, so do not advance.
            return
        # Entries for Messengers that died (crash victims, script
        # failures) must not define the wake time — drop them first so
        # the head of the heap is always a real wakeup.
        while self._pending and not self._pending[0][2].alive:
            heapq.heappop(self._pending)
        if not self._pending:
            return
        self.rounds += 1
        wake_time = self._pending[0][0]
        if wake_time < self.gvt:
            raise VirtualTimeError(
                f"GVT would move backwards: {self.gvt} -> {wake_time}"
            )
        self.gvt = wake_time
        wakeups = 0
        while self._pending and self._pending[0][0] == wake_time:
            _wake, _seq, messenger, daemon = heapq.heappop(self._pending)
            if not messenger.alive:
                continue
            if (daemon.dead or daemon.retired) and messenger.node is not None:
                # The suspending daemon died (or left) and the
                # Messenger's node was re-homed: wake it where the node
                # lives now.
                daemon = self._system.daemons[messenger.node.daemon]
            messenger.vt = wake_time
            messenger.suspended = False
            self._system.activate(messenger)
            daemon.enqueue_ready(messenger)
            wakeups += 1
        if metrics is not None:
            metrics.count("gvt.rounds")
            metrics.count("gvt.wakeups", wakeups)
            metrics.gauge("gvt.value").set(self.gvt)

    def __repr__(self) -> str:
        return (
            f"<ConservativeVirtualTime gvt={self.gvt} "
            f"pending={len(self._pending)} rounds={self.rounds}>"
        )
