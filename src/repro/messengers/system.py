"""The MESSENGERS system facade.

One :class:`MessengersSystem` spans the simulated cluster: it owns the
daemons (one per host), the logical network, the native-function
registry, the global-virtual-time engine, and the injection interface
("arbitrary new Messengers may also be injected by the user from the
outside (the command shell) at runtime", §1).
"""

from __future__ import annotations

import itertools
from sys import getrefcount as _getrefcount
from typing import Any, Optional, Sequence, Union

from ..des import SimulationError, Simulator
from ..netsim import CostModel, Network, Packet
from ..obs import InstantEvent
from .daemon import Daemon
from .daemon_graph import DaemonNetwork
from .logical import LogicalNetwork
from .mcl.bytecode import Program
from .mcl.compiler import LruCache, compile_source
from .messenger import Messenger
from .natives import NativeRegistry
from .vtime import ConservativeVirtualTime

__all__ = ["MessengersSystem"]


class _Checkpoint:
    """Snapshot of a Messenger as dispatched over the wire.

    Taken at hop boundaries (only when the attached fault plan can crash
    hosts): ``clone`` is a full replica of the migrating state, ``holder``
    the daemon that sent it.  ``prev`` optionally keeps the *previous*
    dispatch snapshot until delivery of this one is confirmed, so a
    Messenger lost together with its sender's transmit queue can still be
    replayed from one hop earlier.  The chain never grows beyond two.
    """

    __slots__ = ("clone", "holder", "kind", "node", "item", "origin",
                 "dest", "prev", "in_flight")

    def __init__(self, clone, holder, kind, node, item, origin, dest):
        self.clone = clone
        self.holder = holder
        self.kind = kind  # "hop" | "create"
        self.node = node  # hop: destination LogicalNode (already placed)
        self.item = item  # create: the CreateItem to materialize
        self.origin = origin  # create: the originating LogicalNode
        self.dest = dest  # create: destination daemon name
        self.prev = None
        #: True from dispatch until delivery: the holder still owns the
        #: retransmit responsibility, so a crash of the holder while
        #: this is set strands the Messenger unless recovery replays it.
        self.in_flight = True


class MessengersSystem:
    """Daemons + logical network + virtual time over a simulated LAN."""

    def __init__(
        self,
        network: Network,
        daemon_graph: Optional[DaemonNetwork] = None,
        natives: Optional[NativeRegistry] = None,
    ):
        self.network = network
        self.sim: Simulator = network.sim
        self.costs: CostModel = network.costs
        self.logical = LogicalNetwork()
        self.natives = natives or NativeRegistry()
        self.daemon_graph = daemon_graph or DaemonNetwork.complete(
            network.host_names
        )
        for name in self.daemon_graph.daemons:
            if name not in network.host_names:
                raise KeyError(
                    f"daemon graph references unknown host {name!r}"
                )

        self.daemons: dict[str, Daemon] = {}
        for host in network.hosts:
            daemon = Daemon(self, host)
            # "At system startup, a single logical node, named init, is
            # created on every daemon node" (§2.1).
            daemon.init_node = self.logical.create_node("init", host.name)
            self.daemons[host.name] = daemon

        self.vtime = ConservativeVirtualTime(self)
        #: Number of Messengers currently able to make progress
        #: (ready, executing, or in transit).  Zero = quiescent.
        self.active_count = 0
        #: All Messengers ever admitted, by id.
        self.messengers: dict[int, Messenger] = {}
        #: Messengers that finished (or were lost) with their fates.
        self.finished: list[tuple[Messenger, str]] = []
        #: Keep finished Messengers in :attr:`messengers` /
        #: :attr:`finished` for forensics (the default).  Scale
        #: workloads with millions of short-lived Messengers set this
        #: False: a finished Messenger is dropped from the tables and
        #: its object parked on a free-list for the next injection, so
        #: memory stays proportional to the *live* population.
        self.retain_finished = True
        self._messenger_pool: list[Messenger] = []
        self.log_lines: list[str] = []
        #: Script/native errors caught by daemons (the daemons survive;
        #: :meth:`run_to_quiescence` re-raises the first one).
        self.script_errors: list[Exception] = []
        #: Optional :class:`~repro.messengers.trace.Tracer`.
        self.tracer = None
        #: Optional :class:`~repro.mailbox.MailboxService` — set by the
        #: service itself so churn events reach the durable mail layer.
        self.mailboxes = None
        self._placement_rotation: dict[str, itertools.cycle] = {}
        self._program_cache = LruCache(capacity=256)
        #: Hop-boundary checkpoints by messenger id (crash recovery).
        self._checkpoints: dict[int, _Checkpoint] = {}
        #: Crash victims awaiting the failure announcement, per host.
        self._crash_victims: dict[str, dict[int, Messenger]] = {}
        # Daemon traffic opts into at-least-once + dedup delivery (free
        # until a lossy fault plan is attached), and the system repairs
        # the logical network + re-dispatches lost Messengers once a
        # crash is *known* (immediately in oracle mode, at detection
        # time when a failure detector is attached).
        network.set_reliable(Daemon.port_name)
        network.add_crash_listener(self._on_host_crash)
        network.add_failure_listener(self._on_host_failure)
        network.add_restart_listener(self._on_host_restart)

    def trace(self, messenger, kind: str, daemon: str, detail: str = ""):
        """Record a trace event if anyone is listening (hot path).

        One :class:`~repro.obs.InstantEvent` is built and fanned out to
        both consumers: the attached :class:`~repro.messengers.trace.Tracer`
        (which renders it as a ``TraceEvent``) and the simulator's
        metrics registry (which exports it to Chrome traces / JSONL).
        """
        tracer = self.tracer
        metrics = self.sim.obs
        if tracer is None and metrics is None:
            return
        event = InstantEvent(
            track=daemon,
            name=kind,
            t=self.sim.now,
            args={
                "messenger": messenger.id,
                "program": messenger.program.name,
                "vt": messenger.vt,
                "node": (
                    messenger.node.display_name if messenger.node else "-"
                ),
                "detail": detail,
            },
        )
        if tracer is not None:
            tracer.consume(event)
        if metrics is not None:
            metrics.record_instant(event)

    # -- compilation -------------------------------------------------------

    def compile(
        self, source: str, function: Optional[str] = None
    ) -> Program:
        """Compile (and cache) an MCL source function.

        The per-system cache is a bounded LRU; its cumulative hit/miss
        counters are exported through the obs registry as the
        ``mcl_cache_hits`` / ``mcl_cache_misses`` gauges.  Gauges are
        pure observability — they never feed back into the simulation,
        so instrumented and plain runs stay bit-identical.
        """
        cache = self._program_cache
        key = (source, function)
        program = cache.get(key)
        if program is None:
            program = compile_source(source, function)
            cache.put(key, program)
        metrics = self.sim.obs
        if metrics is not None:
            metrics.gauge("mcl_cache_hits").set(cache.hits)
            metrics.gauge("mcl_cache_misses").set(cache.misses)
        return program

    # -- injection -----------------------------------------------------------

    def inject(
        self,
        script: Union[str, Program],
        args: Sequence[Any] = (),
        daemon: Optional[str] = None,
        node: str = "init",
        function: Optional[str] = None,
        vt: float = 0.0,
    ) -> Messenger:
        """Inject a new Messenger at a daemon's node (default ``init``).

        ``script`` is MCL source text or a pre-compiled
        :class:`Program`; ``args`` bind to the script's parameters in
        order and become messenger variables.
        """
        program = (
            script
            if isinstance(script, Program)
            else self.compile(script, function)
        )
        if len(args) != len(program.params):
            raise TypeError(
                f"{program.name} expects {len(program.params)} arguments "
                f"({', '.join(program.params)}); got {len(args)}"
            )
        daemon_name = daemon if daemon is not None else self.daemon_names[0]
        try:
            target_daemon = self.daemons[daemon_name]
        except KeyError:
            raise KeyError(f"unknown daemon {daemon_name!r}") from None
        if target_daemon.retired:
            raise ValueError(
                f"daemon {daemon_name!r} has left the cluster"
            )

        candidates = self.logical.resolve(node, daemon_name)
        if not candidates:
            raise KeyError(
                f"no node matching {node!r} on daemon {daemon_name!r}"
            )
        start_node = candidates[0]

        messenger = self._obtain_messenger(
            program, dict(zip(program.params, args)), vt
        )
        messenger.node = start_node
        self.messengers[messenger.id] = messenger
        self.activate(messenger)
        target_daemon.enqueue_ready(messenger)
        return messenger

    @property
    def daemon_names(self) -> list[str]:
        return list(self.daemons)

    def daemon(self, name: str) -> Daemon:
        return self.daemons[name]

    # -- execution driving ----------------------------------------------------------

    def run(self, until: Any = None) -> Any:
        """Drive the simulation (delegates to the simulator)."""
        return self.sim.run(until=until)

    def run_to_quiescence(self) -> float:
        """Run until no Messenger can make progress; returns sim.now.

        This drains the whole event queue: all ready Messengers, all
        in-flight hops, and every pending virtual-time wake-up.  If any
        Messenger crashed along the way (script error, native raising),
        the daemons kept running but the first recorded error is
        re-raised here — errors never pass silently.
        """
        self.sim.run()
        if self.script_errors:
            errors, self.script_errors = self.script_errors, []
            raise errors[0]
        if self.active_count > 0:
            stranded = [
                m.id
                for m in self.messengers.values()
                if m.alive and not m.suspended
            ]
            raise SimulationError(
                f"event queue drained with {self.active_count} Messengers "
                f"still accounted active (stranded ids: {stranded}) — "
                "a host crash without a crash-capable FaultPlan attached "
                "loses in-flight Messengers irrecoverably"
            )
        return self.sim.now

    # -- bookkeeping used by daemons -----------------------------------------------------

    def activate(self, messenger: Optional[Messenger] = None) -> None:
        """Count a Messenger as able to make progress.

        With a ``messenger`` the transition is tracked per Messenger and
        is idempotent — crash recovery and the daemons may race to
        account for the same victim.
        """
        if messenger is not None:
            if messenger.active:
                return
            messenger.active = True
        self.active_count += 1

    def deactivate(self, messenger: Optional[Messenger] = None) -> None:
        if messenger is not None:
            if not messenger.active:
                return
            messenger.active = False
        if self.active_count <= 0:
            raise RuntimeError("active count underflow")
        self.active_count -= 1
        if self.active_count == 0:
            self.vtime.on_quiescent()

    def _obtain_messenger(
        self, program: Program, variables: dict, vt: float
    ) -> Messenger:
        """A fresh Messenger, reincarnated from the free-list if possible.

        A pooled object is reused only when its refcount proves the pool
        holds the sole reference — a daemon or test still holding a
        finished Messenger keeps it alive, and that object is simply
        dropped from the pool instead of being reused under them.
        """
        pool = self._messenger_pool
        while pool:
            messenger = pool.pop()
            if _getrefcount(messenger) == 2:  # this frame + the argument
                messenger.reinit(program, variables, vt)
                return messenger
        return Messenger(program, variables, vt=vt)

    def register_replica(self, replica: Messenger) -> None:
        """Admit a clone produced by hop replication / create(ALL)."""
        self.messengers[replica.id] = replica
        self.activate(replica)

    def messenger_done(self, messenger: Messenger, lost: bool = False):
        """A Messenger terminated (script finished or no hop match)."""
        messenger.kill()
        self._checkpoints.pop(messenger.id, None)
        if self.retain_finished:
            self.finished.append((messenger, "lost" if lost else "done"))
        else:
            self.messengers.pop(messenger.id, None)
            if len(self._messenger_pool) < 4096:
                self._messenger_pool.append(messenger)
        metrics = self.sim.obs
        if metrics is not None:
            metrics.count(
                "messengers.lost" if lost else "messengers.finished"
            )
        self.deactivate(messenger)

    def messenger_failed(self, messenger: Messenger) -> None:
        """A Messenger crashed with a script error (kept for forensics)."""
        messenger.kill()
        self._checkpoints.pop(messenger.id, None)
        self.finished.append((messenger, "failed"))
        metrics = self.sim.obs
        if metrics is not None:
            metrics.count("messengers.failed")
        self.deactivate(messenger)

    # -- crash recovery -------------------------------------------------------

    @property
    def _checkpointing(self) -> bool:
        """Hop-boundary checkpoints are armed only when the attached
        fault plan can actually crash a host — fault-free runs (and
        loss-only plans) pay nothing."""
        faults = self.network.faults
        return faults is not None and faults.can_crash

    def checkpoint_dispatch(
        self,
        messenger: Messenger,
        holder: str,
        kind: str = "hop",
        item=None,
        origin=None,
        dest: Optional[str] = None,
    ) -> None:
        """Snapshot ``messenger`` as it leaves ``holder`` over the wire.

        Called by daemons right after a remote dispatch.  The previous
        snapshot (if any) is retained as ``prev`` until this dispatch is
        confirmed delivered, so a crash of the *sender* — losing the
        transmit queue — can still replay from one hop earlier.
        """
        if not self._checkpointing:
            return
        checkpoint = _Checkpoint(
            messenger.clone(), holder, kind, messenger.node, item, origin,
            dest,
        )
        previous = self._checkpoints.get(messenger.id)
        if previous is not None:
            previous.prev = None  # cap the chain at two snapshots
            checkpoint.prev = previous
        self._checkpoints[messenger.id] = checkpoint
        self.network.faults.count("checkpoints")

    def checkpoint_delivered(self, messenger: Messenger) -> None:
        """The dispatch covered by the newest snapshot arrived: the
        previous snapshot can no longer be needed."""
        checkpoint = self._checkpoints.get(messenger.id)
        if checkpoint is not None:
            checkpoint.prev = None
            checkpoint.in_flight = False

    def _collect_victims(
        self, name: str, lost_packets, victims: dict
    ) -> None:
        """Gather crash casualties of daemon ``name`` into ``victims``.

        Victims are (a) alive Messengers whose current logical node lives
        on the dead daemon (resident, ready, executing, suspended, or
        already placed in flight toward it), (b) Messengers riding in the
        dead host's lost transmit/receive queues, (c) in-flight create
        requests addressed to the dead daemon, and (d) undelivered
        dispatches *held* by the dead daemon — the sender owned the
        retransmit responsibility (e.g. the packet was dropped by the
        loss fault and was awaiting retransmission from the dead host's
        transport), so nobody else will ever re-send them.
        """
        for messenger in self.messengers.values():
            if (
                messenger.alive
                and messenger.node is not None
                and messenger.node.daemon == name
            ):
                victims[messenger.id] = messenger
        for packet in lost_packets:
            if packet.port != Daemon.port_name:
                continue
            kind, data = packet.payload
            messenger = data if kind == "messenger" else data[0]
            if messenger.alive:
                victims[messenger.id] = messenger
        for mid, checkpoint in self._checkpoints.items():
            messenger = self.messengers.get(mid)
            if messenger is None or not messenger.alive:
                continue
            if (
                messenger.node is None
                and checkpoint.kind == "create"
                and checkpoint.dest == name
            ):
                victims[messenger.id] = messenger
            elif checkpoint.in_flight and checkpoint.holder == name:
                victims[messenger.id] = messenger

    def _kill_victims(self, name: str, victims: dict, faults) -> None:
        for messenger in victims.values():
            messenger.kill()
            messenger.suspended = False
            self.finished.append((messenger, "crashed"))
            self.trace(messenger, "crashed", name)
            if faults is not None:
                faults.count("messengers_crashed")
            self.deactivate(messenger)

    def _on_host_crash(self, host, lost_packets) -> None:
        """Physical phase of a crash: victims die, nothing else happens.

        A dead CPU executes nothing, so everything resident on (or in
        flight into) the dead daemon dies *now* — but recovery is
        knowledge, and nobody has it yet: repair and re-dispatch wait
        for :meth:`_on_host_failure` (which follows immediately in
        oracle mode and at detection time when a failure detector
        drives the announcement).
        """
        name = host.name
        daemon = self.daemons.get(name)
        if daemon is None:
            return
        daemon.dead = True
        faults = self.network.faults
        victims: dict[int, Messenger] = {}
        self._collect_victims(name, lost_packets, victims)
        self._kill_victims(name, victims, faults)
        self._crash_victims[name] = victims

    def _on_host_failure(self, host) -> None:
        """Knowledge phase of a crash: repair the net, replay victims.

        Between the crash and its announcement more Messengers may have
        hopped toward the dead daemon (their packets died at the NIC of
        a sender that did not know better), so casualties are collected
        a second time here.  Then the dead daemon's logical nodes are
        re-homed round-robin onto the survivors, and every victim with a
        checkpoint held by a live daemon is replayed from its last hop
        boundary.
        """
        name = host.name
        daemon = self.daemons.get(name)
        if daemon is None:
            return
        faults = self.network.faults
        victims = self._crash_victims.pop(name, {})
        late: dict[int, Messenger] = {}
        self._collect_victims(name, (), late)
        for mid in victims:
            late.pop(mid, None)
        self._kill_victims(name, late, faults)
        victims.update(late)

        # Logical-network repair: re-home the dead daemon's nodes onto
        # the survivors so existing links keep routing (§2.1's logical
        # network stays intact while the physical node is gone).
        alive = [
            d
            for d in self.daemon_names
            if not self.daemons[d].dead and not self.daemons[d].retired
        ]
        if alive:
            dead_nodes = self.logical.nodes_on(name)
            for index, node in enumerate(dead_nodes):
                self.logical.rehome(node, alive[index % len(alive)])
            if faults is not None and dead_nodes:
                faults.count("nodes_rehomed", len(dead_nodes))

        for messenger in victims.values():
            self._redispatch(messenger, faults)

    def _redispatch(self, messenger: Messenger, faults) -> None:
        """Replay a crash victim from its newest usable checkpoint."""
        checkpoint = self._checkpoints.pop(messenger.id, None)
        while checkpoint is not None:
            holder = self.daemons.get(checkpoint.holder)
            if holder is not None and not holder.dead:
                break
            checkpoint = checkpoint.prev
        if checkpoint is None:
            if faults is not None:
                faults.count("messengers_unrecoverable")
            return

        clone = checkpoint.clone
        if checkpoint.kind == "hop":
            node = checkpoint.node
            dest = node.daemon  # post-repair owner
            if self.daemons[dest].dead:
                if faults is not None:
                    faults.count("messengers_unrecoverable")
                return
            clone.node = node
            self.register_replica(clone)
            self.checkpoint_dispatch(clone, checkpoint.holder, kind="hop")
            if faults is not None:
                faults.count("messengers_redispatched")
            self.trace(clone, "redispatch", checkpoint.holder, f"-> {dest}")
            if dest == checkpoint.holder:
                self.daemons[dest].enqueue_ready(clone)
            else:
                self.network.enqueue(Packet(
                    src=checkpoint.holder,
                    dst=dest,
                    port=Daemon.port_name,
                    payload=("messenger", clone),
                    size_bytes=clone.state_bytes(),
                ))
        else:  # create request: re-route to any matching live daemon
            item, origin = checkpoint.item, checkpoint.origin
            candidates = [
                c
                for c in self.daemon_graph.matches(
                    checkpoint.holder, item.dn, item.dl, item.ddir
                )
                if not self.daemons[c].dead and not self.daemons[c].retired
            ]
            if not candidates:
                if faults is not None:
                    faults.count("messengers_unrecoverable")
                return
            dest = self.choose_daemon(checkpoint.holder, candidates)
            self.register_replica(clone)
            self.checkpoint_dispatch(
                clone, checkpoint.holder, kind="create",
                item=item, origin=origin, dest=dest,
            )
            if faults is not None:
                faults.count("messengers_redispatched")
            self.trace(clone, "redispatch", checkpoint.holder, f"-> {dest}")
            if dest == checkpoint.holder:
                self.daemons[dest]._create_local(clone, item, origin)
                self.daemons[dest].enqueue_ready(clone)
            else:
                self.network.enqueue(Packet(
                    src=checkpoint.holder,
                    dst=dest,
                    port=Daemon.port_name,
                    payload=("create", (clone, item, origin)),
                    size_bytes=clone.state_bytes() + 64,
                ))

    def _on_host_restart(self, host) -> None:
        """A crashed host came back: revive its daemon.

        Its logical nodes were re-homed at crash time and stay where
        they are; the daemon gets a fresh ``init`` anchor so new
        injections and creates can land on it again.
        """
        daemon = self.daemons.get(host.name)
        if daemon is None or not daemon.dead:
            return
        daemon.dead = False
        if (
            daemon.init_node is None
            or daemon.init_node.daemon != host.name
        ):
            daemon.init_node = self.logical.create_node("init", host.name)
        faults = self.network.faults
        if faults is not None:
            faults.count("daemon_restarts")

    # -- host churn (graceful join / leave) ------------------------------------

    def add_daemon(self, host) -> Daemon:
        """Admit ``host`` as a new daemon mid-run (churn: join).

        The host must already be attached to the network
        (:meth:`~repro.netsim.Network.add_host`).  Following the LAN
        rule the joiner is linked to every current daemon, gets its own
        ``init`` anchor, and immediately becomes a placement candidate.
        Re-admitting a previously retired daemon revives it in place.
        """
        name = host.name
        daemon = self.daemons.get(name)
        if daemon is not None and not daemon.retired:
            raise ValueError(f"daemon {name!r} is already running")
        peers = [
            d for d in self.daemon_graph.daemons
            if not self.daemons[d].retired
        ]
        self.daemon_graph.add_daemon(name)
        for other in peers:
            self.daemon_graph.add_link(name, other)
        if daemon is None:
            daemon = Daemon(self, host)
            self.daemons[name] = daemon
        else:
            daemon.retired = False
        if daemon.init_node is None or daemon.init_node.daemon != name:
            daemon.init_node = self.logical.create_node("init", name)
        self._placement_rotation.clear()
        faults = self.network.faults
        if faults is not None:
            faults.count("daemons_joined")
        if self.mailboxes is not None:
            self.mailboxes.on_daemon_joined(name)
        return daemon

    def retire_daemon(self, name: str) -> None:
        """Gracefully remove daemon ``name`` mid-run (churn: leave).

        Unlike a crash nothing is lost: the leaving daemon's logical
        nodes are re-homed round-robin onto the survivors, its ready
        Messengers migrate with their nodes, and the daemon itself
        stays behind as a forwarder — late arrivals (packets already in
        flight toward it) are re-routed to their nodes' new homes by
        the retired arrival pump.  Mid-slice Messengers finish their
        burst and hop out normally; a ``create`` issued from the
        retired daemon matches nothing (its graph entry is a tombstone)
        and is recorded lost, like any unmatched navigation.
        """
        daemon = self.daemons.get(name)
        if daemon is None:
            raise KeyError(f"unknown daemon {name!r}")
        if daemon.dead:
            raise ValueError(f"daemon {name!r} is crashed, not retirable")
        if daemon.retired:
            return
        survivors = [
            d
            for d in self.daemon_names
            if d != name
            and not self.daemons[d].dead
            and not self.daemons[d].retired
        ]
        if not survivors:
            raise ValueError(
                f"cannot retire {name!r}: no live daemon would remain"
            )
        faults = self.network.faults

        # Re-home every resident node, then carry its ready Messengers
        # over — after this no *new* traffic targets the leaver, and the
        # retired pump forwards whatever was already on the wire.
        moved_nodes = self.logical.nodes_on(name)
        for index, node in enumerate(moved_nodes):
            self.logical.rehome(node, survivors[index % len(survivors)])
        daemon.retired = True
        self.daemon_graph.remove_daemon(name)
        self._placement_rotation.clear()
        migrated = 0
        for messenger in daemon.ready.clear():
            if not messenger.alive:
                continue
            target = (
                messenger.node.daemon
                if messenger.node is not None
                else survivors[0]
            )
            self.trace(messenger, "migrate", name, f"-> {target}")
            self.daemons[target].enqueue_ready(messenger)
            migrated += 1
        if faults is not None:
            faults.count("daemons_retired")
            if moved_nodes:
                faults.count("nodes_rehomed", len(moved_nodes))
            if migrated:
                faults.count("messengers_migrated", migrated)
        if self.mailboxes is not None:
            self.mailboxes.on_daemon_retired(name)

    def choose_daemon(self, from_daemon: str, candidates: list) -> str:
        """Placement rule for non-ALL create: rotate over candidates.

        The paper defers its placement rules to [FBDM98]; deterministic
        rotation reproduces the load-spreading behaviour.
        """
        if len(candidates) == 1:
            return candidates[0]
        if from_daemon not in self._placement_rotation:
            neighbors = sorted(self.daemon_graph.neighbors(from_daemon))
            self._placement_rotation[from_daemon] = (
                itertools.cycle(neighbors) if neighbors else None
            )
        rotation = self._placement_rotation[from_daemon]
        if rotation is not None:
            for _ in range(len(self.daemon_graph)):
                choice = next(rotation)
                if choice in candidates:
                    return choice
        return candidates[0]

    # -- network variables ------------------------------------------------------------------

    def netvar(self, daemon: Daemon, messenger: Messenger, name: str):
        """Resolve a ``$``-prefixed network variable (§2.1)."""
        if name == "address":
            return daemon.name
        if name == "last":
            return messenger.last_link if messenger.last_link else "*"
        if name == "node":
            return messenger.node.display_name
        if name == "time":
            return messenger.vt
        if name == "gvt":
            return self.vtime.gvt
        if name == "degree":
            return messenger.node.degree()
        raise KeyError(f"unknown network variable ${name}")

    # -- diagnostics -----------------------------------------------------------------------------

    def log(self, line: str) -> None:
        self.log_lines.append(line)

    @property
    def alive_messengers(self) -> list[Messenger]:
        return [m for m in self.messengers.values() if m.alive]

    def total_instructions(self) -> int:
        return sum(d.stats.instructions for d in self.daemons.values())

    def total_hops(self) -> tuple[int, int]:
        """(local, remote) hop counts over all daemons."""
        local = sum(d.stats.hops_out_local for d in self.daemons.values())
        remote = sum(d.stats.hops_out_remote for d in self.daemons.values())
        return local, remote

    def __repr__(self) -> str:
        return (
            f"<MessengersSystem daemons={len(self.daemons)} "
            f"active={self.active_count} "
            f"nodes={self.logical.node_count()}>"
        )
