"""The MESSENGERS system facade.

One :class:`MessengersSystem` spans the simulated cluster: it owns the
daemons (one per host), the logical network, the native-function
registry, the global-virtual-time engine, and the injection interface
("arbitrary new Messengers may also be injected by the user from the
outside (the command shell) at runtime", §1).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Sequence, Union

from ..des import Simulator
from ..netsim import CostModel, Network
from ..obs import InstantEvent
from .daemon import Daemon
from .daemon_graph import DaemonNetwork
from .logical import LogicalNetwork, LogicalNode
from .mcl.bytecode import Program
from .mcl.compiler import compile_source
from .messenger import Messenger
from .natives import NativeRegistry
from .vtime import ConservativeVirtualTime

__all__ = ["MessengersSystem"]


class MessengersSystem:
    """Daemons + logical network + virtual time over a simulated LAN."""

    def __init__(
        self,
        network: Network,
        daemon_graph: Optional[DaemonNetwork] = None,
        natives: Optional[NativeRegistry] = None,
    ):
        self.network = network
        self.sim: Simulator = network.sim
        self.costs: CostModel = network.costs
        self.logical = LogicalNetwork()
        self.natives = natives or NativeRegistry()
        self.daemon_graph = daemon_graph or DaemonNetwork.complete(
            network.host_names
        )
        for name in self.daemon_graph.daemons:
            if name not in network.host_names:
                raise KeyError(
                    f"daemon graph references unknown host {name!r}"
                )

        self.daemons: dict[str, Daemon] = {}
        for host in network.hosts:
            daemon = Daemon(self, host)
            # "At system startup, a single logical node, named init, is
            # created on every daemon node" (§2.1).
            daemon.init_node = self.logical.create_node("init", host.name)
            self.daemons[host.name] = daemon

        self.vtime = ConservativeVirtualTime(self)
        #: Number of Messengers currently able to make progress
        #: (ready, executing, or in transit).  Zero = quiescent.
        self.active_count = 0
        #: All Messengers ever admitted, by id.
        self.messengers: dict[int, Messenger] = {}
        #: Messengers that finished (or were lost) with their fates.
        self.finished: list[tuple[Messenger, str]] = []
        self.log_lines: list[str] = []
        #: Script/native errors caught by daemons (the daemons survive;
        #: :meth:`run_to_quiescence` re-raises the first one).
        self.script_errors: list[Exception] = []
        #: Optional :class:`~repro.messengers.trace.Tracer`.
        self.tracer = None
        self._placement_rotation: dict[str, itertools.cycle] = {}
        self._program_cache: dict[tuple, Program] = {}

    def trace(self, messenger, kind: str, daemon: str, detail: str = ""):
        """Record a trace event if anyone is listening (hot path).

        One :class:`~repro.obs.InstantEvent` is built and fanned out to
        both consumers: the attached :class:`~repro.messengers.trace.Tracer`
        (which renders it as a ``TraceEvent``) and the simulator's
        metrics registry (which exports it to Chrome traces / JSONL).
        """
        tracer = self.tracer
        metrics = self.sim.metrics
        if tracer is None and metrics is None:
            return
        event = InstantEvent(
            track=daemon,
            name=kind,
            t=self.sim.now,
            args={
                "messenger": messenger.id,
                "program": messenger.program.name,
                "vt": messenger.vt,
                "node": (
                    messenger.node.display_name if messenger.node else "-"
                ),
                "detail": detail,
            },
        )
        if tracer is not None:
            tracer.consume(event)
        if metrics is not None:
            metrics.record_instant(event)

    # -- compilation -------------------------------------------------------

    def compile(
        self, source: str, function: Optional[str] = None
    ) -> Program:
        """Compile (and cache) an MCL source function."""
        key = (source, function)
        if key not in self._program_cache:
            self._program_cache[key] = compile_source(source, function)
        return self._program_cache[key]

    # -- injection -----------------------------------------------------------

    def inject(
        self,
        script: Union[str, Program],
        args: Sequence[Any] = (),
        daemon: Optional[str] = None,
        node: str = "init",
        function: Optional[str] = None,
        vt: float = 0.0,
    ) -> Messenger:
        """Inject a new Messenger at a daemon's node (default ``init``).

        ``script`` is MCL source text or a pre-compiled
        :class:`Program`; ``args`` bind to the script's parameters in
        order and become messenger variables.
        """
        program = (
            script
            if isinstance(script, Program)
            else self.compile(script, function)
        )
        if len(args) != len(program.params):
            raise TypeError(
                f"{program.name} expects {len(program.params)} arguments "
                f"({', '.join(program.params)}); got {len(args)}"
            )
        daemon_name = daemon if daemon is not None else self.daemon_names[0]
        try:
            target_daemon = self.daemons[daemon_name]
        except KeyError:
            raise KeyError(f"unknown daemon {daemon_name!r}") from None

        candidates = [
            n
            for n in self.logical.nodes_on(daemon_name)
            if n.matches(node)
        ]
        if not candidates:
            raise KeyError(
                f"no node matching {node!r} on daemon {daemon_name!r}"
            )
        start_node = candidates[0]

        messenger = Messenger(
            program, dict(zip(program.params, args)), vt=vt
        )
        messenger.node = start_node
        self.messengers[messenger.id] = messenger
        self.activate()
        target_daemon.enqueue_ready(messenger)
        return messenger

    @property
    def daemon_names(self) -> list[str]:
        return list(self.daemons)

    def daemon(self, name: str) -> Daemon:
        return self.daemons[name]

    # -- execution driving ----------------------------------------------------------

    def run(self, until: Any = None) -> Any:
        """Drive the simulation (delegates to the simulator)."""
        return self.sim.run(until=until)

    def run_to_quiescence(self) -> float:
        """Run until no Messenger can make progress; returns sim.now.

        This drains the whole event queue: all ready Messengers, all
        in-flight hops, and every pending virtual-time wake-up.  If any
        Messenger crashed along the way (script error, native raising),
        the daemons kept running but the first recorded error is
        re-raised here — errors never pass silently.
        """
        self.sim.run()
        if self.script_errors:
            errors, self.script_errors = self.script_errors, []
            raise errors[0]
        return self.sim.now

    # -- bookkeeping used by daemons -----------------------------------------------------

    def activate(self) -> None:
        self.active_count += 1

    def deactivate(self) -> None:
        if self.active_count <= 0:
            raise RuntimeError("active count underflow")
        self.active_count -= 1
        if self.active_count == 0:
            self.vtime.on_quiescent()

    def register_replica(self, replica: Messenger) -> None:
        """Admit a clone produced by hop replication / create(ALL)."""
        self.messengers[replica.id] = replica
        self.activate()

    def messenger_done(self, messenger: Messenger, lost: bool = False):
        """A Messenger terminated (script finished or no hop match)."""
        messenger.kill()
        self.finished.append((messenger, "lost" if lost else "done"))
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.count(
                "messengers.lost" if lost else "messengers.finished"
            )
        self.deactivate()

    def messenger_failed(self, messenger: Messenger) -> None:
        """A Messenger crashed with a script error (kept for forensics)."""
        messenger.kill()
        self.finished.append((messenger, "failed"))
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.count("messengers.failed")
        self.deactivate()

    def choose_daemon(self, from_daemon: str, candidates: list) -> str:
        """Placement rule for non-ALL create: rotate over candidates.

        The paper defers its placement rules to [FBDM98]; deterministic
        rotation reproduces the load-spreading behaviour.
        """
        if len(candidates) == 1:
            return candidates[0]
        if from_daemon not in self._placement_rotation:
            neighbors = sorted(self.daemon_graph.neighbors(from_daemon))
            self._placement_rotation[from_daemon] = (
                itertools.cycle(neighbors) if neighbors else None
            )
        rotation = self._placement_rotation[from_daemon]
        if rotation is not None:
            for _ in range(len(self.daemon_graph)):
                choice = next(rotation)
                if choice in candidates:
                    return choice
        return candidates[0]

    # -- network variables ------------------------------------------------------------------

    def netvar(self, daemon: Daemon, messenger: Messenger, name: str):
        """Resolve a ``$``-prefixed network variable (§2.1)."""
        if name == "address":
            return daemon.name
        if name == "last":
            return messenger.last_link if messenger.last_link else "*"
        if name == "node":
            return messenger.node.display_name
        if name == "time":
            return messenger.vt
        if name == "gvt":
            return self.vtime.gvt
        if name == "degree":
            return messenger.node.degree()
        raise KeyError(f"unknown network variable ${name}")

    # -- diagnostics -----------------------------------------------------------------------------

    def log(self, line: str) -> None:
        self.log_lines.append(line)

    @property
    def alive_messengers(self) -> list[Messenger]:
        return [m for m in self.messengers.values() if m.alive]

    def total_instructions(self) -> int:
        return sum(d.stats.instructions for d in self.daemons.values())

    def total_hops(self) -> tuple[int, int]:
        """(local, remote) hop counts over all daemons."""
        local = sum(d.stats.hops_out_local for d in self.daemons.values())
        remote = sum(d.stats.hops_out_remote for d in self.daemons.values())
        return local, remote

    def __repr__(self) -> str:
        return (
            f"<MessengersSystem daemons={len(self.daemons)} "
            f"active={self.active_count} "
            f"nodes={self.logical.node_count()}>"
        )
