"""AST → bytecode compiler for MCL.

A straightforward single-pass compiler with backpatching for control
flow.  The two virtual-time library functions of §2.2
(``M_sched_time_abs`` / ``M_sched_time_dlt``) compile to the dedicated
``SCHED`` instruction because they must suspend the interpreter, unlike
ordinary native calls which execute atomically.

Two fast-path services live here as well:

* **program cache** — :func:`compile_source`/:func:`compile_all` are
  memoised on the SHA-256 of the source text (plus function name), so
  repeated experiment replications over the same scripts parse and
  compile exactly once per process and share one VM dispatch table.
  The cache is a bounded :class:`LruCache` whose hit/miss counters are
  exported as the ``mcl_cache_hits``/``mcl_cache_misses`` gauges (see
  :meth:`~repro.messengers.system.MessengersSystem.compile`);
* **constant folding** — constant subexpressions (``2 * 3 + 1``,
  ``-5``, ``!0``) are evaluated at compile time with the VM's own
  operator semantics and emitted as a single ``CONST``.  Expressions
  whose folding would raise (e.g. ``1 / 0``) are emitted unfolded so
  the error still happens at run time, exactly as before.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Optional

from . import ast
from .bytecode import (
    CreateItemTemplate,
    CreateTemplate,
    EXPR,
    Instr,
    NavTemplate,
    Program,
    UNNAMED_KIND,
    WILD,
)
from .parser import parse
from .vm import MclRuntimeError, _binop, _truthy

__all__ = [
    "CompileError",
    "LruCache",
    "cache_stats",
    "compile_function",
    "compile_source",
]

_SCHED_NAMES = {
    "M_sched_time_abs": "abs",
    "M_sched_time_dlt": "dlt",
}


class CompileError(SyntaxError):
    """Semantically invalid MCL (e.g. ``break`` outside a loop)."""


#: Sentinel for "not a compile-time constant" during folding.
_NOT_CONST = object()


class LruCache:
    """Bounded LRU mapping with hit/miss counters.

    Backs the compiled-program caches (module-level here, per-system in
    :class:`~repro.messengers.system.MessengersSystem`).  The counters
    feed the ``mcl_cache_hits`` / ``mcl_cache_misses`` obs gauges; the
    bound keeps long generative sweeps (e.g. the Hypothesis differential
    test compiling thousands of distinct programs) from growing the
    cache without limit.
    """

    __slots__ = ("capacity", "hits", "misses", "_data")

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()

    def get(self, key: Any) -> Any:
        """The cached value (refreshed to most-recent), or None."""
        data = self._data
        try:
            value = data[key]
        except KeyError:
            self.misses += 1
            return None
        data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        data = self._data
        data[key] = value
        data.move_to_end(key)
        if len(data) > self.capacity:
            data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "capacity": self.capacity,
        }


#: Compiled-program cache keyed by (sha256(source), function name).
#: Programs are immutable once compiled, so sharing them across callers
#: (and whole experiment sweeps) is safe.
_program_cache = LruCache(capacity=256)


def cache_stats() -> dict:
    """Hit/miss/size counters of the module-level program cache."""
    return _program_cache.stats()


def _source_key(source: str, name: Optional[str]) -> tuple:
    return (hashlib.sha256(source.encode()).hexdigest(), name)


def compile_source(
    source: str, name: Optional[str] = None
) -> Program:
    """Parse and compile one function from MCL source text (memoised)."""
    key = _source_key(source, name)
    program = _program_cache.get(key)
    if program is None:
        function = parse(source).function(name)
        program = compile_function(function, source=source)
        _program_cache.put(key, program)
    return program


def compile_all(source: str) -> dict:
    """Compile every function in a script; returns name → Program
    (memoised like :func:`compile_source`)."""
    key = _source_key(source, "*all*")
    programs = _program_cache.get(key)
    if programs is None:
        script = parse(source)
        programs = {
            name: compile_function(fn, source=source)
            for name, fn in script.functions.items()
        }
        _program_cache.put(key, programs)
    return programs


def compile_function(
    function: ast.Function, source: Optional[str] = None
) -> Program:
    """Compile a parsed function to a :class:`Program`."""
    compiler = _Compiler(frozenset(function.node_vars))
    compiler.block(function.body)
    compiler.emit("RET")
    return Program(
        function.name,
        function.params,
        frozenset(function.node_vars),
        compiler.instructions,
        source=source,
    )


class _Compiler:
    def __init__(self, node_vars: frozenset):
        self.node_vars = node_vars
        self.instructions: list[Instr] = []
        # Stack of (break-patch-list, continue-target) for nested loops.
        self._loops: list[tuple[list, list]] = []

    # -- emission helpers ---------------------------------------------------

    def emit(self, op: str, arg=None) -> int:
        self.instructions.append(Instr(op, arg))
        return len(self.instructions) - 1

    @property
    def here(self) -> int:
        return len(self.instructions)

    def patch(self, index: int, target: int) -> None:
        self.instructions[index].arg = target

    # -- statements ------------------------------------------------------------

    def block(self, block: ast.Block) -> None:
        for statement in block.statements:
            self.statement(statement)

    def statement(self, node) -> None:
        method = getattr(self, f"_stmt_{type(node).__name__.lower()}", None)
        if method is None:
            raise CompileError(f"cannot compile statement {node!r}")
        method(node)

    def _stmt_block(self, node: ast.Block) -> None:
        self.block(node)

    def _stmt_assign(self, node: ast.Assign) -> None:
        if node.is_netvar:
            raise CompileError(
                f"network variable ${node.target} is read-only"
            )
        if node.op == "=":
            self.expression(node.expr)
        else:
            self.emit("LOAD", node.target)
            self.expression(node.expr)
            self.emit("BINOP", node.op[0])  # '+=' -> '+'
        self.emit("STORE", node.target)

    def _stmt_indexassign(self, node: ast.IndexAssign) -> None:
        # name[index] op= expr  -->  container, index, value, STORE_INDEX
        self.emit("LOAD", node.target)
        self.expression(node.index)
        if node.op == "=":
            self.expression(node.expr)
        else:
            # augmented: re-evaluate container[index] (index evaluated
            # twice; see ast.IndexAssign docstring)
            self.emit("LOAD", node.target)
            self.expression(node.index)
            self.emit("BINOP", "[]")
            self.expression(node.expr)
            self.emit("BINOP", node.op[0])
        self.emit("STORE_INDEX")

    def _stmt_exprstmt(self, node: ast.ExprStmt) -> None:
        self.expression(node.expr)
        self.emit("POP")

    def _stmt_if(self, node: ast.If) -> None:
        self.expression(node.condition)
        jump_false = self.emit("JF")
        self.block(node.then_body)
        if node.else_body is not None:
            jump_end = self.emit("JMP")
            self.patch(jump_false, self.here)
            self.block(node.else_body)
            self.patch(jump_end, self.here)
        else:
            self.patch(jump_false, self.here)

    def _stmt_while(self, node: ast.While) -> None:
        top = self.here
        self.expression(node.condition)
        jump_out = self.emit("JF")
        breaks: list[int] = []
        continues: list[int] = []
        self._loops.append((breaks, continues))
        self.block(node.body)
        self._loops.pop()
        for index in continues:
            self.patch(index, top)
        self.emit("JMP", top)
        self.patch(jump_out, self.here)
        for index in breaks:
            self.patch(index, self.here)

    def _stmt_for(self, node: ast.For) -> None:
        if node.init is not None:
            self.statement(node.init)
        top = self.here
        jump_out = None
        if node.condition is not None:
            self.expression(node.condition)
            jump_out = self.emit("JF")
        breaks: list[int] = []
        continues: list[int] = []
        self._loops.append((breaks, continues))
        self.block(node.body)
        self._loops.pop()
        step_at = self.here
        for index in continues:
            self.patch(index, step_at)
        if node.step is not None:
            self.statement(node.step)
        self.emit("JMP", top)
        if jump_out is not None:
            self.patch(jump_out, self.here)
        for index in breaks:
            self.patch(index, self.here)

    def _stmt_break(self, node: ast.Break) -> None:
        if not self._loops:
            raise CompileError("break outside a loop")
        self._loops[-1][0].append(self.emit("JMP"))

    def _stmt_continue(self, node: ast.Continue) -> None:
        if not self._loops:
            raise CompileError("continue outside a loop")
        self._loops[-1][1].append(self.emit("JMP"))

    def _stmt_return(self, node: ast.Return) -> None:
        if node.expr is not None:
            self.expression(node.expr)
            self.emit("RET", "value")
        else:
            self.emit("RET")

    # -- navigation -----------------------------------------------------------------

    def _nav_field_kind(self, value) -> str:
        """Emit value code if needed; return the template kind."""
        if value is ast.WILDCARD:
            return WILD
        if value is ast.UNNAMED:
            return UNNAMED_KIND
        self.expression(value)
        return EXPR

    def _stmt_hop(self, node: ast.Hop) -> None:
        self._emit_nav("HOP", node.spec)

    def _stmt_delete(self, node: ast.Delete) -> None:
        self._emit_nav("DELETE", node.spec)

    def _emit_nav(self, op: str, spec: ast.NavSpec) -> None:
        ln_kind = self._nav_field_kind(spec.ln)
        ll_kind = self._nav_field_kind(spec.ll)
        if spec.ldir not in ("+", "-", "*"):
            raise CompileError(f"bad ldir {spec.ldir!r}")
        self.emit(op, NavTemplate(ln_kind, ll_kind, spec.ldir))

    def _stmt_create(self, node: ast.Create) -> None:
        templates = []
        for item in node.items:
            ln_kind = self._nav_field_kind(item.ln)
            ll_kind = self._nav_field_kind(item.ll)
            dn_kind = self._nav_field_kind(item.dn)
            dl_kind = self._nav_field_kind(item.dl)
            for direction in (item.ldir, item.ddir):
                if direction not in ("+", "-", "*"):
                    raise CompileError(f"bad direction {direction!r}")
            templates.append(
                CreateItemTemplate(
                    ln_kind, ll_kind, item.ldir, dn_kind, dl_kind, item.ddir
                )
            )
        self.emit(
            "CREATE", CreateTemplate(tuple(templates), node.all_daemons)
        )

    # -- expressions --------------------------------------------------------------------

    def expression(self, node) -> None:
        method = getattr(self, f"_expr_{type(node).__name__.lower()}", None)
        if method is None:
            raise CompileError(f"cannot compile expression {node!r}")
        method(node)

    def _expr_num(self, node: ast.Num) -> None:
        self.emit("CONST", node.value)

    def _expr_str(self, node: ast.Str) -> None:
        self.emit("CONST", node.value)

    def _expr_var(self, node: ast.Var) -> None:
        self.emit("LOAD", node.name)

    def _expr_index(self, node: ast.Index) -> None:
        self.expression(node.base)
        self.expression(node.index)
        self.emit("BINOP", "[]")

    def _expr_assignexpr(self, node: ast.AssignExpr) -> None:
        self.expression(node.expr)
        self.emit("STORE", node.target)
        self.emit("LOAD", node.target)

    def _expr_netvar(self, node: ast.NetVar) -> None:
        self.emit("LOADNET", node.name)

    def _expr_call(self, node: ast.Call) -> None:
        if node.name in _SCHED_NAMES:
            if len(node.args) != 1:
                raise CompileError(
                    f"{node.name} takes exactly one argument"
                )
            self.expression(node.args[0])
            self.emit("SCHED", _SCHED_NAMES[node.name])
            # A SCHED yields no value; push a placeholder for uniformity
            # with expression context (it is POPped in statement context).
            self.emit("CONST", None)
            return
        for arg in node.args:
            self.expression(arg)
        self.emit("CALL", (node.name, len(node.args)))

    # -- constant folding ---------------------------------------------------

    def _const_eval(self, node):
        """Value of a constant subexpression, or ``_NOT_CONST``.

        Uses the VM's own operator semantics (``_binop``/``_truthy``) so
        a folded expression is bit-identical to its interpreted form.
        Anything whose evaluation raises (``1/0``) is left unfolded so
        the failure still happens at run time.
        """
        if isinstance(node, (ast.Num, ast.Str)):
            return node.value
        if isinstance(node, ast.UnOp):
            value = self._const_eval(node.operand)
            if value is _NOT_CONST:
                return _NOT_CONST
            if node.op == "-":
                try:
                    return -value
                except TypeError:
                    return _NOT_CONST
            if node.op == "!":
                return 0 if _truthy(value) else 1
            return _NOT_CONST
        if isinstance(node, ast.BinOp) and node.op not in ("&&", "||"):
            left = self._const_eval(node.left)
            if left is _NOT_CONST:
                return _NOT_CONST
            right = self._const_eval(node.right)
            if right is _NOT_CONST:
                return _NOT_CONST
            try:
                return _binop(node.op, left, right)
            except MclRuntimeError:
                return _NOT_CONST
        return _NOT_CONST

    def _expr_binop(self, node: ast.BinOp) -> None:
        folded = self._const_eval(node)
        if folded is not _NOT_CONST:
            self.emit("CONST", folded)
            return
        if node.op in ("&&", "||"):
            # Short-circuit evaluation, C style.
            self.expression(node.left)
            if node.op == "&&":
                jump = self.emit("JF", None)
                self.expression(node.right)
                end = self.emit("JMP")
                self.patch(jump, self.here)
                self.emit("CONST", 0)
                self.patch(end, self.here)
            else:
                # a || b  ==  if a then 1 else bool(b)
                jump_true = self.emit("JF")
                self.emit("CONST", 1)
                end = self.emit("JMP")
                self.patch(jump_true, self.here)
                self.expression(node.right)
                self.patch(end, self.here)
            return
        self.expression(node.left)
        self.expression(node.right)
        self.emit("BINOP", node.op)

    def _expr_unop(self, node: ast.UnOp) -> None:
        folded = self._const_eval(node)
        if folded is not _NOT_CONST:
            self.emit("CONST", folded)
            return
        self.expression(node.operand)
        self.emit("UNOP", node.op)
