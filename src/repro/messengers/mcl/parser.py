"""Recursive-descent parser for MCL.

Grammar (informal)::

    script    := function+
    function  := IDENT '(' [IDENT (',' IDENT)*] ')' block
    block     := '{' statement* '}'
    statement := 'node' identlist ';'
               | 'hop' '(' navspec ')' ';'
               | 'delete' '(' navspec ')' ';'
               | 'create' '(' createspec ')' ';'
               | 'if' '(' expr ')' statement ['else' statement]
               | 'while' '(' expr ')' statement
               | 'for' '(' [simple] ';' [expr] ';' [simple] ')' statement
               | 'return' [expr] ';'
               | 'break' ';' | 'continue' ';'
               | block
               | simple ';'
    simple    := lvalue ('='|'+='|'-='|'*='|'/=') expr
               | lvalue ('++'|'--')
               | expr                      (native call, usually)
    navspec   := [navitem (';' navitem)*]
    navitem   := ('ln'|'ll'|'ldir') '=' navvalue
    createspec:= [citem (';' citem)*] [';' 'ALL']
    citem     := key '=' navvalue (',' navvalue)*   ; key ∈ ln ll ldir dn dl ddir
    navvalue  := '*' | '~' | '+' | '-' | expr

Expressions use C precedence; ``mod`` is accepted as a synonym for ``%``
(the paper writes ``(j-i) mod m``), and ``and``/``or``/``not`` as
synonyms for ``&&``/``||``/``!``.
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .lexer import Token, tokenize

__all__ = ["ParseError", "parse", "parse_function"]

_NAV_KEYS = ("ln", "ll", "ldir")
_CREATE_KEYS = ("ln", "ll", "ldir", "dn", "dl", "ddir")
_DIRECTION_TOKENS = ("+", "-", "*")


class ParseError(SyntaxError):
    """Malformed MCL source."""

    def __init__(self, message: str, token: Token):
        super().__init__(
            f"{message} at line {token.line}, column {token.column} "
            f"(found {token.kind!r})"
        )
        self.token = token


def parse(source: str) -> ast.Script:
    """Parse MCL source into a :class:`~.ast.Script`."""
    return _Parser(tokenize(source)).parse_script()


def parse_function(source: str, name: Optional[str] = None) -> ast.Function:
    """Parse source and return one function from it."""
    return parse(source).function(name)


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _check(self, kind: str) -> bool:
        return self._current.kind == kind

    def _accept(self, kind: str) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: str) -> Token:
        if not self._check(kind):
            raise ParseError(f"expected {kind!r}", self._current)
        return self._advance()

    # -- top level ----------------------------------------------------------

    def parse_script(self) -> ast.Script:
        functions: dict[str, ast.Function] = {}
        while not self._check("EOF"):
            function = self._function()
            if function.name in functions:
                raise ParseError(
                    f"duplicate function {function.name!r}", self._current
                )
            functions[function.name] = function
        if not functions:
            raise ParseError("empty script", self._current)
        return ast.Script(functions)

    def _function(self) -> ast.Function:
        name = self._expect("IDENT").text
        self._expect("(")
        params = []
        if not self._check(")"):
            params.append(self._expect("IDENT").text)
            while self._accept(","):
                params.append(self._expect("IDENT").text)
        self._expect(")")
        body, node_vars = self._block(collect_decls=True)
        return ast.Function(name, params, node_vars, body)

    def _block(self, collect_decls: bool = False):
        """Parse a brace-delimited block.

        ``node`` declarations are only legal at the top of a function
        body (``collect_decls=True``), before any statement — the same
        place C expects declarations.
        """
        self._expect("{")
        statements = []
        node_vars: list[str] = []
        while not self._check("}"):
            if self._check("node"):
                if not collect_decls or statements:
                    raise ParseError(
                        "node declarations must appear at the top of the "
                        "function body",
                        self._current,
                    )
                node_vars.extend(self._node_decl())
            else:
                statements.append(self._statement(node_vars))
        self._expect("}")
        block = ast.Block(statements)
        if collect_decls:
            return block, node_vars
        return block

    def _node_decl(self) -> list[str]:
        self._expect("node")
        names = [self._expect("IDENT").text]
        while self._accept(","):
            names.append(self._expect("IDENT").text)
        self._expect(";")
        return names

    # -- statements -------------------------------------------------------------

    def _statement(self, node_vars: list) -> object:
        kind = self._current.kind
        if kind == "{":
            return self._block()
        if kind == "hop":
            return self._hop_or_delete(ast.Hop)
        if kind == "delete":
            return self._hop_or_delete(ast.Delete)
        if kind == "create":
            return self._create()
        if kind == "if":
            return self._if(node_vars)
        if kind == "while":
            return self._while(node_vars)
        if kind == "for":
            return self._for(node_vars)
        if kind == "return":
            self._advance()
            expr = None if self._check(";") else self._expression()
            self._expect(";")
            return ast.Return(expr)
        if kind == "break":
            self._advance()
            self._expect(";")
            return ast.Break()
        if kind == "continue":
            self._advance()
            self._expect(";")
            return ast.Continue()
        if kind == "node":
            raise ParseError(
                "node declarations must precede statements", self._current
            )
        statement = self._simple()
        self._expect(";")
        return statement

    def _wrap_block(self, statement) -> ast.Block:
        if isinstance(statement, ast.Block):
            return statement
        return ast.Block([statement])

    def _if(self, node_vars) -> ast.If:
        self._expect("if")
        self._expect("(")
        condition = self._expression()
        self._expect(")")
        then_body = self._wrap_block(self._statement(node_vars))
        else_body = None
        if self._accept("else"):
            else_body = self._wrap_block(self._statement(node_vars))
        return ast.If(condition, then_body, else_body)

    def _while(self, node_vars) -> ast.While:
        self._expect("while")
        self._expect("(")
        condition = self._expression()
        self._expect(")")
        body = self._wrap_block(self._statement(node_vars))
        return ast.While(condition, body)

    def _for(self, node_vars) -> ast.For:
        self._expect("for")
        self._expect("(")
        init = None if self._check(";") else self._simple()
        self._expect(";")
        condition = None if self._check(";") else self._expression()
        self._expect(";")
        step = None if self._check(")") else self._simple()
        self._expect(")")
        body = self._wrap_block(self._statement(node_vars))
        return ast.For(init, condition, step, body)

    def _simple(self) -> object:
        """Assignment, indexed assignment, increment, or expression."""
        if self._check("IDENT") or self._check("NETVAR"):
            is_netvar = self._check("NETVAR")
            next_kind = self._peek().kind
            if next_kind in ("=", "+=", "-=", "*=", "/="):
                target = self._advance().text
                op = self._advance().kind
                expr = self._expression()
                return ast.Assign(target, op, expr, is_netvar=is_netvar)
            if next_kind in ("++", "--"):
                target = self._advance().text
                op = self._advance().kind
                one = ast.Num(1)
                return ast.Assign(
                    target,
                    "+=" if op == "++" else "-=",
                    one,
                    is_netvar=is_netvar,
                )
            if next_kind == "[" and not is_netvar:
                # Possible `name[index] op= expr`; backtrack to an
                # expression statement if no assignment operator follows.
                saved = self._pos
                target = self._advance().text
                self._advance()  # '['
                index = self._expression()
                self._expect("]")
                if self._current.kind in ("=", "+=", "-=", "*=", "/="):
                    op = self._advance().kind
                    expr = self._expression()
                    return ast.IndexAssign(target, index, op, expr)
                self._pos = saved
        return ast.ExprStmt(self._expression())

    # -- navigation --------------------------------------------------------------

    def _nav_value(self, key: str):
        """Parse one navigation-spec value, context-sensitively."""
        if key in ("ldir", "ddir"):
            for direction in _DIRECTION_TOKENS:
                if self._accept(direction):
                    return direction
            raise ParseError("expected +, - or *", self._current)
        if self._accept("*"):
            return ast.WILDCARD
        if self._accept("~"):
            return ast.UNNAMED
        if self._check("IDENT") and self._current.text == "init":
            self._advance()
            return ast.Str("init")
        if self._check("IDENT") and self._current.text == "virtual":
            self._advance()
            return ast.Str("virtual")
        return self._expression()

    def _hop_or_delete(self, ctor):
        self._advance()  # hop / delete
        self._expect("(")
        spec = ast.NavSpec()
        if not self._check(")"):
            while True:
                key = self._expect("IDENT").text
                if key not in _NAV_KEYS:
                    raise ParseError(
                        f"bad hop field {key!r} (want ln/ll/ldir)",
                        self._current,
                    )
                self._expect("=")
                setattr(spec, key, self._nav_value(key))
                if not self._accept(";"):
                    break
        self._expect(")")
        self._expect(";")
        return ctor(spec)

    def _create(self) -> ast.Create:
        self._advance()  # create
        self._expect("(")
        columns: dict[str, list] = {}
        all_daemons = False
        if not self._check(")"):
            while True:
                if self._check("ALL"):
                    self._advance()
                    all_daemons = True
                    break
                key = self._expect("IDENT").text
                if key not in _CREATE_KEYS:
                    raise ParseError(
                        f"bad create field {key!r} "
                        "(want ln/ll/ldir/dn/dl/ddir or ALL)",
                        self._current,
                    )
                self._expect("=")
                values = [self._nav_value(key)]
                while self._accept(","):
                    values.append(self._nav_value(key))
                if key in columns:
                    raise ParseError(
                        f"duplicate create field {key!r}", self._current
                    )
                columns[key] = values
                if not self._accept(";"):
                    break
        self._expect(")")
        self._expect(";")

        width = max((len(v) for v in columns.values()), default=1)
        for key, values in columns.items():
            if len(values) not in (1, width):
                raise ParseError(
                    f"create field {key!r} has {len(values)} values; "
                    f"other fields have {width}",
                    self._current,
                )
        items = []
        for index in range(width):
            fields = {}
            for key, values in columns.items():
                fields[key] = values[index] if len(values) > 1 else values[0]
            items.append(ast.CreateItem(**fields))
        if not items:
            items = [ast.CreateItem()]
        return ast.Create(items, all_daemons)

    # -- expressions (C precedence) ----------------------------------------------

    def _expression(self):
        # C-style assignment expressions: `task = next_task()` inside a
        # condition assigns and yields the value (used by Figure 3).
        if self._check("IDENT") and self._peek().kind == "=":
            target = self._advance().text
            self._advance()  # '='
            return ast.AssignExpr(target, self._expression())
        return self._or()

    def _or(self):
        left = self._and()
        while self._check("||") or self._check("or"):
            self._advance()
            right = self._and()
            left = ast.BinOp("||", left, right)
        return left

    def _and(self):
        left = self._equality()
        while self._check("&&") or self._check("and"):
            self._advance()
            right = self._equality()
            left = ast.BinOp("&&", left, right)
        return left

    def _equality(self):
        left = self._relational()
        while self._check("==") or self._check("!="):
            op = self._advance().kind
            left = ast.BinOp(op, left, self._relational())
        return left

    def _relational(self):
        left = self._additive()
        while self._current.kind in ("<", ">", "<=", ">="):
            op = self._advance().kind
            left = ast.BinOp(op, left, self._additive())
        return left

    def _additive(self):
        left = self._multiplicative()
        while self._current.kind in ("+", "-"):
            op = self._advance().kind
            left = ast.BinOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self):
        left = self._unary()
        while self._current.kind in ("*", "/", "%", "mod"):
            op = self._advance().kind
            if op == "mod":
                op = "%"
            left = ast.BinOp(op, left, self._unary())
        return left

    def _unary(self):
        if self._check("-"):
            self._advance()
            return ast.UnOp("-", self._unary())
        if self._check("!") or self._check("not"):
            self._advance()
            return ast.UnOp("!", self._unary())
        return self._primary()

    def _primary(self):
        token = self._current
        if token.kind == "NUMBER":
            self._advance()
            text = token.text
            value = float(text) if ("." in text or "e" in text.lower()) else int(text)
            return ast.Num(value)
        if token.kind == "STRING":
            self._advance()
            return ast.Str(token.text)
        if token.kind == "NETVAR":
            self._advance()
            return ast.NetVar(token.text)
        if token.kind == "IDENT":
            name = self._advance().text
            if self._accept("("):
                args = []
                if not self._check(")"):
                    args.append(self._expression())
                    while self._accept(","):
                        args.append(self._expression())
                self._expect(")")
                return self._postfix(ast.Call(name, args))
            return self._postfix(ast.Var(name))
        if token.kind == "(":
            self._advance()
            expr = self._expression()
            self._expect(")")
            return self._postfix(expr)
        raise ParseError("expected an expression", token)

    def _postfix(self, expr):
        """Zero or more ``[index]`` subscripts after a primary."""
        while self._accept("["):
            index = self._expression()
            self._expect("]")
            expr = ast.Index(expr, index)
        return expr
