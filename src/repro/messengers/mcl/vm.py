"""The MCL bytecode interpreter.

A daemon runs one :class:`Frame` per Messenger.  :func:`run` executes
instructions until the Messenger reaches a preemption point — a
navigational statement, a virtual-time suspension, or termination — and
returns the corresponding :class:`~.bytecode.Command`.  This implements
the paper's *modified non-preemptive scheduling policy* (§2.1): between
preemption points a Messenger runs atomically, which is what lets
critical sections be written as plain statement sequences.

Frames are cheaply cloneable; cloning is how ``hop`` over multiple links
and ``create(ALL)`` replicate an in-flight computation (§2.1).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .bytecode import (
    CreateCommand,
    CreateItemSpec,
    Command,
    DeleteCommand,
    DoneCommand,
    EXPR,
    HopCommand,
    Program,
    SchedCommand,
    UNNAMED_KIND,
    WILD,
)

__all__ = ["Frame", "MclRuntimeError", "run"]


class MclRuntimeError(RuntimeError):
    """An error raised while interpreting a Messenger script."""


@dataclass
class Frame:
    """Execution state of one Messenger: program counter + operand stack.

    The Messenger's variables live outside the frame (on the
    :class:`~repro.messengers.messenger.Messenger`) because they are
    state that migrates; the frame is the interpreter's transient view.
    """

    program: Program
    pc: int = 0
    stack: list = field(default_factory=list)

    def clone(self) -> "Frame":
        """Duplicate for replication; stack contents are shallow-copied
        (at preemption points the stack holds at most small scalars)."""
        return Frame(self.program, self.pc, list(self.stack))

    def push(self, value: Any) -> None:
        self.stack.append(value)

    def pop(self) -> Any:
        try:
            return self.stack.pop()
        except IndexError:
            raise MclRuntimeError(
                f"stack underflow at pc={self.pc} in {self.program.name}"
            ) from None


def _truthy(value: Any) -> bool:
    """C truthiness: 0 / 0.0 / None / "" are false."""
    if value is None:
        return False
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return value != ""
    return bool(value)


def _coerce_index(index: Any) -> Any:
    """Float indices from MCL arithmetic index like C ints."""
    if isinstance(index, float) and index.is_integer():
        return int(index)
    return index


def _binop(op: str, left: Any, right: Any) -> Any:
    try:
        if op == "[]":
            return left[_coerce_index(right)]
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return left // right  # C integer division
            return left / right
        if op == "%":
            return left % right
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">=":
            return 1 if left >= right else 0
    except (TypeError, ZeroDivisionError, IndexError, KeyError) as error:
        raise MclRuntimeError(f"{op} failed: {error}") from error
    raise MclRuntimeError(f"unknown binary operator {op!r}")


def _nav_name(value: Any) -> str:
    """Coerce a spec expression result to a node/link name."""
    if isinstance(value, str):
        return value
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def run(
    frame: Frame,
    messenger_vars: dict,
    node_vars: dict,
    netvar: Callable[[str], Any],
    call_native: Callable[[str, list], Any],
    max_instructions: int = 1_000_000,
    opcounts: Optional[dict] = None,
) -> Command:
    """Interpret until the next preemption point.

    Parameters
    ----------
    frame:
        The Messenger's execution state (mutated in place).
    messenger_vars:
        Private variables carried by the Messenger (§2.1).
    node_vars:
        Variables of the current logical node, shared between Messengers.
    netvar:
        Resolver for ``$``-prefixed network variables.
    call_native:
        Invokes a registered native-mode function; runs atomically.
    max_instructions:
        Runaway-script guard.
    opcounts:
        Optional ``{opcode: count}`` dict, incremented per executed
        instruction (feeds ``mcl.vm.instructions{opcode}`` metrics; only
        requested when the attached registry opts into opcode counting,
        because the per-instruction increment is measurable overhead).

    Returns the :class:`Command` describing why execution stopped, with
    ``instructions`` set to the number of bytecode instructions executed
    (the daemon charges interpretation time from it).
    """
    program = frame.program
    instructions = program.instructions
    node_names = program.node_vars
    executed = 0

    while True:
        if executed >= max_instructions:
            raise MclRuntimeError(
                f"{program.name}: exceeded {max_instructions} instructions "
                "without reaching a preemption point (infinite loop?)"
            )
        try:
            instr = instructions[frame.pc]
        except IndexError:
            # Fell off the end of the program: implicit return.
            return DoneCommand(instructions=executed)
        frame.pc += 1
        executed += 1
        op = instr.op
        if opcounts is not None:
            opcounts[op] = opcounts.get(op, 0) + 1

        if op == "CONST":
            frame.push(instr.arg)
        elif op == "LOAD":
            name = instr.arg
            scope = node_vars if name in node_names else messenger_vars
            try:
                frame.push(scope[name])
            except KeyError:
                raise MclRuntimeError(
                    f"{program.name}: variable {name!r} used before "
                    "assignment"
                ) from None
        elif op == "STORE":
            name = instr.arg
            scope = node_vars if name in node_names else messenger_vars
            scope[name] = frame.pop()
        elif op == "LOADNET":
            frame.push(netvar(instr.arg))
        elif op == "BINOP":
            right = frame.pop()
            left = frame.pop()
            frame.push(_binop(instr.arg, left, right))
        elif op == "STORE_INDEX":
            value = frame.pop()
            index = frame.pop()
            container = frame.pop()
            try:
                container[_coerce_index(index)] = value
            except (TypeError, IndexError, KeyError) as error:
                raise MclRuntimeError(
                    f"index assignment failed: {error}"
                ) from error
        elif op == "UNOP":
            value = frame.pop()
            if instr.arg == "-":
                frame.push(-value)
            elif instr.arg == "!":
                frame.push(0 if _truthy(value) else 1)
            else:
                raise MclRuntimeError(f"unknown unary op {instr.arg!r}")
        elif op == "JMP":
            frame.pc = instr.arg
        elif op == "JF":
            if not _truthy(frame.pop()):
                frame.pc = instr.arg
        elif op == "POP":
            frame.pop()
        elif op == "CALL":
            name, argc = instr.arg
            args = [frame.pop() for _ in range(argc)][::-1]
            frame.push(call_native(name, args))
        elif op == "RET":
            value = frame.pop() if instr.arg == "value" else None
            return DoneCommand(instructions=executed, value=value)
        elif op == "SCHED":
            time_value = frame.pop()
            if not isinstance(time_value, (int, float)):
                raise MclRuntimeError(
                    f"M_sched_time_{instr.arg}: non-numeric time "
                    f"{time_value!r}"
                )
            return SchedCommand(
                instructions=executed, kind=instr.arg, time=float(time_value)
            )
        elif op in ("HOP", "DELETE"):
            template = instr.arg
            ll = (
                _nav_name(frame.pop()) if template.ll_kind == EXPR else "*"
            )
            ln = (
                _nav_name(frame.pop()) if template.ln_kind == EXPR else "*"
            )
            ctor = HopCommand if op == "HOP" else DeleteCommand
            return ctor(
                instructions=executed, ln=ln, ll=ll, ldir=template.ldir
            )
        elif op == "CREATE":
            template = instr.arg
            # Values were pushed item-by-item in template order; pop in
            # reverse (last item's last field is on top).
            resolved: list[CreateItemSpec] = []
            for item in reversed(template.items):
                values: dict[str, Any] = {}
                for fieldname in reversed(item.expr_fields):
                    values[fieldname] = _nav_name(frame.pop())
                resolved.append(
                    CreateItemSpec(
                        ln=(
                            values.get("ln")
                            if item.ln_kind == EXPR
                            else (None if item.ln_kind == UNNAMED_KIND else "*")
                        ),
                        ll=(
                            values.get("ll")
                            if item.ll_kind == EXPR
                            else (None if item.ll_kind == UNNAMED_KIND else "*")
                        ),
                        ldir=item.ldir,
                        dn=(
                            values.get("dn")
                            if item.dn_kind == EXPR
                            else "*"
                        ),
                        dl=(
                            values.get("dl")
                            if item.dl_kind == EXPR
                            else "*"
                        ),
                        ddir=item.ddir,
                    )
                )
            resolved.reverse()
            return CreateCommand(
                instructions=executed,
                items=resolved,
                all_daemons=template.all_daemons,
            )
        else:  # pragma: no cover - Program() validates opcodes
            raise MclRuntimeError(f"unknown opcode {op!r}")
