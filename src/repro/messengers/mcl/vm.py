"""The MCL bytecode interpreter.

A daemon runs one :class:`Frame` per Messenger.  :func:`run` executes
instructions until the Messenger reaches a preemption point — a
navigational statement, a virtual-time suspension, or termination — and
returns the corresponding :class:`~.bytecode.Command`.  This implements
the paper's *modified non-preemptive scheduling policy* (§2.1): between
preemption points a Messenger runs atomically, which is what lets
critical sections be written as plain statement sequences.

Frames are cheaply cloneable; cloning is how ``hop`` over multiple links
and ``create(ALL)`` replicate an in-flight computation (§2.1).

Two dispatch paths execute the same bytecode:

* the **fast path** (default) first resolves a program's instructions to
  a precomputed table of ``(int_opcode, arg)`` pairs — LOAD/STORE are
  split by scope at build time (messenger- vs node-variable membership
  is static per program), BINOP/UNOP are specialised per operator — and
  then interprets with ``pc``/``stack`` held in loop locals;
* the **counting path** runs whenever per-opcode counts are requested
  (``opcounts`` is not None): it is the original string-keyed loop,
  kept verbatim both as the diagnostic instrumentation path and as the
  reference implementation the determinism tests compare against.

Both paths execute identical instruction sequences and charge identical
``instructions`` counts, so simulated interpretation time — and with it
every figure in the paper reproduction — is bit-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .bytecode import (
    CreateCommand,
    CreateItemSpec,
    Command,
    DeleteCommand,
    DoneCommand,
    EXPR,
    HopCommand,
    Program,
    SchedCommand,
    UNNAMED_KIND,
)

__all__ = ["Frame", "MclRuntimeError", "run"]


class MclRuntimeError(RuntimeError):
    """An error raised while interpreting a Messenger script."""


@dataclass(slots=True)
class Frame:
    """Execution state of one Messenger: program counter + operand stack.

    The Messenger's variables live outside the frame (on the
    :class:`~repro.messengers.messenger.Messenger`) because they are
    state that migrates; the frame is the interpreter's transient view.
    """

    program: Program
    pc: int = 0
    stack: list = field(default_factory=list)
    #: Resumption hint for the closures backend
    #: (:mod:`repro.messengers.mcl.closures`): the basic-block index to
    #: re-enter after a yield.  ``-1`` means "derive from ``pc``" — the
    #: int-opcode interpreter never sets it, so frames migrate freely
    #: between backends (``pc`` stays the source of truth; the hint is
    #: validated against it before use).
    block: int = -1

    def clone(self) -> "Frame":
        """Duplicate for replication; stack contents are shallow-copied
        (at preemption points the stack holds at most small scalars)."""
        return Frame(self.program, self.pc, list(self.stack), self.block)

    def push(self, value: Any) -> None:
        self.stack.append(value)

    def pop(self) -> Any:
        try:
            return self.stack.pop()
        except IndexError:
            raise MclRuntimeError(
                f"stack underflow at pc={self.pc} in {self.program.name}"
            ) from None


def _truthy(value: Any) -> bool:
    """C truthiness: 0 / 0.0 / None / "" are false."""
    if value is None:
        return False
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return value != ""
    return bool(value)


def _coerce_index(index: Any) -> Any:
    """Float indices from MCL arithmetic index like C ints."""
    if isinstance(index, float) and index.is_integer():
        return int(index)
    return index


def _binop(op: str, left: Any, right: Any) -> Any:
    try:
        if op == "[]":
            return left[_coerce_index(right)]
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return left // right  # C integer division
            return left / right
        if op == "%":
            return left % right
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">=":
            return 1 if left >= right else 0
    except (TypeError, ZeroDivisionError, IndexError, KeyError) as error:
        raise MclRuntimeError(f"{op} failed: {error}") from error
    raise MclRuntimeError(f"unknown binary operator {op!r}")


def _nav_name(value: Any) -> str:
    """Coerce a spec expression result to a node/link name."""
    if isinstance(value, str):
        return value
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


# -- fast dispatch table -----------------------------------------------------
#
# Integer opcodes for the precomputed per-program dispatch table.  The
# split LOAD/STORE variants bake the (static) scope decision into the
# table; the BINOP variants bake the operator in.

_OP_CONST = 0
_OP_LOAD_M = 1  # messenger-scoped variable
_OP_LOAD_N = 2  # node-scoped variable
_OP_STORE_M = 3
_OP_STORE_N = 4
_OP_ADD = 5
_OP_SUB = 6
_OP_MUL = 7
_OP_DIV = 8
_OP_MOD = 9
_OP_EQ = 10
_OP_NE = 11
_OP_LT = 12
_OP_GT = 13
_OP_LE = 14
_OP_GE = 15
_OP_INDEX = 16  # BINOP "[]"
_OP_JMP = 17
_OP_JF = 18
_OP_POP = 19
_OP_CALL = 20
_OP_NEG = 21
_OP_NOT = 22
_OP_LOADNET = 23
_OP_STORE_INDEX = 24
_OP_RET_NONE = 25
_OP_RET_VALUE = 26
_OP_SCHED = 27
_OP_HOP = 28
_OP_DELETE = 29
_OP_CREATE = 30

_BINOP_CODES = {
    "+": _OP_ADD,
    "-": _OP_SUB,
    "*": _OP_MUL,
    "/": _OP_DIV,
    "%": _OP_MOD,
    "==": _OP_EQ,
    "!=": _OP_NE,
    "<": _OP_LT,
    ">": _OP_GT,
    "<=": _OP_LE,
    ">=": _OP_GE,
    "[]": _OP_INDEX,
}

_SIMPLE_CODES = {
    "CONST": _OP_CONST,
    "LOADNET": _OP_LOADNET,
    "STORE_INDEX": _OP_STORE_INDEX,
    "JMP": _OP_JMP,
    "JF": _OP_JF,
    "POP": _OP_POP,
    "CALL": _OP_CALL,
    "SCHED": _OP_SCHED,
    "HOP": _OP_HOP,
    "DELETE": _OP_DELETE,
    "CREATE": _OP_CREATE,
}


def _build_dispatch(program: Program) -> list:
    """Resolve ``program`` to ``(int_opcode, arg)`` pairs, cached on the
    program (one build per compiled program for its whole lifetime)."""
    node_names = program.node_vars
    code = []
    for instr in program.instructions:
        op, arg = instr.op, instr.arg
        if op == "LOAD":
            code.append(
                (_OP_LOAD_N if arg in node_names else _OP_LOAD_M, arg)
            )
        elif op == "STORE":
            code.append(
                (_OP_STORE_N if arg in node_names else _OP_STORE_M, arg)
            )
        elif op == "BINOP":
            try:
                code.append((_BINOP_CODES[arg], arg))
            except KeyError:
                raise MclRuntimeError(
                    f"unknown binary operator {arg!r}"
                ) from None
        elif op == "UNOP":
            if arg == "-":
                code.append((_OP_NEG, arg))
            elif arg == "!":
                code.append((_OP_NOT, arg))
            else:
                raise MclRuntimeError(f"unknown unary op {arg!r}")
        elif op == "RET":
            code.append(
                (_OP_RET_VALUE if arg == "value" else _OP_RET_NONE, arg)
            )
        else:
            code.append((_SIMPLE_CODES[op], arg))
    program._dispatch = code
    return code


def run(
    frame: Frame,
    messenger_vars: dict,
    node_vars: dict,
    netvar: Callable[[str], Any],
    call_native: Callable[[str, list], Any],
    max_instructions: int = 1_000_000,
    opcounts: Optional[dict] = None,
) -> Command:
    """Interpret until the next preemption point.

    Parameters
    ----------
    frame:
        The Messenger's execution state (mutated in place).
    messenger_vars:
        Private variables carried by the Messenger (§2.1).
    node_vars:
        Variables of the current logical node, shared between Messengers.
    netvar:
        Resolver for ``$``-prefixed network variables.
    call_native:
        Invokes a registered native-mode function; runs atomically.
    max_instructions:
        Runaway-script guard.
    opcounts:
        Optional ``{opcode: count}`` dict, incremented per executed
        instruction (feeds ``mcl.vm.instructions{opcode}`` metrics; only
        requested when the attached registry opts into opcode counting,
        because the per-instruction increment is measurable overhead).
        When supplied, execution takes the reference counting path.

    Returns the :class:`Command` describing why execution stopped, with
    ``instructions`` set to the number of bytecode instructions executed
    (the daemon charges interpretation time from it).
    """
    if opcounts is not None:
        return _run_counting(
            frame,
            messenger_vars,
            node_vars,
            netvar,
            call_native,
            max_instructions,
            opcounts,
        )

    program = frame.program
    code = program._dispatch
    if code is None:
        code = _build_dispatch(program)
    ncode = len(code)
    pc = frame.pc
    stack = frame.stack
    push = stack.append
    pop = stack.pop
    executed = 0

    # Local bindings of the opcode constants: LOAD_FAST in the dispatch
    # chain instead of a global lookup per comparison.
    op_const = _OP_CONST
    op_load_m = _OP_LOAD_M
    op_load_n = _OP_LOAD_N
    op_store_m = _OP_STORE_M
    op_store_n = _OP_STORE_N
    op_add = _OP_ADD
    op_sub = _OP_SUB
    op_mul = _OP_MUL
    op_div = _OP_DIV
    op_mod = _OP_MOD
    op_eq = _OP_EQ
    op_ne = _OP_NE
    op_lt = _OP_LT
    op_gt = _OP_GT
    op_le = _OP_LE
    op_ge = _OP_GE
    op_index = _OP_INDEX
    op_jmp = _OP_JMP
    op_jf = _OP_JF
    op_pop = _OP_POP
    op_call = _OP_CALL

    while True:
        if pc >= ncode:
            # Fell off the end of the program: implicit return.
            frame.pc = pc
            return DoneCommand(instructions=executed)
        if executed >= max_instructions:
            frame.pc = pc
            raise MclRuntimeError(
                f"{program.name}: exceeded {max_instructions} instructions "
                "without reaching a preemption point (infinite loop?)"
            )
        op, arg = code[pc]
        pc += 1
        executed += 1

        if op == op_load_m:
            try:
                push(messenger_vars[arg])
            except KeyError:
                frame.pc = pc
                raise MclRuntimeError(
                    f"{program.name}: variable {arg!r} used before "
                    "assignment"
                ) from None
        elif op == op_const:
            push(arg)
        elif op == op_add:
            right = pop()
            try:
                stack[-1] = stack[-1] + right
            except (TypeError, IndexError, KeyError) as error:
                frame.pc = pc
                raise MclRuntimeError(f"+ failed: {error}") from error
        elif op == op_lt:
            right = pop()
            try:
                stack[-1] = 1 if stack[-1] < right else 0
            except TypeError as error:
                frame.pc = pc
                raise MclRuntimeError(f"< failed: {error}") from error
        elif op == op_store_m:
            messenger_vars[arg] = pop()
        elif op == op_jf:
            if not pop():
                # _truthy(x) is equivalent to bool(x) for every value MCL
                # produces (C truthiness == Python truthiness here).
                pc = arg
        elif op == op_mul:
            right = pop()
            try:
                stack[-1] = stack[-1] * right
            except (TypeError, IndexError, KeyError) as error:
                frame.pc = pc
                raise MclRuntimeError(f"* failed: {error}") from error
        elif op == op_sub:
            right = pop()
            try:
                stack[-1] = stack[-1] - right
            except (TypeError, IndexError, KeyError) as error:
                frame.pc = pc
                raise MclRuntimeError(f"- failed: {error}") from error
        elif op == op_jmp:
            pc = arg
        elif op == op_mod:
            right = pop()
            try:
                stack[-1] = stack[-1] % right
            except (
                TypeError,
                ZeroDivisionError,
                IndexError,
                KeyError,
            ) as error:
                frame.pc = pc
                raise MclRuntimeError(f"% failed: {error}") from error
        elif op == op_div:
            right = pop()
            left = stack[-1]
            try:
                if isinstance(left, int) and isinstance(right, int):
                    stack[-1] = left // right  # C integer division
                else:
                    stack[-1] = left / right
            except (TypeError, ZeroDivisionError) as error:
                frame.pc = pc
                raise MclRuntimeError(f"/ failed: {error}") from error
        elif op == op_eq:
            right = pop()
            stack[-1] = 1 if stack[-1] == right else 0
        elif op == op_ne:
            right = pop()
            stack[-1] = 1 if stack[-1] != right else 0
        elif op == op_gt:
            right = pop()
            try:
                stack[-1] = 1 if stack[-1] > right else 0
            except TypeError as error:
                frame.pc = pc
                raise MclRuntimeError(f"> failed: {error}") from error
        elif op == op_le:
            right = pop()
            try:
                stack[-1] = 1 if stack[-1] <= right else 0
            except TypeError as error:
                frame.pc = pc
                raise MclRuntimeError(f"<= failed: {error}") from error
        elif op == op_ge:
            right = pop()
            try:
                stack[-1] = 1 if stack[-1] >= right else 0
            except TypeError as error:
                frame.pc = pc
                raise MclRuntimeError(f">= failed: {error}") from error
        elif op == op_index:
            right = pop()
            try:
                stack[-1] = stack[-1][_coerce_index(right)]
            except (TypeError, IndexError, KeyError) as error:
                frame.pc = pc
                raise MclRuntimeError(f"[] failed: {error}") from error
        elif op == op_load_n:
            try:
                push(node_vars[arg])
            except KeyError:
                frame.pc = pc
                raise MclRuntimeError(
                    f"{program.name}: variable {arg!r} used before "
                    "assignment"
                ) from None
        elif op == op_store_n:
            node_vars[arg] = pop()
        elif op == op_pop:
            pop()
        elif op == op_call:
            name, argc = arg
            if argc:
                if len(stack) < argc:
                    frame.pc = pc
                    raise MclRuntimeError(
                        f"stack underflow at pc={pc} in {program.name}"
                    )
                args = stack[-argc:]
                del stack[-argc:]
            else:
                args = []
            push(call_native(name, args))
        elif op == _OP_NEG:
            stack[-1] = -stack[-1]
        elif op == _OP_NOT:
            stack[-1] = 0 if stack[-1] else 1
        elif op == _OP_LOADNET:
            push(netvar(arg))
        elif op == _OP_STORE_INDEX:
            value = pop()
            index = pop()
            container = pop()
            try:
                container[_coerce_index(index)] = value
            except (TypeError, IndexError, KeyError) as error:
                frame.pc = pc
                raise MclRuntimeError(
                    f"index assignment failed: {error}"
                ) from error
        elif op == _OP_RET_NONE:
            frame.pc = pc
            return DoneCommand(instructions=executed)
        elif op == _OP_RET_VALUE:
            frame.pc = pc
            return DoneCommand(instructions=executed, value=pop())
        elif op == _OP_SCHED:
            frame.pc = pc
            time_value = pop()
            if not isinstance(time_value, (int, float)):
                raise MclRuntimeError(
                    f"M_sched_time_{arg}: non-numeric time "
                    f"{time_value!r}"
                )
            return SchedCommand(
                instructions=executed, kind=arg, time=float(time_value)
            )
        elif op == _OP_HOP or op == _OP_DELETE:
            frame.pc = pc
            ll = _nav_name(pop()) if arg.ll_kind == EXPR else "*"
            ln = _nav_name(pop()) if arg.ln_kind == EXPR else "*"
            ctor = HopCommand if op == _OP_HOP else DeleteCommand
            return ctor(
                instructions=executed, ln=ln, ll=ll, ldir=arg.ldir
            )
        else:  # _OP_CREATE — _build_dispatch validates opcodes
            frame.pc = pc
            return _create_command(arg, pop, executed)


def _create_command(template, pop, executed: int) -> CreateCommand:
    """Resolve a CREATE template against the operand stack."""
    # Values were pushed item-by-item in template order; pop in
    # reverse (last item's last field is on top).
    resolved: list[CreateItemSpec] = []
    for item in reversed(template.items):
        values: dict[str, Any] = {}
        for fieldname in reversed(item.expr_fields):
            values[fieldname] = _nav_name(pop())
        resolved.append(
            CreateItemSpec(
                ln=(
                    values.get("ln")
                    if item.ln_kind == EXPR
                    else (None if item.ln_kind == UNNAMED_KIND else "*")
                ),
                ll=(
                    values.get("ll")
                    if item.ll_kind == EXPR
                    else (None if item.ll_kind == UNNAMED_KIND else "*")
                ),
                ldir=item.ldir,
                dn=(values.get("dn") if item.dn_kind == EXPR else "*"),
                dl=(values.get("dl") if item.dl_kind == EXPR else "*"),
                ddir=item.ddir,
            )
        )
    resolved.reverse()
    return CreateCommand(
        instructions=executed,
        items=resolved,
        all_daemons=template.all_daemons,
    )


def _run_counting(
    frame: Frame,
    messenger_vars: dict,
    node_vars: dict,
    netvar: Callable[[str], Any],
    call_native: Callable[[str, list], Any],
    max_instructions: int,
    opcounts: dict,
) -> Command:
    """Reference interpreter: string-keyed dispatch with per-opcode
    counting.  Byte-identical semantics to the fast path (the
    determinism tests in ``tests/test_perf_determinism.py`` hold the two
    to that)."""
    program = frame.program
    instructions = program.instructions
    node_names = program.node_vars
    executed = 0

    while True:
        if executed >= max_instructions:
            raise MclRuntimeError(
                f"{program.name}: exceeded {max_instructions} instructions "
                "without reaching a preemption point (infinite loop?)"
            )
        try:
            instr = instructions[frame.pc]
        except IndexError:
            # Fell off the end of the program: implicit return.
            return DoneCommand(instructions=executed)
        frame.pc += 1
        executed += 1
        op = instr.op
        opcounts[op] = opcounts.get(op, 0) + 1

        if op == "CONST":
            frame.push(instr.arg)
        elif op == "LOAD":
            name = instr.arg
            scope = node_vars if name in node_names else messenger_vars
            try:
                frame.push(scope[name])
            except KeyError:
                raise MclRuntimeError(
                    f"{program.name}: variable {name!r} used before "
                    "assignment"
                ) from None
        elif op == "STORE":
            name = instr.arg
            scope = node_vars if name in node_names else messenger_vars
            scope[name] = frame.pop()
        elif op == "LOADNET":
            frame.push(netvar(instr.arg))
        elif op == "BINOP":
            right = frame.pop()
            left = frame.pop()
            frame.push(_binop(instr.arg, left, right))
        elif op == "STORE_INDEX":
            value = frame.pop()
            index = frame.pop()
            container = frame.pop()
            try:
                container[_coerce_index(index)] = value
            except (TypeError, IndexError, KeyError) as error:
                raise MclRuntimeError(
                    f"index assignment failed: {error}"
                ) from error
        elif op == "UNOP":
            value = frame.pop()
            if instr.arg == "-":
                frame.push(-value)
            elif instr.arg == "!":
                frame.push(0 if _truthy(value) else 1)
            else:
                raise MclRuntimeError(f"unknown unary op {instr.arg!r}")
        elif op == "JMP":
            frame.pc = instr.arg
        elif op == "JF":
            if not _truthy(frame.pop()):
                frame.pc = instr.arg
        elif op == "POP":
            frame.pop()
        elif op == "CALL":
            name, argc = instr.arg
            args = [frame.pop() for _ in range(argc)][::-1]
            frame.push(call_native(name, args))
        elif op == "RET":
            value = frame.pop() if instr.arg == "value" else None
            return DoneCommand(instructions=executed, value=value)
        elif op == "SCHED":
            time_value = frame.pop()
            if not isinstance(time_value, (int, float)):
                raise MclRuntimeError(
                    f"M_sched_time_{instr.arg}: non-numeric time "
                    f"{time_value!r}"
                )
            return SchedCommand(
                instructions=executed, kind=instr.arg, time=float(time_value)
            )
        elif op in ("HOP", "DELETE"):
            template = instr.arg
            ll = (
                _nav_name(frame.pop()) if template.ll_kind == EXPR else "*"
            )
            ln = (
                _nav_name(frame.pop()) if template.ln_kind == EXPR else "*"
            )
            ctor = HopCommand if op == "HOP" else DeleteCommand
            return ctor(
                instructions=executed, ln=ln, ll=ll, ldir=template.ldir
            )
        elif op == "CREATE":
            return _create_command(instr.arg, frame.pop, executed)
        else:  # pragma: no cover - Program() validates opcodes
            raise MclRuntimeError(f"unknown opcode {op!r}")
