"""Closures backend for the MCL VM: basic-block superinstructions.

The int-opcode interpreter in :mod:`.vm` pays one dispatch-loop
iteration per bytecode instruction.  This backend removes that loop on
hot paths: each :class:`~.bytecode.Program` is walked once, partitioned
into **basic blocks** (straight-line runs ending at a jump, a jump
target, or a preemption point — hop/delete/create/sched/return), and
every block is emitted as one Python function via ``exec``.  Inside a
block, runs of compute/variable/arith opcodes are *fused* into single
Python expressions over the variable dicts — a superinstruction — so
``acc = acc + i * 2 - (i % 3)`` executes as one generated statement
instead of seven interpreted opcodes.

Contract with the rest of the system (the bit-identity guarantee):

* the returned :class:`~.bytecode.Command` stream is exactly the
  interpreter's — same command types, same field values, and the same
  ``instructions`` counts (every instruction of a block is charged,
  exactly once, when the block runs), so the obs ledger's
  "interpretation" accounting is unchanged to the last bit;
* ``frame.pc`` and ``frame.stack`` are bit-identical to the
  interpreter's at every preemption point, so cloning (hop
  replication, checkpoints) and cross-backend migration both work:
  resumption re-enters at the basic block whose start is ``frame.pc``
  (``frame.block`` caches that index and is validated before use);
* native calls and network-variable reads happen at the same points in
  the same order, with the same argument values, and native exceptions
  propagate raw exactly as in the interpreter.

Two deliberate, documented divergences, both confined to error paths
that terminate the Messenger (no Command is returned, nothing is
charged): :class:`~.vm.MclRuntimeError` *message texts* for failed
operations may differ (the error class and the raise point in the
program do not), and the ``max_instructions`` runaway guard triggers at
the first block boundary past the limit rather than the exact
instruction.

Select the backend per simulator (``Simulator(mcl_backend="closures")``
/ ``ClusterConfig(mcl_backend="closures")``) or process-wide with
:func:`repro.des.set_default_mcl_backend`; the interpreter remains the
default.  When per-opcode counts are requested the shared reference
path (:func:`.vm._run_counting`) runs instead, exactly as in the
interpreter.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .bytecode import (
    Command,
    DeleteCommand,
    DoneCommand,
    EXPR,
    HopCommand,
    Program,
    SchedCommand,
)
from .vm import (
    Frame,
    MclRuntimeError,
    _OP_ADD,
    _OP_CALL,
    _OP_CONST,
    _OP_CREATE,
    _OP_DELETE,
    _OP_DIV,
    _OP_EQ,
    _OP_GE,
    _OP_GT,
    _OP_HOP,
    _OP_INDEX,
    _OP_JF,
    _OP_JMP,
    _OP_LE,
    _OP_LOADNET,
    _OP_LOAD_M,
    _OP_LOAD_N,
    _OP_LT,
    _OP_MOD,
    _OP_MUL,
    _OP_NE,
    _OP_NEG,
    _OP_NOT,
    _OP_POP,
    _OP_RET_NONE,
    _OP_RET_VALUE,
    _OP_SCHED,
    _OP_STORE_INDEX,
    _OP_STORE_M,
    _OP_STORE_N,
    _OP_SUB,
    _build_dispatch,
    _coerce_index,
    _create_command,
    _nav_name,
    _run_counting,
)

__all__ = ["run", "compile_blocks", "CompiledBlocks"]


# -- runtime helpers shared with the generated code --------------------------

#: Exception classes the interpreter converts to MclRuntimeError.
_ERRS = (TypeError, ZeroDivisionError, IndexError, KeyError)


def _div(left: Any, right: Any) -> Any:
    """The VM's ``/``: C integer division when both sides are ints."""
    if isinstance(left, int) and isinstance(right, int):
        return left // right
    return left / right


#: Opcodes that suspend the Messenger (the paper's preemption points).
_YIELD_OPS = frozenset({_OP_HOP, _OP_DELETE, _OP_CREATE, _OP_SCHED})

#: Opcodes that end a basic block.
_TERMINATORS = _YIELD_OPS | {_OP_JMP, _OP_JF, _OP_RET_NONE, _OP_RET_VALUE}

#: Fused binary arithmetic: opcode -> format string over (left, right).
_ARITH = {
    _OP_ADD: "({0} + {1})",
    _OP_SUB: "({0} - {1})",
    _OP_MUL: "({0} * {1})",
    _OP_MOD: "({0} % {1})",
    _OP_DIV: "_div({0}, {1})",
    _OP_INDEX: "({0})[_ci({1})]",
}

#: Fused comparisons: opcode -> boolean-context format string.  The
#: value form wraps this in ``(1 if ... else 0)`` exactly like the
#: interpreter; ``JF`` uses the boolean form directly.
_COMPARE = {
    _OP_EQ: "{0} == {1}",
    _OP_NE: "{0} != {1}",
    _OP_LT: "{0} < {1}",
    _OP_GT: "{0} > {1}",
    _OP_LE: "{0} <= {1}",
    _OP_GE: "{0} >= {1}",
}


class CompiledBlocks:
    """One program compiled to per-block closures.

    ``blocks[i]`` is ``(fn, count)``: the block's generated function and
    its static instruction count.  ``fn(frame, stack, M, N, netvar,
    call_native)`` returns ``(command_or_None, next_block_index)``.
    """

    __slots__ = ("blocks", "entry_pc", "block_of_pc", "ncode", "source")

    def __init__(self, blocks, entry_pc, block_of_pc, ncode, source):
        self.blocks = blocks
        self.entry_pc = entry_pc
        self.block_of_pc = block_of_pc
        self.ncode = ncode
        self.source = source


def _partition(code: list) -> list[tuple[int, int]]:
    """Split the dispatch table into basic-block ``[start, end)`` ranges.

    Leaders are pc 0, every jump target, and the instruction after any
    terminator; since a terminator always makes its successor a leader,
    each range contains at most one terminator — as its last entry.
    """
    ncode = len(code)
    leaders = {0}
    for pc, (op, arg) in enumerate(code):
        if op == _OP_JMP or op == _OP_JF:
            leaders.add(arg)
        if op in _TERMINATORS:
            leaders.add(pc + 1)
    starts = sorted(pc for pc in leaders if 0 <= pc < ncode)
    return [
        (start, starts[i + 1] if i + 1 < len(starts) else ncode)
        for i, start in enumerate(starts)
    ]


class _Sym:
    """One symbolic (not-yet-materialized) operand-stack entry."""

    __slots__ = ("expr", "pure", "cond")

    def __init__(self, expr: str, pure: bool, cond: Optional[str] = None):
        #: Python expression for the value.
        self.expr = expr
        #: Pure entries (literals, already-evaluated temps) can be
        #: deferred across stores/calls and can never raise.
        self.pure = pure
        #: Optional boolean-context form (comparisons), used by ``JF``.
        self.cond = cond


def _const_expr(value: Any) -> Optional[str]:
    """Literal source for a constant, or None if it must be hoisted."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return repr(value)
    return None


class _BlockGen:
    """Generates the body of one basic-block function.

    Walks the block's ``(int_opcode, arg)`` pairs keeping a *symbolic*
    operand stack: pushes defer evaluation, pops splice the deferred
    expressions into the consumer, and only block exits / yields /
    mutation points materialize values.  Flush discipline (the ordering
    contract with the interpreter):

    * before any store (``STORE``/``STORE_INDEX``) or any call
      (``CALL``/``LOADNET``), every deferred *impure* entry — anything
      reading ``M``/``N`` or able to raise — is evaluated into a temp,
      so no read is reordered past a mutation;
    * at block exits and yields the remaining entries are appended to
      the real ``frame.stack`` in push order, so the frame's stack at
      every preemption point is bit-identical to the interpreter's.
    """

    def __init__(self, gen: "_ProgramGen", start: int, end: int):
        self.gen = gen
        self.start = start
        self.end = end
        #: (channel, line) pairs; "w" lines are grouped into try blocks
        #: that convert _ERRS to MclRuntimeError, "r" lines run bare
        #: (native calls and netvar reads must propagate raw).
        self.lines: list[tuple[str, str]] = []
        self.syms: list[_Sym] = []

    # -- emission ------------------------------------------------------------

    def w(self, line: str) -> None:
        self.lines.append(("w", line))

    def r(self, line: str) -> None:
        self.lines.append(("r", line))

    def temp(self) -> str:
        self.gen.ntemp += 1
        return f"_t{self.gen.ntemp}"

    # -- symbolic stack ------------------------------------------------------

    def push(self, expr: str, pure: bool = False, cond: Optional[str] = None):
        self.syms.append(_Sym(expr, pure, cond))

    def pop(self) -> _Sym:
        if self.syms:
            return self.syms.pop()
        # The logical stack extends below this block's pushes into the
        # real frame stack (short-circuit jumps carry values across
        # block boundaries).
        name = self.temp()
        self.w(f"{name} = stack.pop()")
        return _Sym(name, True)

    def materialize(self, sym: _Sym) -> str:
        """Evaluate ``sym`` into a temp now (no-op for pure entries)."""
        if sym.pure:
            return sym.expr
        name = self.temp()
        self.w(f"{name} = {sym.expr}")
        sym.expr = name
        sym.pure = True
        sym.cond = None
        return name

    def flush_reads(self) -> None:
        """Materialize every deferred impure entry (pre-mutation/call)."""
        for sym in self.syms:
            if not sym.pure:
                self.materialize(sym)

    def flush_to_stack(self) -> None:
        """Append all symbolic entries to the real stack, in push order."""
        for sym in self.syms:
            self.w(f"stack.append({sym.expr})")
        self.syms = []

    # -- opcode translation --------------------------------------------------

    def block_of(self, pc: int) -> int:
        return self.gen.block_of_pc[pc]

    def resume_index(self, pc: int) -> int:
        """Block index for resumption at ``pc`` (-1 = end of program)."""
        return self.gen.block_of_pc.get(pc, -1)

    def emit_block(self) -> None:
        code = self.gen.code
        for pc in range(self.start, self.end):
            op, arg = code[pc]
            if op in _TERMINATORS:
                self.emit_terminator(pc, op, arg)
                return
            self.emit_straight(op, arg)
        # Fell through to the next block (the next pc is a jump target).
        self.flush_to_stack()
        if self.end >= self.gen.ncode:
            self.r(f"frame.pc = {self.gen.ncode}")
            self.r("frame.block = -1")
            self.r("return (DoneCommand(), -1)")
        else:
            self.r(f"return _N{self.block_of(self.end)}")

    def emit_straight(self, op: int, arg: Any) -> None:
        if op == _OP_CONST:
            literal = _const_expr(arg)
            if literal is None:
                literal = self.gen.hoist(arg)
            self.push(literal, pure=True)
        elif op == _OP_LOAD_M:
            self.push(f"M[{arg!r}]")
        elif op == _OP_LOAD_N:
            self.push(f"N[{arg!r}]")
        elif op == _OP_STORE_M or op == _OP_STORE_N:
            value = self.pop()
            self.flush_reads()
            scope = "M" if op == _OP_STORE_M else "N"
            self.w(f"{scope}[{arg!r}] = {value.expr}")
        elif op in _ARITH:
            right = self.pop()
            left = self.pop()
            self.push(_ARITH[op].format(left.expr, right.expr))
        elif op in _COMPARE:
            right = self.pop()
            left = self.pop()
            cond = _COMPARE[op].format(left.expr, right.expr)
            self.push(f"(1 if {cond} else 0)", cond=cond)
        elif op == _OP_NEG:
            value = self.pop()
            self.push(f"(-({value.expr}))")
        elif op == _OP_NOT:
            value = self.pop()
            inner = value.cond or value.expr
            self.push(
                f"(0 if {inner} else 1)", cond=f"not ({inner})"
            )
        elif op == _OP_POP:
            value = self.pop()
            if not value.pure:
                # Still evaluated (and still able to raise), as in the
                # interpreter; only the discard is free.
                self.w(value.expr)
        elif op == _OP_STORE_INDEX:
            value = self.pop()
            index = self.pop()
            container = self.pop()
            self.flush_reads()
            for sym in (container, index, value):  # original push order
                self.materialize(sym)
            self.w(
                f"({container.expr})[_ci({index.expr})] = {value.expr}"
            )
        elif op == _OP_LOADNET:
            self.flush_reads()
            name = self.temp()
            self.r(f"{name} = netvar({arg!r})")
            self.push(name, pure=True)
        elif op == _OP_CALL:
            native, argc = arg
            args = [self.pop() for _ in range(argc)][::-1]
            self.flush_reads()
            for sym in args:  # evaluate in push order, before the call
                self.materialize(sym)
            name = self.temp()
            arglist = ", ".join(sym.expr for sym in args)
            self.r(f"{name} = call_native({native!r}, [{arglist}])")
            self.push(name, pure=True)
        else:  # pragma: no cover - _build_dispatch validates opcodes
            raise MclRuntimeError(f"closures: unknown opcode {op}")

    def emit_terminator(self, pc: int, op: int, arg: Any) -> None:
        if op == _OP_JMP:
            self.flush_to_stack()
            self.r(f"return _N{self.block_of(arg)}")
        elif op == _OP_JF:
            condition = self.pop()
            self.flush_to_stack()
            cond = condition.cond or condition.expr
            self.w(f"if not ({cond}): return _N{self.block_of(arg)}")
            self.r(f"return _N{self.block_of(pc + 1)}")
        elif op == _OP_RET_NONE or op == _OP_RET_VALUE:
            value = self.pop() if op == _OP_RET_VALUE else None
            if value is not None:
                self.materialize(value)
            self.flush_to_stack()
            self.r(f"frame.pc = {pc + 1}")
            self.r("frame.block = -1")
            if value is not None:
                self.r(f"return (DoneCommand(value={value.expr}), -1)")
            else:
                self.r("return (DoneCommand(), -1)")
        elif op == _OP_SCHED:
            time_sym = self.pop()
            self.flush_to_stack()
            name = self.materialize(time_sym)
            resume = self.resume_index(pc + 1)
            self.r(f"frame.pc = {pc + 1}")
            self.r(f"frame.block = {resume}")
            self.r(f"if not isinstance({name}, (int, float)):")
            self.r(
                f'    raise MclRuntimeError(f"M_sched_time_{arg}: '
                f'non-numeric time {{{name}!r}}")'
            )
            self.r(
                f"return (SchedCommand(kind={arg!r}, "
                f"time=float({name})), {resume})"
            )
        elif op == _OP_HOP or op == _OP_DELETE:
            ll_sym = self.pop() if arg.ll_kind == EXPR else None
            ln_sym = self.pop() if arg.ln_kind == EXPR else None
            self.flush_to_stack()
            # Materialize in push (= interpreter evaluation) order.
            ln = (
                f"_nav({self.materialize(ln_sym)})"
                if ln_sym is not None
                else '"*"'
            )
            ll = (
                f"_nav({self.materialize(ll_sym)})"
                if ll_sym is not None
                else '"*"'
            )
            resume = self.resume_index(pc + 1)
            ctor = "HopCommand" if op == _OP_HOP else "DeleteCommand"
            self.r(f"frame.pc = {pc + 1}")
            self.r(f"frame.block = {resume}")
            self.r(
                f"return ({ctor}(ln={ln}, ll={ll}, "
                f"ldir={arg.ldir!r}), {resume})"
            )
        else:  # _OP_CREATE
            self.flush_to_stack()
            template = self.gen.hoist(arg)
            resume = self.resume_index(pc + 1)
            self.r(f"frame.pc = {pc + 1}")
            self.r(f"frame.block = {resume}")
            self.r(f"return (_create({template}, stack.pop, 0), {resume})")

    # -- rendering -----------------------------------------------------------

    def render(self, index: int) -> str:
        """The block as one Python function definition."""
        out = [
            f"def _b{index}(frame, stack, M, N, netvar, call_native):"
        ]
        run: list[str] = []

        def close_run():
            if not run:
                return
            out.append("    try:")
            out.extend(f"        {line}" for line in run)
            out.append("    except _ERRS as _e:")
            out.append(
                "        raise MclRuntimeError(_PNAME + str(_e)) from _e"
            )
            run.clear()

        for channel, line in self.lines:
            if channel == "w":
                run.append(line)
            else:
                close_run()
                out.append(f"    {line}")
        close_run()
        return "\n".join(out)


class _ProgramGen:
    """Codegen driver: partitions a program and renders every block."""

    def __init__(self, program: Program):
        self.program = program
        code = program._dispatch
        if code is None:
            code = _build_dispatch(program)
        self.code = code
        self.ncode = len(code)
        self.ranges = _partition(code)
        self.block_of_pc = {
            start: index for index, (start, _) in enumerate(self.ranges)
        }
        self.ntemp = 0
        #: Non-literal constants (templates, folded objects) hoisted
        #: into the exec namespace as ``_A<n>``.
        self.hoisted: dict[int, tuple[str, Any]] = {}

    def hoist(self, value: Any) -> str:
        entry = self.hoisted.get(id(value))
        if entry is None:
            entry = (f"_A{len(self.hoisted)}", value)
            self.hoisted[id(value)] = entry
        return entry[0]

    def compile(self) -> CompiledBlocks:
        pieces = []
        for index, (start, end) in enumerate(self.ranges):
            self.ntemp = 0
            gen = _BlockGen(self, start, end)
            gen.emit_block()
            pieces.append(gen.render(index))
        source = "\n\n".join(pieces)
        namespace: dict[str, Any] = {
            "MclRuntimeError": MclRuntimeError,
            "DoneCommand": DoneCommand,
            "SchedCommand": SchedCommand,
            "HopCommand": HopCommand,
            "DeleteCommand": DeleteCommand,
            "_create": _create_command,
            "_nav": _nav_name,
            "_div": _div,
            "_ci": _coerce_index,
            "_ERRS": _ERRS,
            "_PNAME": f"{self.program.name}: ",
        }
        for name, value in self.hoisted.values():
            namespace[name] = value
        for index in range(len(self.ranges)):
            namespace[f"_N{index}"] = (None, index)
        exec(  # noqa: S102 - the source is generated from validated bytecode
            compile(
                source, f"<mcl-closures:{self.program.name}>", "exec"
            ),
            namespace,
        )
        blocks = [
            (namespace[f"_b{index}"], end - start)
            for index, (start, end) in enumerate(self.ranges)
        ]
        entry_pc = [start for start, _ in self.ranges]
        return CompiledBlocks(
            blocks, entry_pc, self.block_of_pc, self.ncode, source
        )


def compile_blocks(program: Program) -> CompiledBlocks:
    """Compile ``program`` to basic-block closures, cached on the
    program next to its ``_dispatch`` table (one build per compiled
    program for its whole lifetime, shared through the program cache)."""
    compiled = program._closures
    if compiled is None:
        compiled = _ProgramGen(program).compile()
        program._closures = compiled
    return compiled


def run(
    frame: Frame,
    messenger_vars: dict,
    node_vars: dict,
    netvar: Callable[[str], Any],
    call_native: Callable[[str, list], Any],
    max_instructions: int = 1_000_000,
    opcounts: Optional[dict] = None,
) -> Command:
    """Execute until the next preemption point via compiled closures.

    Drop-in replacement for :func:`.vm.run` — same signature, same
    Command stream, same ``instructions`` accounting, same frame state
    at every yield.  When ``opcounts`` is requested, the shared
    reference counting path runs instead (identical to the
    interpreter's behaviour for instrumented runs).
    """
    if opcounts is not None:
        return _run_counting(
            frame,
            messenger_vars,
            node_vars,
            netvar,
            call_native,
            max_instructions,
            opcounts,
        )

    program = frame.program
    compiled = program._closures
    if compiled is None:
        compiled = compile_blocks(program)
    pc = frame.pc
    if pc >= compiled.ncode:
        # Fell off the end of the program: implicit return.
        return DoneCommand()
    index = frame.block
    if (
        index < 0
        or index >= len(compiled.entry_pc)
        or compiled.entry_pc[index] != pc
    ):
        index = compiled.block_of_pc.get(pc, -1)
        if index < 0:
            raise MclRuntimeError(
                f"{program.name}: cannot resume at pc={pc} "
                "(not a basic-block boundary)"
            )
    blocks = compiled.blocks
    stack = frame.stack
    executed = 0
    while True:
        fn, count = blocks[index]
        executed += count
        command, index = fn(
            frame, stack, messenger_vars, node_vars, netvar, call_native
        )
        if command is not None:
            command.instructions = executed
            return command
        if executed >= max_instructions:
            frame.pc = compiled.entry_pc[index]
            frame.block = index
            raise MclRuntimeError(
                f"{program.name}: exceeded {max_instructions} instructions "
                "without reaching a preemption point (infinite loop?)"
            )
