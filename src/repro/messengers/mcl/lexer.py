"""Lexer for MCL, the Messenger Control Language.

MCL is the C subset the paper describes in §2.1: computational
statements (assignment, arithmetic, control flow), the navigational
statements ``hop``/``create``/``delete``, and invocation of native-mode
functions.  This module turns source text into a token stream; the
parser consumes it.

Token kinds
-----------
``IDENT`` identifiers, ``NUMBER`` int/float literals, ``STRING`` quoted
strings, ``NETVAR`` ``$``-prefixed network variables, punctuation and
operator tokens by their spelling, and keywords (``if``, ``while``,
``hop``, …) as kind == spelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "if",
        "else",
        "while",
        "for",
        "break",
        "continue",
        "return",
        "node",
        "hop",
        "create",
        "delete",
        "mod",
        "and",
        "or",
        "not",
        "ALL",
    }
)

# Multi-character operators first so maximal munch works.
_OPERATORS = (
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "(",
    ")",
    "{",
    "}",
    ",",
    ";",
    "~",
    "[",
    "]",
)


class LexError(SyntaxError):
    """Bad character or malformed literal in MCL source."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """One lexical unit: ``kind``, source ``text``, and position."""

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize MCL source; raises :class:`LexError` on bad input."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    position = 0
    line = 1
    line_start = 0
    length = len(source)

    def column() -> int:
        return position - line_start + 1

    while position < length:
        char = source[position]

        # -- whitespace ----------------------------------------------------
        if char == "\n":
            position += 1
            line += 1
            line_start = position
            continue
        if char in " \t\r":
            position += 1
            continue

        # -- comments ----------------------------------------------------
        if source.startswith("//", position):
            end = source.find("\n", position)
            position = length if end < 0 else end
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end < 0:
                raise LexError("unterminated comment", line, column())
            line += source.count("\n", position, end)
            newline = source.rfind("\n", position, end)
            if newline >= 0:
                line_start = newline + 1
            position = end + 2
            continue

        # -- string literals ---------------------------------------------
        if char == '"':
            end = position + 1
            chunks = []
            while end < length and source[end] != '"':
                if source[end] == "\n":
                    raise LexError("newline in string", line, column())
                if source[end] == "\\" and end + 1 < length:
                    escape = source[end + 1]
                    chunks.append(
                        {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(
                            escape, escape
                        )
                    )
                    end += 2
                else:
                    chunks.append(source[end])
                    end += 1
            if end >= length:
                raise LexError("unterminated string", line, column())
            yield Token("STRING", "".join(chunks), line, column())
            position = end + 1
            continue

        # -- numbers ------------------------------------------------------
        if char.isdigit() or (
            char == "."
            and position + 1 < length
            and source[position + 1].isdigit()
        ):
            end = position
            seen_dot = False
            while end < length and (
                source[end].isdigit() or (source[end] == "." and not seen_dot)
            ):
                if source[end] == ".":
                    seen_dot = True
                end += 1
            # exponent part
            if end < length and source[end] in "eE":
                exp = end + 1
                if exp < length and source[exp] in "+-":
                    exp += 1
                if exp < length and source[exp].isdigit():
                    while exp < length and source[exp].isdigit():
                        exp += 1
                    end = exp
                    seen_dot = True
            yield Token("NUMBER", source[position:end], line, column())
            position = end
            continue

        # -- network variables ($address, $last, ...) ----------------------
        if char == "$":
            end = position + 1
            while end < length and (
                source[end].isalnum() or source[end] == "_"
            ):
                end += 1
            if end == position + 1:
                raise LexError("bare '$'", line, column())
            yield Token("NETVAR", source[position + 1 : end], line, column())
            position = end
            continue

        # -- identifiers / keywords -----------------------------------------
        if char.isalpha() or char == "_":
            end = position
            while end < length and (
                source[end].isalnum() or source[end] == "_"
            ):
                end += 1
            text = source[position:end]
            kind = text if text in KEYWORDS else "IDENT"
            yield Token(kind, text, line, column())
            position = end
            continue

        # -- operators & punctuation -------------------------------------------
        for op in _OPERATORS:
            if source.startswith(op, position):
                yield Token(op, op, line, column())
                position += len(op)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line, column())

    yield Token("EOF", "", line, column())
