"""MCL — the Messenger Control Language.

The C-subset scripting language Messengers are written in (§2.1 of the
paper): lexer → parser → bytecode compiler → stack-VM interpreter, plus
the command objects through which the VM talks to its daemon.

Two interchangeable execution backends share the bytecode:

* :mod:`.vm` (default, ``mcl_backend="interp"``) — the reference
  integer-opcode interpreter with per-instruction cost charging.
* :mod:`.closures` (``mcl_backend="closures"``) — a basic-block
  superinstruction compiler: each program is partitioned once at
  hop/create/delete/sched/jump boundaries and every block is ``exec``'d
  into a single Python closure, eliminating per-opcode dispatch.

The backends are bit-identical by contract — same ``Command`` stream,
same per-yield ``instructions`` counts, same frame state, same golden
trace digests — so picking one is purely a wall-clock decision.  Select
via ``Simulator(mcl_backend=...)``, ``ClusterConfig(mcl_backend=...)``,
or process-wide with :func:`repro.des.mcl_backend_default`.
"""

from .ast import Script
from .bytecode import (
    Command,
    CreateCommand,
    CreateItemSpec,
    DeleteCommand,
    DoneCommand,
    HopCommand,
    Instr,
    Program,
    SchedCommand,
)
from .compiler import CompileError, compile_all, compile_function, compile_source
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse, parse_function
from .vm import Frame, MclRuntimeError, run

__all__ = [
    "Command",
    "CompileError",
    "CreateCommand",
    "CreateItemSpec",
    "DeleteCommand",
    "DoneCommand",
    "Frame",
    "HopCommand",
    "Instr",
    "LexError",
    "MclRuntimeError",
    "ParseError",
    "Program",
    "SchedCommand",
    "Script",
    "Token",
    "compile_all",
    "compile_function",
    "compile_source",
    "parse",
    "parse_function",
    "run",
    "tokenize",
]
