"""MCL — the Messenger Control Language.

The C-subset scripting language Messengers are written in (§2.1 of the
paper): lexer → parser → bytecode compiler → stack-VM interpreter, plus
the command objects through which the VM talks to its daemon.
"""

from .ast import Script
from .bytecode import (
    Command,
    CreateCommand,
    CreateItemSpec,
    DeleteCommand,
    DoneCommand,
    HopCommand,
    Instr,
    Program,
    SchedCommand,
)
from .compiler import CompileError, compile_all, compile_function, compile_source
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse, parse_function
from .vm import Frame, MclRuntimeError, run

__all__ = [
    "Command",
    "CompileError",
    "CreateCommand",
    "CreateItemSpec",
    "DeleteCommand",
    "DoneCommand",
    "Frame",
    "HopCommand",
    "Instr",
    "LexError",
    "MclRuntimeError",
    "ParseError",
    "Program",
    "SchedCommand",
    "Script",
    "Token",
    "compile_all",
    "compile_function",
    "compile_source",
    "parse",
    "parse_function",
    "run",
    "tokenize",
]
