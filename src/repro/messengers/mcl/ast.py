"""Abstract syntax tree for MCL.

Plain dataclasses; the compiler walks these to emit bytecode.  Navigation
statements carry :class:`NavSpec` / :class:`CreateItem` records whose
fields are either expression nodes (evaluated at run time) or the marker
singletons :data:`WILDCARD` / :data:`UNNAMED`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "WILDCARD",
    "UNNAMED",
    "Assign",
    "AssignExpr",
    "BinOp",
    "Block",
    "Break",
    "Call",
    "Continue",
    "Create",
    "CreateItem",
    "Delete",
    "ExprStmt",
    "For",
    "Function",
    "Hop",
    "If",
    "Index",
    "IndexAssign",
    "NavSpec",
    "NetVar",
    "Num",
    "Return",
    "Script",
    "Str",
    "UnOp",
    "Var",
    "While",
]


class _Marker:
    """Singleton marker used for ``*`` and ``~`` in navigation specs."""

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: The ``*`` wildcard in a navigation spec field.
WILDCARD = _Marker("WILDCARD")
#: The ``~`` (unnamed) marker in a create spec field.
UNNAMED = _Marker("UNNAMED")

NavValue = Union["Expr", _Marker, str]


# -- expressions ----------------------------------------------------------


@dataclass
class Num:
    value: float


@dataclass
class Str:
    value: str


@dataclass
class Var:
    """A messenger or node variable reference (resolved at run time)."""

    name: str


@dataclass
class NetVar:
    """A ``$``-prefixed network variable (``$address``, ``$last``, …)."""

    name: str


@dataclass
class Call:
    """Invocation of a native-mode function (§2.1, statement type 3)."""

    name: str
    args: list


@dataclass
class Index:
    """Subscript expression ``base[index]`` (lists, dicts, arrays)."""

    base: "Expr"
    index: "Expr"


@dataclass
class IndexAssign:
    """``name[index] op expr`` where op ∈ {=, +=, -=, *=, /=}.

    Augmented forms evaluate ``index`` twice; keep index expressions
    side-effect free (as C programmers do anyway).
    """

    target: str
    index: "Expr"
    op: str
    expr: "Expr"


@dataclass
class AssignExpr:
    """C assignment-as-expression: ``(task = next_task())`` evaluates to
    the assigned value — the idiom Figure 3 of the paper relies on."""

    target: str
    expr: "Expr"


@dataclass
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass
class UnOp:
    op: str
    operand: "Expr"


Expr = Union[Num, Str, Var, NetVar, Call, BinOp, UnOp, AssignExpr, Index]


# -- navigation specs ---------------------------------------------------------


@dataclass
class NavSpec:
    """Destination specification of ``hop`` / ``delete``: (ln, ll, ldir).

    Defaults are all-wildcards, matching the paper's ``hop()``.
    ``ldir`` is a literal direction character (``+``/``-``/``*``).
    """

    ln: NavValue = WILDCARD
    ll: NavValue = WILDCARD
    ldir: str = "*"


@dataclass
class CreateItem:
    """One new-node specification of ``create``.

    ``(ln, ll, ldir)`` describe the new logical node and its connecting
    link; ``(dn, dl, ddir)`` select the daemon to place it on.  Logical
    fields default to ``~`` (unnamed), daemon fields to ``*`` (§2.1).
    """

    ln: NavValue = UNNAMED
    ll: NavValue = UNNAMED
    ldir: str = "*"
    dn: NavValue = WILDCARD
    dl: NavValue = WILDCARD
    ddir: str = "*"


# -- statements ------------------------------------------------------------------


@dataclass
class Block:
    statements: list


@dataclass
class Assign:
    """``target op expr`` where op ∈ {=, +=, -=, *=, /=}."""

    target: str
    op: str
    expr: Expr
    is_netvar: bool = False


@dataclass
class ExprStmt:
    expr: Expr


@dataclass
class If:
    condition: Expr
    then_body: Block
    else_body: Optional[Block] = None


@dataclass
class While:
    condition: Expr
    body: Block = field(default_factory=lambda: Block([]))


@dataclass
class For:
    init: Optional[object]
    condition: Optional[Expr]
    step: Optional[object]
    body: Block


@dataclass
class Break:
    pass


@dataclass
class Continue:
    pass


@dataclass
class Return:
    expr: Optional[Expr] = None


@dataclass
class Hop:
    spec: NavSpec


@dataclass
class Delete:
    spec: NavSpec


@dataclass
class Create:
    items: list
    all_daemons: bool = False


# -- top level ----------------------------------------------------------------------


@dataclass
class Function:
    """One Messenger behavior: parameters, node-variable declarations,
    and the statement body."""

    name: str
    params: list
    node_vars: list
    body: Block


@dataclass
class Script:
    """A compilation unit: one or more functions."""

    functions: dict

    def function(self, name: Optional[str] = None) -> Function:
        """Look up a function; with no name, the single/first one."""
        if name is None:
            if len(self.functions) != 1:
                raise KeyError(
                    "script defines several functions "
                    f"({sorted(self.functions)}); name one explicitly"
                )
            return next(iter(self.functions.values()))
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(
                f"no function {name!r} in script "
                f"(have {sorted(self.functions)})"
            ) from None
