"""Bytecode representation for compiled MCL scripts.

The paper (§2.1) notes Messenger scripts "are compiled into a form of
byte code for more efficient transport and parsing".  Our bytecode is a
flat list of :class:`Instr` records executed by a stack VM
(:mod:`repro.messengers.mcl.vm`).  Navigation instructions carry
*templates* describing which spec fields are wildcards and which are
computed; computed values are evaluated onto the stack just before the
instruction.

The VM communicates with its daemon by returning :class:`Command`
objects at every preemption point (navigation, scheduling, termination)
— exactly the points at which the paper's modified non-preemptive
scheduler may switch Messengers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "Instr",
    "Program",
    "NavTemplate",
    "CreateTemplate",
    "CreateItemTemplate",
    "Command",
    "HopCommand",
    "CreateCommand",
    "CreateItemSpec",
    "DeleteCommand",
    "SchedCommand",
    "DoneCommand",
    "OPCODES",
]

#: All valid opcodes (documentation + validation).
OPCODES = frozenset(
    {
        "CONST",  # push constant
        "LOAD",  # push variable (messenger- or node-scoped)
        "STORE",  # pop into variable
        "LOADNET",  # push network variable ($address, $last, ...)
        "BINOP",  # pop two, push result ("[]" = subscript)
        "STORE_INDEX",  # pop value, index, container; container[index]=v
        "UNOP",  # pop one, push result
        "JMP",  # unconditional jump
        "JF",  # pop; jump if falsy
        "CALL",  # native function call; arg = (name, argc)
        "POP",  # discard top of stack
        "HOP",  # navigate; arg = NavTemplate
        "DELETE",  # navigate deleting links; arg = NavTemplate
        "CREATE",  # create nodes/links; arg = CreateTemplate
        "SCHED",  # virtual-time suspension; arg = "abs" | "dlt"
        "RET",  # terminate the script
    }
)


@dataclass
class Instr:
    """One bytecode instruction."""

    op: str
    arg: Any = None

    def __repr__(self) -> str:
        return f"{self.op} {self.arg!r}" if self.arg is not None else self.op


# -- navigation templates --------------------------------------------------

#: Field kinds within a template.
WILD = "wild"  # `*`
UNNAMED_KIND = "unnamed"  # `~`
EXPR = "expr"  # value is on the stack


@dataclass(frozen=True)
class NavTemplate:
    """Static shape of a hop/delete spec.

    ``ln_kind``/``ll_kind`` say whether the node/link fields are
    wildcards or stack-supplied values; ``ldir`` is always literal.
    Stack order (pushed first → last): ln value (if expr), ll value
    (if expr).
    """

    ln_kind: str = WILD
    ll_kind: str = WILD
    ldir: str = "*"


@dataclass(frozen=True)
class CreateItemTemplate:
    """Static shape of one create item (six fields)."""

    ln_kind: str = UNNAMED_KIND
    ll_kind: str = UNNAMED_KIND
    ldir: str = "*"
    dn_kind: str = WILD
    dl_kind: str = WILD
    ddir: str = "*"

    @property
    def expr_fields(self) -> tuple:
        """Which value fields are stack-supplied, in push order."""
        fields = []
        if self.ln_kind == EXPR:
            fields.append("ln")
        if self.ll_kind == EXPR:
            fields.append("ll")
        if self.dn_kind == EXPR:
            fields.append("dn")
        if self.dl_kind == EXPR:
            fields.append("dl")
        return tuple(fields)


@dataclass(frozen=True)
class CreateTemplate:
    items: tuple
    all_daemons: bool = False


# -- commands (VM → daemon) -------------------------------------------------------


@dataclass
class Command:
    """Base class for VM yields; ``instructions`` is the count executed
    since the previous yield (the daemon charges interpretation cost
    from it)."""

    instructions: int = 0


@dataclass
class HopCommand(Command):
    """Replicate to all matching neighbors; original ceases (§2.1)."""

    ln: Any = "*"
    ll: Any = "*"
    ldir: str = "*"


@dataclass
class DeleteCommand(Command):
    """Like hop, but deletes traversed links (and orphaned nodes)."""

    ln: Any = "*"
    ll: Any = "*"
    ldir: str = "*"


@dataclass
class CreateItemSpec:
    """One fully resolved create item."""

    ln: Any = None  # None = unnamed
    ll: Any = None
    ldir: str = "*"
    dn: Any = "*"
    dl: Any = "*"
    ddir: str = "*"


@dataclass
class CreateCommand(Command):
    items: list = field(default_factory=list)
    all_daemons: bool = False


@dataclass
class SchedCommand(Command):
    """``M_sched_time_abs`` / ``M_sched_time_dlt`` (§2.2)."""

    kind: str = "abs"  # "abs" | "dlt"
    time: float = 0.0


@dataclass
class DoneCommand(Command):
    """Script finished; the Messenger ceases to exist."""

    value: Any = None


class Program:
    """A compiled Messenger behavior."""

    def __init__(
        self,
        name: str,
        params: list,
        node_vars: frozenset,
        instructions: list,
        source: Optional[str] = None,
    ):
        self.name = name
        self.params = list(params)
        self.node_vars = frozenset(node_vars)
        self.instructions = list(instructions)
        self.source = source
        #: Precomputed ``(int_opcode, arg)`` dispatch table, built lazily
        #: by the VM on first execution (the VM owns the opcode mapping).
        self._dispatch: Optional[list] = None
        #: Compiled basic-block closures, built lazily by the closures
        #: backend (:mod:`repro.messengers.mcl.closures`) on first
        #: execution under ``mcl_backend="closures"``.
        self._closures: Any = None
        for instr in self.instructions:
            if instr.op not in OPCODES:
                raise ValueError(f"bad opcode {instr.op!r}")

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def code_bytes(self) -> int:
        """Rough transport size of the bytecode.

        Only used for statistics: per the paper's shared-filesystem
        design decision, code is *not* carried on hops (§4).
        """
        return 8 * len(self.instructions)

    def disassemble(self) -> str:
        """Human-readable listing (for tests and debugging)."""
        lines = [f"; {self.name}({', '.join(self.params)})"]
        if self.node_vars:
            lines.append(f"; node vars: {', '.join(sorted(self.node_vars))}")
        for index, instr in enumerate(self.instructions):
            lines.append(f"{index:4d}  {instr!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Program {self.name!r} ({len(self.instructions)} instrs)>"
