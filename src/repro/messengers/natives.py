"""Native-mode functions: the MESSENGERS ↔ environment interface.

Function-invocation statements "permit the dynamic loading and invocation
of precompiled C functions to be executed in native mode" (§2.1).  Here
natives are Python callables registered by name; they receive a
:class:`NativeEnv` giving access to the Messenger's variables, the
current node's variables, and cost-charging hooks.

Two guarantees mirror the paper:

* a native function runs *atomically* — the daemon never interrupts it
  (the modified non-preemptive scheduling policy), so natives can guard
  shared node state without locks;
* time charged via :meth:`NativeEnv.charge_flops` /
  :meth:`NativeEnv.charge_seconds` is paid as one uninterrupted busy
  period on the daemon's host.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

__all__ = ["NativeEnv", "NativeRegistry", "UnknownNativeError"]


class UnknownNativeError(KeyError):
    """A script invoked a native function that was never registered."""


class NativeEnv:
    """What a native function can see and touch."""

    def __init__(self, system, daemon, messenger):
        self.system = system
        self.daemon = daemon
        self.messenger = messenger
        #: Accumulated charges by cost category (see repro.obs.CATEGORIES);
        #: the daemon drains this after each execution slice.
        self._charges: dict[str, float] = {}

    # -- state access ---------------------------------------------------------

    @property
    def node(self):
        """The logical node the calling Messenger currently occupies."""
        return self.messenger.node

    @property
    def node_vars(self) -> dict:
        """Shared node variables (communication/coordination, §2.1)."""
        return self.messenger.node.variables

    @property
    def msgr_vars(self) -> dict:
        """The calling Messenger's private variables (computation)."""
        return self.messenger.variables

    @property
    def now(self) -> float:
        """Current simulated (wall-clock) time."""
        return self.system.sim.now

    @property
    def vt(self) -> float:
        """The calling Messenger's local virtual time."""
        return self.messenger.vt

    @property
    def host(self):
        """The simulated host under the current daemon."""
        return self.daemon.host

    # -- cost charging ------------------------------------------------------------

    def charge_seconds(
        self, seconds: float, category: str = "compute"
    ) -> None:
        """Charge raw CPU seconds for work done in this native call.

        ``category`` attributes the time in the cost ledger when a
        metrics registry is attached (default: application compute).
        """
        if seconds < 0:
            raise ValueError(f"negative charge {seconds}")
        self._charges[category] = (
            self._charges.get(category, 0.0) + seconds
        )

    def charge_flops(
        self, flops: float, working_set_bytes: float = 0.0
    ) -> None:
        """Charge a computation through the host's cache-aware model."""
        self.charge_seconds(
            self.daemon.host.compute_seconds(flops, working_set_bytes)
        )

    def charge_memcpy(self, nbytes: float) -> None:
        """Charge a raw memory copy (e.g. block into a node variable).

        This is a plain memcpy at local rates — *not* the marshalling
        copy message-passing pays; see
        ``CostModel.msgr_state_local_per_byte_s``.
        """
        self.charge_seconds(
            nbytes * self.system.costs.msgr_state_local_per_byte_s,
            category="copies",
        )

    def drain_charge(self) -> float:
        """Total seconds charged; resets the accumulator (daemon use)."""
        return sum(self.drain_charges().values())

    def drain_charges(self) -> dict:
        """Charges by cost category; resets the accumulator (daemon use)."""
        charges, self._charges = self._charges, {}
        return charges


class NativeRegistry:
    """Name → native function table for one MESSENGERS system."""

    def __init__(self, include_builtins: bool = True):
        self._functions: dict[str, Callable] = {}
        if include_builtins:
            self._register_builtins()

    def register(
        self, name_or_function=None, *, name: Optional[str] = None
    ):
        """Register a native; usable as a decorator or a plain call.

        ::

            @natives.register
            def compute(env, task): ...

            natives.register(my_callable, name="next_task")
        """
        if name_or_function is None:
            return lambda function: self.register(function, name=name)
        function = name_or_function
        key = name or function.__name__
        self._functions[key] = function
        return function

    def lookup(self, name: str) -> Callable:
        try:
            return self._functions[name]
        except KeyError:
            raise UnknownNativeError(
                f"native function {name!r} is not registered "
                f"(have: {sorted(self._functions)})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    @property
    def names(self) -> list[str]:
        return sorted(self._functions)

    # -- built-ins --------------------------------------------------------------

    def _register_builtins(self) -> None:
        """Small math/utility natives every script can rely on."""

        def _abs(env, x):
            return abs(x)

        def _min(env, *args):
            return min(args)

        def _max(env, *args):
            return max(args)

        def _floor(env, x):
            return math.floor(x)

        def _ceil(env, x):
            return math.ceil(x)

        def _sqrt(env, x):
            return math.sqrt(x)

        def _strcat(env, *parts):
            return "".join(str(part) for part in parts)

        def _log(env, *parts):
            env.system.log(
                f"[vt={env.vt:g} t={env.now:.6f}s "
                f"{env.node.display_name}@{env.daemon.host.name} "
                f"m#{env.messenger.id}] "
                + " ".join(str(part) for part in parts)
            )
            return None

        def _list_new(env, n, fill=0):
            return [fill] * int(n)

        def _len(env, container):
            return len(container)

        def _append(env, container, value):
            container.append(value)
            return len(container)

        def _node_get(env, name, default=None):
            return env.node_vars.get(name, default)

        def _node_set(env, name, value):
            env.node_vars[name] = value
            return value

        self._functions.update(
            {
                "abs": _abs,
                "min": _min,
                "max": _max,
                "floor": _floor,
                "ceil": _ceil,
                "sqrt": _sqrt,
                "strcat": _strcat,
                "M_log": _log,
                "list_new": _list_new,
                "len": _len,
                "append": _append,
                "node_get": _node_get,
                "node_set": _node_set,
            }
        )
