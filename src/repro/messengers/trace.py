"""Execution tracing and logical-network visualization.

Attach a :class:`Tracer` to a running system to record every Messenger
movement and daemon action with (simulated time, virtual time)
coordinates::

    tracer = Tracer.attach(system)
    system.inject(...)
    system.run_to_quiescence()
    print(tracer.timeline())
    print(tracer.journey(messenger_id=1))

:func:`to_dot` / :func:`to_networkx` export the logical network for
visualization — the closest modern equivalent of the graphics tool the
paper mentions alongside ``net_builder`` (§3.2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional

from ..obs import InstantEvent
from .logical import LogicalNetwork

__all__ = ["TraceEvent", "Tracer", "to_dot", "to_networkx"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence."""

    time: float  # simulated wall-clock
    vt: float  # messenger's virtual time
    kind: str  # slice/hop/create/delete/arrive/done/lost/sched/wake
    messenger: int
    program: str
    daemon: str
    node: str
    detail: str = ""

    def __str__(self) -> str:
        return (
            f"t={self.time * 1e3:9.3f}ms vt={self.vt:<6g} "
            f"m#{self.messenger:<4d} {self.program:<16} "
            f"{self.kind:<7} {self.node}@{self.daemon} {self.detail}"
        )


class Tracer:
    """Collects :class:`TraceEvent` records from one system.

    The tracer is a *consumer* of the shared
    :class:`~repro.obs.InstantEvent` model: the system builds one event
    per occurrence and fans it out to the tracer and (when attached)
    the metrics registry, so the two views of a run can never disagree.
    """

    def __init__(self, capacity: Optional[int] = None):
        self.events: list[TraceEvent] = []
        self.capacity = capacity
        self.dropped = 0

    @classmethod
    def attach(cls, system, capacity: Optional[int] = None) -> "Tracer":
        """Create a tracer and register it on ``system``."""
        tracer = cls(capacity)
        system.tracer = tracer
        return tracer

    def consume(self, event: InstantEvent) -> None:
        """Ingest one :class:`~repro.obs.InstantEvent` from the system."""
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        args = event.args or {}
        self.events.append(
            TraceEvent(
                time=event.t,
                vt=args.get("vt", 0.0),
                kind=event.name,
                messenger=args.get("messenger", -1),
                program=args.get("program", "?"),
                daemon=event.track,
                node=args.get("node", "-"),
                detail=args.get("detail", ""),
            )
        )

    def record(
        self,
        sim_time: float,
        messenger,
        kind: str,
        daemon: str,
        detail: str = "",
    ) -> None:
        """Record one occurrence (builds the obs event, then consumes it)."""
        self.consume(
            InstantEvent(
                track=daemon,
                name=kind,
                t=sim_time,
                args={
                    "messenger": messenger.id,
                    "program": messenger.program.name,
                    "vt": messenger.vt,
                    "node": (
                        messenger.node.display_name
                        if messenger.node
                        else "-"
                    ),
                    "detail": detail,
                },
            )
        )

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def journey(self, messenger_id: int) -> list[TraceEvent]:
        """Every recorded step of one Messenger, in order."""
        return [e for e in self.events if e.messenger == messenger_id]

    def counts(self) -> dict:
        """Event-kind histogram."""
        return dict(Counter(e.kind for e in self.events))

    def timeline(self, limit: Optional[int] = None) -> str:
        """Human-readable chronological dump."""
        events = self.events if limit is None else self.events[:limit]
        lines = [str(e) for e in events]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more)")
        return "\n".join(lines) if lines else "(no events)"

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0


def to_dot(logical: LogicalNetwork, name: str = "logical") -> str:
    """Graphviz DOT rendering of the logical network.

    Nodes are grouped into per-daemon clusters (the daemon network is
    the placement substrate); directed logical links use arrows.
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    daemons: dict[str, list] = {}
    for node in logical.nodes:
        daemons.setdefault(node.daemon, []).append(node)
    for index, (daemon, nodes) in enumerate(sorted(daemons.items())):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{daemon}";')
        for node in nodes:
            variables = ",".join(sorted(node.variables)) or ""
            label = node.display_name + (f"\\n[{variables}]" if variables else "")
            lines.append(f'    "{node.uid}" [label="{label}"];')
        lines.append("  }")
    for link in logical.links:
        attrs = [f'label="{link.display_name}"']
        if not link.directed:
            attrs.append("dir=none")
        lines.append(
            f'  "{link.src.uid}" -> "{link.dst.uid}" '
            f"[{', '.join(attrs)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def to_networkx(logical: LogicalNetwork):
    """Export the logical network as a networkx (Multi)DiGraph.

    Undirected links become two antiparallel edges flagged
    ``directed=False``; node attributes carry daemon placement and the
    node-variable names.
    """
    import networkx as nx

    graph = nx.MultiDiGraph()
    for node in logical.nodes:
        graph.add_node(
            node.uid,
            name=node.display_name,
            daemon=node.daemon,
            variables=sorted(node.variables),
        )
    for link in logical.links:
        graph.add_edge(
            link.src.uid,
            link.dst.uid,
            key=link.uid,
            name=link.display_name,
            directed=link.directed,
        )
        if not link.directed:
            graph.add_edge(
                link.dst.uid,
                link.src.uid,
                key=-link.uid,
                name=link.display_name,
                directed=False,
            )
    return graph
