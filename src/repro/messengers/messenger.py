"""The Messenger: an autonomous self-migrating computation.

A Messenger is "a message with its own identity and behavior" (§1).  Its
migrating state is exactly:

* its compiled behavior (not carried on hops — the shared-filesystem
  optimization of §4 lets daemons load code locally);
* its *Messenger variables* (private state, §2.1);
* its interpreter frame (program counter + operand stack);
* its local virtual time.

Replication (``hop`` over several links, ``create(ALL)``) clones all of
the above.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Optional

from ..mp.buffers import estimate_size
from .logical import LogicalLink, LogicalNode
from .mcl.bytecode import Program
from .mcl.vm import Frame

__all__ = ["Messenger"]

_mids = itertools.count(1)

#: Fixed overhead of a migrating Messenger beyond its variables: frame,
#: identity, virtual-time stamp (bytes).
_HEADER_BYTES = 64


class Messenger:
    """One autonomous computation navigating the logical network."""

    __slots__ = (
        "id",
        "program",
        "frame",
        "variables",
        "vt",
        "node",
        "last_link",
        "parent_id",
        "alive",
        "suspended",
        "active",
        "hops",
        "instructions_executed",
    )

    def __init__(
        self,
        program: Program,
        variables: Optional[dict] = None,
        vt: float = 0.0,
        parent_id: Optional[int] = None,
    ):
        self.reinit(program, variables, vt, parent_id)

    def reinit(
        self,
        program: Program,
        variables: Optional[dict] = None,
        vt: float = 0.0,
        parent_id: Optional[int] = None,
    ) -> None:
        """(Re)initialise as a brand-new Messenger with a fresh identity.

        Called by ``__init__`` and by the system's free-list when a
        pooled object is reincarnated (``retain_finished=False`` scale
        mode) — every slot is overwritten, so a recycled Messenger is
        indistinguishable from a freshly allocated one.
        """
        self.id = next(_mids)
        self.program = program
        self.frame = Frame(program)
        self.variables: dict[str, Any] = dict(variables or {})
        #: Local virtual time (§2.2).
        self.vt = vt
        #: The logical node the Messenger currently occupies.
        self.node: Optional[LogicalNode] = None
        #: Name of the last traversed link — the ``$last`` network
        #: variable (§2.1).
        self.last_link: Optional[str] = None
        self.parent_id = parent_id
        self.alive = True
        #: True while parked on the conservative virtual-time queue —
        #: suspended Messengers do not count toward the active total.
        self.suspended = False
        #: True while counted in the system's active total; maintained
        #: by ``MessengersSystem.activate``/``deactivate`` so the
        #: accounting stays correct when crash recovery and a daemon
        #: both try to retire the same Messenger.
        self.active = False
        #: Lifetime statistics.
        self.hops = 0
        self.instructions_executed = 0

    # -- replication -----------------------------------------------------------

    def clone(self) -> "Messenger":
        """Replica with fresh identity and deep-copied variables.

        Deep copy matters: each replica must own its data (e.g. a matrix
        block in a messenger variable) so divergent execution cannot
        alias.
        """
        replica = Messenger(
            self.program,
            copy.deepcopy(self.variables),
            vt=self.vt,
            parent_id=self.parent_id,
        )
        replica.frame = self.frame.clone()
        replica.last_link = self.last_link
        replica.hops = self.hops
        replica.instructions_executed = self.instructions_executed
        return replica

    # -- migration accounting ------------------------------------------------------

    def state_bytes(self) -> int:
        """Bytes that migrate on a hop: variables + header, no code and
        no marshalling copies (the zero-copy property of §2.1)."""
        return _HEADER_BYTES + estimate_size(self.variables)

    def place(self, node: LogicalNode, via: Optional[LogicalLink]) -> None:
        """Arrive at ``node``, optionally via a traversed link."""
        self.node = node
        if via is not None:
            self.last_link = via.display_name
        self.hops += 1

    def kill(self) -> None:
        self.alive = False
        self.node = None

    def __repr__(self) -> str:
        where = self.node.display_name if self.node else "in transit"
        return (
            f"<Messenger #{self.id} {self.program.name!r} at {where} "
            f"vt={self.vt}>"
        )
