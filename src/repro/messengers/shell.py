"""The MESSENGERS command shell.

"Arbitrary new Messengers may also be injected by the user from the
outside (the command shell) at runtime" (§1).  The shell is a small
command interpreter over a :class:`MessengersSystem`; it is usable
programmatically (each :meth:`Shell.execute` returns the output text)
or interactively via :meth:`Shell.repl`.

Commands::

    inject <file.mcl> [arg ...]     inject a Messenger from a script file
    inject! { <source> } [arg ...]  inject inline source
    at <daemon>                     set the injection daemon
    nodes                           list logical nodes
    links                           list logical links
    messengers                      list live Messengers
    stats                           per-daemon statistics
    gvt                             virtual-time status
    run                             advance the simulation to quiescence
    help                            this text
"""

from __future__ import annotations

import shlex
from pathlib import Path

from .system import MessengersSystem

__all__ = ["Shell", "ShellError"]


class ShellError(ValueError):
    """Bad shell command."""


def _coerce(token: str):
    """Arguments on the command line become ints/floats when they look
    like numbers, strings otherwise."""
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


class Shell:
    """Interactive/programmatic front end to one MESSENGERS system."""

    def __init__(self, system: MessengersSystem):
        self.system = system
        self.current_daemon = system.daemon_names[0]

    # -- command dispatch ---------------------------------------------------

    def execute(self, command_line: str) -> str:
        """Run one command; returns its printable output."""
        line = command_line.strip()
        if not line or line.startswith("#"):
            return ""
        if line.startswith("inject!"):
            return self._inject_inline(line)
        parts = shlex.split(line)
        verb, args = parts[0], parts[1:]
        handler = getattr(self, f"_cmd_{verb}", None)
        if handler is None:
            raise ShellError(f"unknown command {verb!r} (try 'help')")
        return handler(args)

    def script(self, text: str) -> list:
        """Run a newline-separated batch of commands."""
        return [self.execute(line) for line in text.splitlines()]

    def repl(self, input_fn=input, print_fn=print) -> None:  # pragma: no cover
        """Minimal interactive loop (exit with 'quit' or EOF)."""
        while True:
            try:
                line = input_fn(f"messengers[{self.current_daemon}]> ")
            except EOFError:
                return
            if line.strip() in ("quit", "exit"):
                return
            try:
                output = self.execute(line)
            except (ShellError, Exception) as error:  # noqa: BLE001
                output = f"error: {error}"
            if output:
                print_fn(output)

    # -- commands --------------------------------------------------------------

    def _cmd_help(self, args) -> str:
        return __doc__.split("Commands::", 1)[1].strip()

    def _cmd_at(self, args) -> str:
        if len(args) != 1:
            raise ShellError("usage: at <daemon>")
        if args[0] not in self.system.daemons:
            raise ShellError(f"unknown daemon {args[0]!r}")
        self.current_daemon = args[0]
        return f"injecting at {args[0]}"

    def _cmd_inject(self, args) -> str:
        if not args:
            raise ShellError("usage: inject <file.mcl> [arg ...]")
        path = Path(args[0])
        if not path.exists():
            raise ShellError(f"no such script file: {path}")
        source = path.read_text()
        messenger = self.system.inject(
            source,
            args=tuple(_coerce(a) for a in args[1:]),
            daemon=self.current_daemon,
        )
        return f"injected messenger #{messenger.id} at {self.current_daemon}"

    def _inject_inline(self, line: str) -> str:
        body = line[len("inject!") :].strip()
        if not (body.startswith("{") and "}" in body):
            raise ShellError("usage: inject! { <mcl source> } [arg ...]")
        close = body.rfind("}")
        source = body[1:close]
        rest = shlex.split(body[close + 1 :])
        messenger = self.system.inject(
            source,
            args=tuple(_coerce(a) for a in rest),
            daemon=self.current_daemon,
        )
        return f"injected messenger #{messenger.id} at {self.current_daemon}"

    def _cmd_nodes(self, args) -> str:
        lines = []
        for node in sorted(
            self.system.logical.nodes,
            key=lambda n: (n.daemon, n.display_name),
        ):
            variables = ", ".join(sorted(node.variables)) or "-"
            lines.append(
                f"{node.display_name:<12} @ {node.daemon:<8} "
                f"degree={node.degree()} vars: {variables}"
            )
        return "\n".join(lines) if lines else "(no nodes)"

    def _cmd_links(self, args) -> str:
        lines = []
        for link in self.system.logical.links:
            arrow = "->" if link.directed else "--"
            lines.append(
                f"{link.display_name:<10} "
                f"{link.src.display_name} {arrow} {link.dst.display_name}"
            )
        return "\n".join(lines) if lines else "(no links)"

    def _cmd_messengers(self, args) -> str:
        alive = self.system.alive_messengers
        if not alive:
            return "(no live messengers)"
        return "\n".join(
            f"#{m.id} {m.program.name} at "
            f"{m.node.display_name if m.node else '(transit)'} vt={m.vt}"
            for m in alive
        )

    def _cmd_stats(self, args) -> str:
        lines = []
        for name, daemon in sorted(self.system.daemons.items()):
            stats = daemon.stats
            lines.append(
                f"{name}: slices={stats.executed_slices} "
                f"instr={stats.instructions} "
                f"hops(l/r)={stats.hops_out_local}/{stats.hops_out_remote} "
                f"arrivals={stats.arrivals} "
                f"created(n/l)={stats.nodes_created}/{stats.links_created}"
            )
        return "\n".join(lines)

    def _cmd_gvt(self, args) -> str:
        vtime = self.system.vtime
        return (
            f"gvt={vtime.gvt} pending={vtime.pending_count} "
            f"rounds={vtime.rounds}"
        )

    def _cmd_run(self, args) -> str:
        now = self.system.run_to_quiescence()
        return f"quiescent at t={now:.6f}s"
