"""Shared-medium Ethernet segment.

The paper's cluster is a single 10 Mb/s Ethernet LAN: one shared broadcast
medium that serializes all frames.  We model exactly that — a single
capacity-1 resource held for each frame's transmission time — because the
serialization is what makes centralized communication patterns (PVM's
manager) degrade with processor count, one of the effects behind
Figure 7.

Frames above the MTU are fragmented; each fragment re-arbitrates for the
medium, which lets short frames interleave with bulk transfers the way
real Ethernet does.
"""

from __future__ import annotations

import math

from ..des import Resource, Simulator
from .costs import CostModel

__all__ = ["EthernetSegment"]


class EthernetSegment:
    """A single shared broadcast domain."""

    #: Maximum payload carried by one frame (classic Ethernet MTU).
    MTU = 1500

    def __init__(self, sim: Simulator, costs: CostModel, name: str = "lan0"):
        self.sim = sim
        self.costs = costs
        self.name = name
        self._medium = Resource(sim, capacity=1)
        #: Total bytes carried, for utilization reporting.
        self.bytes_carried: int = 0
        #: Total frames (fragments) carried.
        self.frames_carried: int = 0
        #: Accumulated medium-busy time.
        self.busy_seconds: float = 0.0

    def transmit(self, size_bytes: int):
        """Process generator: occupy the medium while sending a payload.

        Completes when the last fragment has been received at the far
        end; the caller layers endpoint costs on top.
        """
        if size_bytes < 0:
            raise ValueError(f"negative frame size {size_bytes}")
        fragments = max(1, math.ceil(size_bytes / self.MTU))
        last = size_bytes - (fragments - 1) * self.MTU

        def _transmit(sim):
            for index in range(fragments):
                payload = self.MTU if index < fragments - 1 else last
                requested = sim.now
                req = self._medium.request()
                yield req
                try:
                    duration = self.costs.wire_seconds(payload)
                    start = sim.now
                    yield sim.timeout(duration)
                    self.busy_seconds += duration
                    self.bytes_carried += payload
                    self.frames_carried += 1
                    metrics = sim.obs
                    if metrics is not None:
                        metrics.count("netsim.eth.frames")
                        metrics.count("netsim.eth.bytes", payload)
                        stall = start - requested
                        if stall > 0:
                            # Contention: time spent waiting for the
                            # shared medium (not charged to the ledger —
                            # it overlaps other senders' wire time).
                            metrics.count("netsim.eth.stall_seconds", stall)
                            metrics.observe("netsim.eth.stall", stall)
                        metrics.span(
                            self.name, "frame", "wire", start, sim.now,
                        )
                finally:
                    self._medium.release(req)

        return _transmit(self.sim)

    def utilization(self) -> float:
        """Fraction of elapsed virtual time the medium was busy."""
        if self.sim.now == 0:
            return 0.0
        return self.busy_seconds / self.sim.now

    def __repr__(self) -> str:
        return (
            f"<EthernetSegment {self.name} frames={self.frames_carried} "
            f"bytes={self.bytes_carried}>"
        )
