"""Simulated hosts: a CPU with a cache-aware cost model plus NIC queues.

A :class:`Host` serializes computation on a single CPU resource; software
layers (PVM tasks, MESSENGERS daemons) charge virtual time through
:meth:`Host.compute` / :meth:`Host.busy`.  Delivery queues for the
transport layer are per-(host, port) stores created on demand.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..des import Resource, Simulator, Store
from ..des.errors import SimulationError
from .costs import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .transport import Network

__all__ = ["Host", "HostCrashedError"]


class HostCrashedError(SimulationError):
    """An operation targeted a host that is currently crashed.

    Raised by :meth:`Host.busy`/:meth:`Host.compute` (a dead CPU does no
    work) and by :meth:`~repro.netsim.transport.Network.enqueue` when the
    *source* host is down — software running "on" a crashed host is a
    bug in the caller's recovery logic, so it surfaces loudly.
    """


class Host:
    """One machine of the simulated cluster.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Unique host name (also its network address).
    costs:
        The platform cost table.
    cpu_scale:
        Relative CPU speed (1.0 = the calibration baseline).  The paper's
        matmul experiments used two generations of SPARCstation 5
        (110 MHz vs 170 MHz); benchmarks express that here.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        costs: CostModel,
        cpu_scale: float = 1.0,
    ):
        if cpu_scale <= 0:
            raise ValueError(f"cpu_scale must be positive, got {cpu_scale}")
        self.sim = sim
        self.name = name
        self.costs = costs
        self.cpu_scale = cpu_scale
        self.cpu = Resource(sim, capacity=1)
        self.network: Optional["Network"] = None
        self._ports: dict[str, Store] = {}
        #: Accumulated busy time, for utilization reporting.
        self.busy_seconds: float = 0.0
        #: Fail-stop state, driven by the fault layer via
        #: :meth:`crash`/:meth:`restart`.
        self.crashed: bool = False

    # -- CPU ------------------------------------------------------------------

    def compute(self, flops: float, working_set_bytes: float = 0.0):
        """Process generator: occupy the CPU for a computation.

        Usage from another process::

            yield sim.process(host.compute(1e6, working_set_bytes=8e6))
        """
        seconds = self.costs.compute_seconds(
            flops, working_set_bytes, self.cpu_scale
        )
        return self.busy(seconds, category="compute")

    def busy(
        self,
        seconds: float,
        category: Optional[str] = "compute",
        label: Optional[str] = None,
    ):
        """Process generator: occupy the CPU for a fixed duration.

        ``category`` attributes the time in the cost ledger when a
        metrics registry is attached (see :mod:`repro.obs`); pass
        ``None`` for callers that split one busy period into several
        charges themselves (the daemon's interpretation slices do).
        ``label`` overrides the span name shown in trace exports.
        """
        if seconds < 0:
            raise ValueError(f"negative busy time {seconds}")

        def _busy(sim):
            if self.crashed:
                raise HostCrashedError(f"host {self.name!r} is down")
            req = self.cpu.request()
            yield req
            start = sim.now
            try:
                if self.crashed:
                    # Crashed while queued for the CPU.
                    raise HostCrashedError(f"host {self.name!r} is down")
                yield sim.timeout(seconds)
                self.busy_seconds += seconds
                metrics = sim.obs
                if metrics is not None and (
                    category is not None or label is not None
                ):
                    # With category=None the span is recorded for the
                    # trace but not charged — the caller attributes the
                    # time itself (e.g. pack copy + protocol overhead).
                    metrics.span(
                        self.name, label or category, category,
                        start, sim.now,
                    )
            finally:
                self.cpu.release(req)

        return _busy(self.sim)

    def compute_seconds(
        self, flops: float, working_set_bytes: float = 0.0
    ) -> float:
        """The duration :meth:`compute` would charge (without running)."""
        return self.costs.compute_seconds(
            flops, working_set_bytes, self.cpu_scale
        )

    # -- faults ----------------------------------------------------------------

    def crash(self) -> list:
        """Fail-stop this host; returns everything its queues lost.

        Volatile state — queued and half-delivered packets in every port
        store, including the outbound ``_tx`` queue — is discarded, and
        the discarded items are returned so the fault layer can report
        them and recovery layers can identify in-flight casualties.  The
        :class:`~repro.des.Store` objects themselves survive (service
        pumps stay parked on them and simply resume after a restart).
        """
        self.crashed = True
        lost = []
        for store in self._ports.values():
            lost.extend(store.clear())
        return lost

    def restart(self) -> None:
        """Bring a crashed host back (empty queues, CPU idle)."""
        self.crashed = False

    # -- NIC ports -----------------------------------------------------------

    def port(self, name: str) -> Store:
        """The delivery queue for service ``name`` on this host."""
        if name not in self._ports:
            self._ports[name] = Store(self.sim)
        return self._ports[name]

    @property
    def port_names(self) -> list[str]:
        return sorted(self._ports)

    def __repr__(self) -> str:
        return f"<Host {self.name} x{self.cpu_scale}>"
