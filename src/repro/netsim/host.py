"""Simulated hosts: a CPU with a cache-aware cost model plus NIC queues.

A :class:`Host` serializes computation on a single CPU resource; software
layers (PVM tasks, MESSENGERS daemons) charge virtual time through
:meth:`Host.compute` / :meth:`Host.busy`.  Delivery queues for the
transport layer are per-(host, port) stores created on demand.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..des import Resource, Simulator, Store
from .costs import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .transport import Network

__all__ = ["Host"]


class Host:
    """One machine of the simulated cluster.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Unique host name (also its network address).
    costs:
        The platform cost table.
    cpu_scale:
        Relative CPU speed (1.0 = the calibration baseline).  The paper's
        matmul experiments used two generations of SPARCstation 5
        (110 MHz vs 170 MHz); benchmarks express that here.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        costs: CostModel,
        cpu_scale: float = 1.0,
    ):
        if cpu_scale <= 0:
            raise ValueError(f"cpu_scale must be positive, got {cpu_scale}")
        self.sim = sim
        self.name = name
        self.costs = costs
        self.cpu_scale = cpu_scale
        self.cpu = Resource(sim, capacity=1)
        self.network: Optional["Network"] = None
        self._ports: dict[str, Store] = {}
        #: Accumulated busy time, for utilization reporting.
        self.busy_seconds: float = 0.0

    # -- CPU ------------------------------------------------------------------

    def compute(self, flops: float, working_set_bytes: float = 0.0):
        """Process generator: occupy the CPU for a computation.

        Usage from another process::

            yield sim.process(host.compute(1e6, working_set_bytes=8e6))
        """
        seconds = self.costs.compute_seconds(
            flops, working_set_bytes, self.cpu_scale
        )
        return self.busy(seconds, category="compute")

    def busy(
        self,
        seconds: float,
        category: Optional[str] = "compute",
        label: Optional[str] = None,
    ):
        """Process generator: occupy the CPU for a fixed duration.

        ``category`` attributes the time in the cost ledger when a
        metrics registry is attached (see :mod:`repro.obs`); pass
        ``None`` for callers that split one busy period into several
        charges themselves (the daemon's interpretation slices do).
        ``label`` overrides the span name shown in trace exports.
        """
        if seconds < 0:
            raise ValueError(f"negative busy time {seconds}")

        def _busy(sim):
            req = self.cpu.request()
            yield req
            start = sim.now
            try:
                yield sim.timeout(seconds)
                self.busy_seconds += seconds
                metrics = sim.metrics
                if metrics is not None and (
                    category is not None or label is not None
                ):
                    # With category=None the span is recorded for the
                    # trace but not charged — the caller attributes the
                    # time itself (e.g. pack copy + protocol overhead).
                    metrics.span(
                        self.name, label or category, category,
                        start, sim.now,
                    )
            finally:
                self.cpu.release(req)

        return _busy(self.sim)

    def compute_seconds(
        self, flops: float, working_set_bytes: float = 0.0
    ) -> float:
        """The duration :meth:`compute` would charge (without running)."""
        return self.costs.compute_seconds(
            flops, working_set_bytes, self.cpu_scale
        )

    # -- NIC ports -----------------------------------------------------------

    def port(self, name: str) -> Store:
        """The delivery queue for service ``name`` on this host."""
        if name not in self._ports:
            self._ports[name] = Store(self.sim)
        return self._ports[name]

    @property
    def port_names(self) -> list[str]:
        return sorted(self._ports)

    def __repr__(self) -> str:
        return f"<Host {self.name} x{self.cpu_scale}>"
