"""Message transport across the simulated cluster.

The :class:`Network` connects :class:`~repro.netsim.host.Host` objects to
one :class:`~repro.netsim.ethernet.EthernetSegment` and moves
:class:`Packet` objects between named ports.  Both the PVM workalike and
the MESSENGERS daemons are clients of this layer; the *difference* between
them (buffer copies vs zero-copy migration) is charged by those layers,
not here — the wire treats everyone equally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..des import Simulator, Store
from .costs import CostModel, DEFAULT_COSTS
from .ethernet import EthernetSegment
from .host import Host

__all__ = ["Packet", "Network", "build_lan"]


@dataclass
class Packet:
    """One unit of delivery between host ports.

    ``payload`` is an arbitrary Python object (never serialized for real —
    cost is charged from ``size_bytes``).  ``send_time`` is stamped by the
    network for latency accounting.
    """

    src: str
    dst: str
    port: str
    payload: Any
    size_bytes: int
    send_time: float = field(default=0.0)

    @property
    def is_local(self) -> bool:
        return self.src == self.dst


class Network:
    """Registry of hosts plus the shared segment connecting them."""

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel = DEFAULT_COSTS,
        segment: Optional[EthernetSegment] = None,
    ):
        self.sim = sim
        self.costs = costs
        self.segment = segment or EthernetSegment(sim, costs)
        self._hosts: dict[str, Host] = {}
        #: Count of delivered packets per (src, dst) pair.
        self.delivered: int = 0

    # -- topology ---------------------------------------------------------

    def add_host(self, host: Host) -> Host:
        """Attach ``host`` to this network and start its NIC TX pump.

        Each host transmits through a single FIFO queue, so packets from
        the same source are delivered in send order (the in-order
        guarantee PVM and the MESSENGERS daemons both rely on).
        """
        if host.name in self._hosts:
            raise ValueError(f"duplicate host name {host.name!r}")
        self._hosts[host.name] = host
        host.network = self
        self.sim.process(self._tx_pump(host))
        return host

    def _tx_pump(self, host: Host):
        """Serially drain ``host``'s outbound queue onto the wire."""
        outbound = host.port("_tx")
        overhead = self.costs.endpoint_overhead_s
        while True:
            packet, done = yield outbound.get()
            start = self.sim.now
            yield self.sim.timeout(overhead)
            endpoint_s = overhead
            if not packet.is_local:
                yield self.sim.process(
                    self.segment.transmit(packet.size_bytes)
                )
                yield self.sim.timeout(overhead)
                endpoint_s += overhead
            queue = self._hosts[packet.dst].port(packet.port)
            yield queue.put(packet)
            self.delivered += 1
            metrics = self.sim.metrics
            if metrics is not None:
                metrics.count("netsim.net.packets")
                metrics.count("netsim.net.bytes", packet.size_bytes)
                metrics.charge("protocol", endpoint_s)
                metrics.span(
                    host.name,
                    f"tx:{packet.port}",
                    None,
                    start,
                    self.sim.now,
                    args={"dst": packet.dst, "bytes": packet.size_bytes},
                    charge=False,
                )
            done.succeed(packet)

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    @property
    def host_names(self) -> list[str]:
        return sorted(self._hosts)

    @property
    def hosts(self) -> list[Host]:
        return [self._hosts[name] for name in self.host_names]

    def __len__(self) -> int:
        return len(self._hosts)

    # -- delivery ------------------------------------------------------------

    def enqueue(self, packet: Packet):
        """Hand ``packet`` to the source host's NIC; returns the event
        that fires once the packet has been *delivered* at the far end.

        Enqueueing itself is immediate — callers that want asynchronous
        (PVM-style buffered) sends simply do not wait on the returned
        event.  FIFO order per source host is guaranteed.
        """
        if packet.dst not in self._hosts:
            raise KeyError(f"unknown destination host {packet.dst!r}")
        if packet.src not in self._hosts:
            raise KeyError(f"unknown source host {packet.src!r}")
        packet.send_time = self.sim.now
        done = self.sim.event()
        self._hosts[packet.src].port("_tx").put((packet, done))
        return done

    def send(self, packet: Packet):
        """Process generator: carry ``packet`` and wait for delivery."""
        done = self.enqueue(packet)

        def _send(sim):
            yield done
            return packet

        return _send(self.sim)

    def post(self, packet: Packet) -> None:
        """Fire-and-forget delivery (never waits)."""
        self.enqueue(packet)

    def receive(self, host_name: str, port: str):
        """Event: the next packet arriving at ``host_name``/``port``."""
        return self._hosts[host_name].port(port).get()

    def __repr__(self) -> str:
        return f"<Network hosts={len(self._hosts)} delivered={self.delivered}>"


def build_lan(
    sim: Simulator,
    n_hosts: int,
    costs: CostModel = DEFAULT_COSTS,
    cpu_scale: float = 1.0,
    name_prefix: str = "host",
) -> Network:
    """Build the paper's platform: ``n_hosts`` workstations on one LAN."""
    if n_hosts < 1:
        raise ValueError(f"need at least one host, got {n_hosts}")
    network = Network(sim, costs)
    for index in range(n_hosts):
        network.add_host(
            Host(sim, f"{name_prefix}{index}", costs, cpu_scale=cpu_scale)
        )
    return network
