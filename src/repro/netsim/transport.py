"""Message transport across the simulated cluster.

The :class:`Network` connects :class:`~repro.netsim.host.Host` objects to
one :class:`~repro.netsim.ethernet.EthernetSegment` and moves
:class:`Packet` objects between named ports.  Both the PVM workalike and
the MESSENGERS daemons are clients of this layer; the *difference* between
them (buffer copies vs zero-copy migration) is charged by those layers,
not here — the wire treats everyone equally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from sys import getrefcount as _getrefcount
from typing import Any, Optional

from ..des import Simulator
from ..des.errors import SimOverloadError
from .costs import CostModel, DEFAULT_COSTS
from .ethernet import EthernetSegment
from .host import Host, HostCrashedError

__all__ = ["Packet", "Network", "build_lan"]

#: Wire size of a transport-level acknowledgement (one minimum frame).
ACK_BYTES = 64


@dataclass(slots=True)
class Packet:
    """One unit of delivery between host ports.

    ``payload`` is an arbitrary Python object (never serialized for real —
    cost is charged from ``size_bytes``).  ``send_time`` is stamped by the
    network for latency accounting.  ``seq`` is assigned by the reliable
    channel (ports opted in via :meth:`Network.set_reliable`, active only
    when an attached fault plan makes the wire lossy); unreliable traffic
    leaves it ``None``.
    """

    src: str
    dst: str
    port: str
    payload: Any
    size_bytes: int
    send_time: float = field(default=0.0)
    seq: Optional[int] = field(default=None)
    #: Absolute virtual-time deadline of the request this packet carries,
    #: or ``None``.  The reliable channel stops retransmitting a packet
    #: whose deadline has passed — the bytes could only arrive too late
    #: to matter, so the capacity is better spent on live requests.
    deadline_s: Optional[float] = field(default=None)

    @property
    def is_local(self) -> bool:
        return self.src == self.dst


class Network:
    """Registry of hosts plus the shared segment connecting them."""

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel = DEFAULT_COSTS,
        segment: Optional[EthernetSegment] = None,
    ):
        self.sim = sim
        self.costs = costs
        self.segment = segment or EthernetSegment(sim, costs)
        self._hosts: dict[str, Host] = {}
        #: Count of delivered packets per (src, dst) pair.
        self.delivered: int = 0
        #: Attached :class:`~repro.faults.FaultInjector`, or None.
        self.faults = None
        self._lossy = False  # cached injector.perturbs
        #: TX-pump starts per host — exactly 1 even across crash/restart
        #: cycles (a double-started pump would break per-source FIFO).
        self.tx_pumps_started: dict[str, int] = {}
        self._ack_pumps_started: set[str] = set()
        #: Ports that opted into at-least-once + dedup delivery.
        self._reliable_ports: set[str] = set()
        self._next_seq: dict[tuple, int] = {}
        self._seen_seqs: dict[str, set] = {}
        self._awaiting_ack: dict[tuple, Any] = {}
        self._crash_listeners: list = []
        self._restart_listeners: list = []
        #: Knowledge-phase listeners: run when a crash becomes *known*
        #: (immediately in oracle mode; at detection time otherwise).
        self._failure_listeners: list = []
        #: Listeners for partition heals: ``listener(a, b)`` runs when
        #: the fault injector restores the carrier on a cut link.
        self._heal_listeners: list = []
        #: Hosts that crashed but whose failure is not yet announced.
        self._unannounced_crashes: set[str] = set()
        #: None = oracle mode (failures announced at crash time).  A
        #: float arms detection mode: announcements wait for
        #: :meth:`announce_failure` (the failure detector), and each
        #: crash schedules a foreground no-op timeout this many seconds
        #: out so the simulation cannot drain before the detector has
        #: had its chance to notice.
        self._detection_horizon_s: Optional[float] = None
        #: Credit window for reliable channels (None = unlimited).
        self._flow_credits: Optional[int] = None
        self._inflight: dict[tuple, int] = {}
        #: Counter of sends refused by flow control (for reporting).
        self.overloads = 0
        #: Free-list of spent :class:`Packet` objects (see :meth:`packet`
        #: / :meth:`recycle`).
        self._packet_pool: list[Packet] = []

    # -- topology ---------------------------------------------------------

    def add_host(self, host: Host) -> Host:
        """Attach ``host`` to this network and start its NIC TX pump.

        Each host transmits through a single FIFO queue, so packets from
        the same source are delivered in send order (the in-order
        guarantee PVM and the MESSENGERS daemons both rely on).

        Re-attaching the *same* host object (a restart after a crash) is
        idempotent: its pump is already parked on the surviving ``_tx``
        store and is not started a second time.  A *different* host
        object under a taken name is still an error.
        """
        existing = self._hosts.get(host.name)
        if existing is not None and existing is not host:
            raise ValueError(f"duplicate host name {host.name!r}")
        self._hosts[host.name] = host
        host.network = self
        if host.name not in self.tx_pumps_started:
            self.tx_pumps_started[host.name] = 1
            self.sim.process(self._tx_pump(host), daemon=True)
        if self._lossy:
            self._start_ack_pump(host)
        return host

    # -- faults ------------------------------------------------------------

    def attach_faults(self, injector) -> None:
        """Called by :class:`~repro.faults.FaultInjector` on construction."""
        self.faults = injector
        self._lossy = injector.perturbs
        if self._lossy:
            for host in self._hosts.values():
                self._start_ack_pump(host)

    def _start_ack_pump(self, host: Host) -> None:
        if host.name not in self._ack_pumps_started:
            self._ack_pumps_started.add(host.name)
            self.sim.process(self._ack_pump(host), daemon=True)

    def set_reliable(self, port: str) -> None:
        """Opt ``port`` into at-least-once + dedup delivery.

        Free until a lossy fault plan is attached: sequence numbers,
        acks, and retransmit timers only arm when the wire can actually
        lose packets.
        """
        self._reliable_ports.add(port)

    def set_flow_control(self, credits: Optional[int]) -> None:
        """Bound every reliable channel to ``credits`` unacked packets.

        Credit-based flow control: each ``(src, dst, port)`` channel may
        hold at most ``credits`` unacknowledged packets; a send beyond
        that raises :class:`~repro.des.SimOverloadError` instead of
        growing the retransmit state without bound.  ``None`` (the
        default) disarms the bound.  Only sequenced (reliable, lossy-
        plan) traffic consumes credits — there is no retransmit state to
        bound otherwise.
        """
        if credits is not None and credits < 1:
            raise ValueError(f"need at least one credit, got {credits}")
        self._flow_credits = credits

    def _release_credit(self, key: tuple) -> None:
        count = self._inflight.get(key)
        if count is not None:
            if count <= 1:
                self._inflight.pop(key, None)
            else:
                self._inflight[key] = count - 1

    def add_crash_listener(self, listener) -> None:
        """``listener(host, lost_packets)`` runs when a host crashes.

        This is the *physical* phase: the host's queues just dropped and
        anything resident on it died.  It always runs at crash time —
        a dead CPU executes nothing regardless of who knows about it.
        Recovery logic belongs in a failure listener instead.
        """
        self._crash_listeners.append(listener)

    def add_failure_listener(self, listener) -> None:
        """``listener(host)`` runs when a crash becomes *known*.

        This is the *knowledge* phase — notifications, logical-network
        repair, re-dispatch.  In oracle mode (the default) it fires
        immediately after the crash listeners; with
        :meth:`enable_detection` it waits for a failure detector to call
        :meth:`announce_failure`.
        """
        self._failure_listeners.append(listener)

    def add_restart_listener(self, listener) -> None:
        """``listener(host)`` runs when a crashed host restarts."""
        self._restart_listeners.append(listener)

    def add_heal_listener(self, listener) -> None:
        """``listener(a, b)`` runs when a partition between hosts
        ``a`` and ``b`` heals.

        Anti-entropy layers use this to lift exchange suspensions the
        moment the carrier returns, instead of waiting out a timeout.
        """
        self._heal_listeners.append(listener)

    def notify_heal(self, a: str, b: str) -> None:
        """Announce a partition heal (called by the fault injector)."""
        for listener in list(self._heal_listeners):
            listener(a, b)

    def enable_detection(self, horizon_s: float) -> None:
        """Switch crash announcements from oracle to detection mode.

        ``horizon_s`` is the attached detector's worst-case detection
        latency: every crash schedules one foreground no-op timeout that
        far out, so the event queue cannot drain between a crash and the
        detector's suspicion tick (which itself runs on background
        timeouts).  If the detector fails to announce within the
        horizon, the run ends with the casualty unrecovered — and the
        recovery layers report that loudly.
        """
        if horizon_s <= 0:
            raise ValueError(f"detection horizon must be positive, got "
                             f"{horizon_s}")
        self._detection_horizon_s = horizon_s

    @property
    def detection_enabled(self) -> bool:
        return self._detection_horizon_s is not None

    @property
    def unannounced_crashes(self) -> list[str]:
        """Hosts that are down but whose failure nobody knows about yet."""
        return sorted(self._unannounced_crashes)

    def crash_host(self, name: str) -> None:
        """Fail-stop ``name``: its CPU rejects work, its queues drop.

        Crash listeners (the physical phase) are handed the packets that
        died in the host's queues so they can identify in-flight
        casualties.  The failure announcement (the knowledge phase —
        recovery) follows immediately in oracle mode, or waits for the
        failure detector in detection mode.  Idempotent while the host
        stays down.
        """
        host = self.host(name)
        if host.crashed:
            return
        lost_items = host.crash()
        # _tx entries are (packet, done) pairs; delivery queues hold
        # bare packets.  Normalize to packets for the listeners.
        lost = [
            item[0] if isinstance(item, tuple) else item
            for item in lost_items
        ]
        if self.faults is not None and lost:
            self.faults.count("packets_lost_in_crash", len(lost))
        for listener in list(self._crash_listeners):
            listener(host, lost)
        self._unannounced_crashes.add(name)
        if self._detection_horizon_s is None:
            self.announce_failure(name)
        else:
            # Keep the simulation alive until the detector can notice.
            self.sim.timeout(self._detection_horizon_s)

    def announce_failure(self, name: str) -> bool:
        """Declare host ``name`` failed and run the recovery listeners.

        Called by a failure detector (or internally, right at crash
        time, in oracle mode).  Announcing a host that is alive or whose
        crash was already announced is a no-op returning ``False`` — a
        detector's false suspicion must not kill a healthy host's work.
        """
        if name not in self._unannounced_crashes:
            return False
        self._unannounced_crashes.discard(name)
        host = self.host(name)
        if self.faults is not None:
            self.faults.count("failures_announced")
        for listener in list(self._failure_listeners):
            listener(host)
        return True

    def restart_host(self, name: str) -> None:
        """Bring a crashed host back and re-register its ports/pumps.

        A restart of a host whose crash was never announced announces it
        first: the rebooting daemon knows it lost its volatile state (an
        incarnation-number protocol in a real system) and recovery must
        not be skipped just because the detector never fired.
        """
        host = self.host(name)
        if not host.crashed:
            return
        self.announce_failure(name)
        host.restart()
        self.add_host(host)
        for listener in list(self._restart_listeners):
            listener(host)

    def _tx_pump(self, host: Host):
        """Serially drain ``host``'s outbound queue onto the wire."""
        outbound = host.port("_tx")
        overhead = self.costs.endpoint_overhead_s
        while True:
            packet, done = yield outbound.get()
            if host.crashed:
                # A retransmit timer raced the crash; the frame dies in
                # the dead NIC.  (Normal senders cannot reach a crashed
                # host's queue — enqueue() rejects them.)
                continue
            start = self.sim.now
            yield self.sim.timeout(overhead)
            endpoint_s = overhead
            faults = self.faults
            action = "deliver"
            if not packet.is_local:
                if faults is not None and self._lossy:
                    action = faults.packet_action(packet)
                if action == "partitioned":
                    # The interface never puts the frame on the wire.
                    done.succeed(packet)
                    continue
                yield self.sim.process(
                    self.segment.transmit(packet.size_bytes)
                )
                yield self.sim.timeout(overhead)
                endpoint_s += overhead
            if action in ("drop", "corrupt"):
                # Lost on the wire / failed the receiver's checksum.
                done.succeed(packet)
                continue
            dst_host = self._hosts[packet.dst]
            if dst_host.crashed:
                if faults is not None:
                    faults.count("packets_to_dead_host")
                done.succeed(packet)
                continue
            copies = 2 if action == "duplicate" else 1
            yield from self._deliver(host, packet, dst_host, copies)
            metrics = self.sim.obs
            if metrics is not None:
                metrics.charge("protocol", endpoint_s)
                metrics.span(
                    host.name,
                    f"tx:{packet.port}",
                    None,
                    start,
                    self.sim.now,
                    args={"dst": packet.dst, "bytes": packet.size_bytes},
                    charge=False,
                )
            done.succeed(packet)

    def _deliver(self, src_host: Host, packet: Packet, dst_host: Host,
                 copies: int):
        """Hand ``copies`` arrivals of ``packet`` to the destination port,
        applying dedup + acking for reliable (sequenced) packets."""
        faults = self.faults
        queue = dst_host.port(packet.port)
        for _ in range(copies):
            if packet.seq is not None:
                key = (packet.src, packet.port, packet.seq)
                seen = self._seen_seqs.setdefault(packet.dst, set())
                fresh = key not in seen
                if fresh:
                    seen.add(key)
                # Ack every received copy — a duplicate's ack covers the
                # case where the first ack itself was lost.
                faults.count("acks_sent")
                self.enqueue(Packet(
                    src=packet.dst,
                    dst=packet.src,
                    port="_ack",
                    payload=(packet.src, packet.dst, packet.port,
                             packet.seq),
                    size_bytes=self.costs.ack_bytes,
                ))
                if not fresh:
                    faults.count("duplicates_suppressed")
                    continue
            elif copies > 1 and faults is not None:
                faults.count("duplicates_delivered")
            yield queue.put(packet)
            self.delivered += 1
            metrics = self.sim.obs
            if metrics is not None:
                metrics.count("netsim.net.packets")
                metrics.count("netsim.net.bytes", packet.size_bytes)

    def _ack_pump(self, host: Host):
        """Resolve retransmit timers from acks arriving at ``host``."""
        port = host.port("_ack")
        while True:
            ack = yield port.get()
            pending = self._awaiting_ack.pop(ack.payload, None)
            if pending is not None and not pending.triggered:
                src, dst, packet_port, _seq = ack.payload
                self._release_credit((src, dst, packet_port))
                pending.succeed()

    def _retransmitter(self, packet: Packet, ack_event):
        """At-least-once delivery: resend ``packet`` with exponential
        backoff + jitter until acked, the endpoint dies, or the retry
        budget runs out (a crashed peer is the recovery layers' problem,
        not the transport's)."""
        faults = self.faults
        # An explicit plan policy wins; otherwise the cost model's
        # retransmit_* fields apply (sweepable per experiment).
        policy = faults.plan.retransmit_policy
        if policy is None:
            costs = self.costs
            timeout_s = costs.retransmit_timeout_s
            backoff = costs.retransmit_backoff
            jitter = costs.retransmit_jitter
            max_retries = costs.retransmit_max_retries
        else:
            timeout_s = policy.timeout_s
            backoff = policy.backoff
            jitter = policy.jitter
            max_retries = policy.max_retries
        jitter_rng = faults.retransmit_rng
        delay = timeout_s
        key = (packet.src, packet.dst, packet.port, packet.seq)
        for _attempt in range(max_retries):
            yield ack_event | self.sim.timeout(delay)
            if ack_event.triggered:
                return
            if (packet.deadline_s is not None
                    and self.sim.now >= packet.deadline_s):
                faults.count("retransmits_deadline_expired")
                break
            src_host = self._hosts[packet.src]
            dst_host = self._hosts[packet.dst]
            if src_host.crashed or dst_host.crashed:
                break
            faults.count("retransmits")
            src_host.port("_tx").put((packet, self.sim.event()))
            delay *= backoff
            delay *= 1.0 + jitter * jitter_rng.random()
        else:
            faults.count("retransmits_exhausted")
        self._awaiting_ack.pop(key, None)
        self._release_credit((packet.src, packet.dst, packet.port))
        faults.count("retransmits_abandoned")

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    @property
    def host_names(self) -> list[str]:
        return sorted(self._hosts)

    @property
    def hosts(self) -> list[Host]:
        return [self._hosts[name] for name in self.host_names]

    def __len__(self) -> int:
        return len(self._hosts)

    # -- packet pooling ------------------------------------------------------

    def packet(
        self,
        src: str,
        dst: str,
        port: str,
        payload: Any,
        size_bytes: int,
        deadline_s: Optional[float] = None,
    ) -> Packet:
        """A fresh :class:`Packet`, reusing a recycled object if any.

        Behaves exactly like the ``Packet(...)`` constructor — every
        field is overwritten — but at scale (millions of daemon hops)
        the free-list keeps the allocator out of the per-hop path.
        """
        pool = self._packet_pool
        if pool:
            packet = pool.pop()
            packet.src = src
            packet.dst = dst
            packet.port = port
            packet.payload = payload
            packet.size_bytes = size_bytes
            packet.send_time = 0.0
            packet.seq = None
            packet.deadline_s = deadline_s
            return packet
        return Packet(
            src=src,
            dst=dst,
            port=port,
            payload=payload,
            size_bytes=size_bytes,
            deadline_s=deadline_s,
        )

    def recycle(self, packet: Packet) -> None:
        """Return a spent packet to the free-list — if provably safe.

        The packet is pooled only when the caller's local plus this
        argument are the *only* live references (refcount check): a
        retransmitter, a pending delivery copy, or a crash listener
        still holding the object keeps it out of the pool.  ``Packet``
        uses ``slots=True`` with no ``__weakref__``, so no untracked
        reference can exist.  Callers must drop their own reference
        right after this returns.
        """
        if _getrefcount(packet) == 2 and len(self._packet_pool) < 4096:
            packet.payload = None  # release the payload immediately
            self._packet_pool.append(packet)

    # -- delivery ------------------------------------------------------------

    def enqueue(self, packet: Packet):
        """Hand ``packet`` to the source host's NIC; returns the event
        that fires once the packet has been *delivered* at the far end.

        Enqueueing itself is immediate — callers that want asynchronous
        (PVM-style buffered) sends simply do not wait on the returned
        event.  FIFO order per source host is guaranteed.
        """
        if packet.dst not in self._hosts:
            raise KeyError(f"unknown destination host {packet.dst!r}")
        if packet.src not in self._hosts:
            raise KeyError(f"unknown source host {packet.src!r}")
        src_host = self._hosts[packet.src]
        if src_host.crashed:
            raise HostCrashedError(
                f"cannot send from crashed host {packet.src!r}"
            )
        packet.send_time = self.sim.now
        done = self.sim.event()
        if (
            self._lossy
            and packet.seq is None
            and not packet.is_local
            and packet.port in self._reliable_ports
        ):
            key = (packet.src, packet.dst, packet.port)
            credits = self._flow_credits
            if credits is not None:
                inflight = self._inflight.get(key, 0)
                if inflight >= credits:
                    self.overloads += 1
                    if self.faults is not None:
                        self.faults.count("overloads")
                    raise SimOverloadError(
                        packet.src, packet.dst, packet.port, credits
                    )
                self._inflight[key] = inflight + 1
            seq = self._next_seq.get(key, 0)
            self._next_seq[key] = seq + 1
            packet.seq = seq
            ack_event = self.sim.event()
            self._awaiting_ack[
                (packet.src, packet.dst, packet.port, seq)
            ] = ack_event
            self.sim.process(
                self._retransmitter(packet, ack_event), daemon=True
            )
        src_host.port("_tx").put((packet, done))
        return done

    def send(self, packet: Packet):
        """Process generator: carry ``packet`` and wait for delivery."""
        done = self.enqueue(packet)

        def _send(sim):
            yield done
            return packet

        return _send(self.sim)

    def post(self, packet: Packet) -> None:
        """Fire-and-forget delivery (never waits)."""
        self.enqueue(packet)

    def receive(self, host_name: str, port: str):
        """Event: the next packet arriving at ``host_name``/``port``."""
        return self._hosts[host_name].port(port).get()

    def __repr__(self) -> str:
        return f"<Network hosts={len(self._hosts)} delivered={self.delivered}>"


def build_lan(
    sim: Simulator,
    n_hosts: int,
    costs: CostModel = DEFAULT_COSTS,
    cpu_scale: float = 1.0,
    name_prefix: str = "host",
) -> Network:
    """Build the paper's platform: ``n_hosts`` workstations on one LAN."""
    if n_hosts < 1:
        raise ValueError(f"need at least one host, got {n_hosts}")
    network = Network(sim, costs)
    for index in range(n_hosts):
        network.add_host(
            Host(sim, f"{name_prefix}{index}", costs, cpu_scale=cpu_scale)
        )
    return network
