"""Simulated physical substrate: hosts, shared Ethernet, transport.

This package replaces the paper's hardware (a LAN of SPARCstation 5s)
with a deterministic model.  See DESIGN.md §2 for the substitution
rationale and :mod:`repro.netsim.costs` for every calibration constant.
"""

from ..des.errors import SimOverloadError
from .costs import CacheModel, CostModel, DEFAULT_COSTS, sparc5_costs
from .ethernet import EthernetSegment
from .host import Host, HostCrashedError
from .transport import Network, Packet, build_lan

__all__ = [
    "CacheModel",
    "CostModel",
    "DEFAULT_COSTS",
    "EthernetSegment",
    "Host",
    "HostCrashedError",
    "Network",
    "Packet",
    "SimOverloadError",
    "build_lan",
    "sparc5_costs",
]
