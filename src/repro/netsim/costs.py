"""Calibration constants for the simulated cluster.

Every performance-relevant cost in the reproduction is charged from this
single table, so an experiment's virtual-time results are a pure function
of (workload, CostModel).  The defaults are calibrated to the paper's
platform — an Ethernet LAN of SPARCstation 5s running PVM 3.3 — to
reproduce the *shapes* of Figures 4–7 and 12:

* PVM messages pay pack + wire + unpack (two memory copies), MESSENGERS
  hops pay no copies (messenger variables migrate as-is; §2.1 of the
  paper) but pay script interpretation per bytecode instruction;
* the shared Ethernet serializes transmissions, so centralized traffic
  (PVM's manager) degrades as processor count grows;
* host compute rate degrades when the working set overflows the cache,
  which produces the paper's blocked-vs-naive sequential matmul gap and
  the super-linear parallel speedups.

The constants are exposed as a dataclass so benchmarks can run ablations
(e.g. sweeping ``copy_cost_per_byte`` to locate the messages/messengers
crossover).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["CacheModel", "CostModel", "DEFAULT_COSTS", "sparc5_costs"]


@dataclass(frozen=True)
class CacheModel:
    """Working-set-dependent slowdown of a host's compute rate.

    The effective cost multiplier for a computation with working set
    ``ws`` bytes is::

        factor(ws) = 1 + penalty * max(0, 1 - capacity / ws)

    i.e. computations that fit in cache run at full rate and the
    multiplier saturates at ``1 + penalty`` for streaming workloads.
    """

    capacity_bytes: int = 1 << 20  # unified cache+TLB reach proxy
    penalty: float = 3.3  # calibrated: naive/blocked 1500x1500 ~ 13%

    def factor(self, working_set_bytes: float) -> float:
        """Cost multiplier (>= 1) for the given working set."""
        if working_set_bytes <= self.capacity_bytes:
            return 1.0
        return 1.0 + self.penalty * (
            1.0 - self.capacity_bytes / working_set_bytes
        )


@dataclass(frozen=True)
class CostModel:
    """All virtual-time costs of the simulated platform (seconds / each)."""

    # -- host CPU ----------------------------------------------------------
    #: Base floating-point operations per second of one host.
    cpu_flops: float = 20e6
    cache: CacheModel = field(default_factory=CacheModel)

    # -- physical network (shared Ethernet) --------------------------------
    #: Usable bandwidth of the shared segment, bytes/second (10 Mb/s LAN).
    bandwidth_bytes_per_s: float = 1.0e6
    #: One-way propagation + kernel latency per frame.
    wire_latency_s: float = 0.7e-3
    #: Fixed per-message software overhead at each endpoint (syscalls,
    #: protocol processing) — paid by *both* paradigms.
    endpoint_overhead_s: float = 0.4e-3

    # -- message-passing (PVM-workalike) -----------------------------------
    #: Per-byte cost of packing data into a send buffer (one memory copy,
    #: XDR-encoded — the paper's "copying of data into/out of buffers").
    pack_cost_per_byte_s: float = 100e-9
    #: Per-byte cost of unpacking from the receive buffer (second copy).
    unpack_cost_per_byte_s: float = 100e-9
    #: Fixed cost of pvm_send/pvm_recv bookkeeping beyond the endpoint cost.
    mp_per_message_s: float = 0.6e-3
    #: Cost of spawning one remote task (fork + exec + enrol).
    mp_spawn_s: float = 100e-3
    #: Fraction of raw wire bandwidth message-passing transfers achieve.
    #: PVM 3.3 over UDP with XDR encoding and daemon routing measured
    #: well below raw Ethernet rates; the custom MESSENGERS daemons run
    #: near wire speed.  Message-passing payload bytes are inflated by
    #: 1/efficiency on the shared medium.
    mp_wire_efficiency: float = 0.7

    # -- MESSENGERS ---------------------------------------------------------
    #: Interpreting one MCL bytecode instruction.
    interp_instr_s: float = 40e-6
    #: Fixed daemon cost of dispatching one arriving Messenger.
    hop_dispatch_s: float = 1.0e-3
    #: Creating one logical node or link in a daemon's tables.
    logical_create_s: float = 0.2e-3
    #: Invoking a dynamically loaded native-mode function.
    native_call_s: float = 5.0e-6
    #: Per-byte cost of moving messenger variables between daemon heaps on
    #: a *local* (same-daemon) hop; remote hops use the wire instead.  No
    #: pack/unpack copies are charged (the paper's zero-copy argument).
    msgr_state_local_per_byte_s: float = 2e-9

    # -- reliable channel (seq/ack/retransmit) -------------------------------
    #: Size of one acknowledgement frame on the wire.
    ack_bytes: int = 64
    #: First retransmit timeout of the reliable channel.  A
    #: :class:`~repro.faults.RetransmitPolicy` set explicitly on a
    #: :class:`~repro.faults.FaultPlan` overrides these four fields.
    retransmit_timeout_s: float = 0.05
    #: Timeout multiplier per unsuccessful attempt.
    retransmit_backoff: float = 2.0
    #: +U(0, jitter) fraction added per attempt (from des.rng).
    retransmit_jitter: float = 0.25
    #: Retransmit attempts before the packet is abandoned.
    retransmit_max_retries: int = 12

    # -- global virtual time -------------------------------------------------
    #: Conservative GVT: fixed cost of one round of the min-reduction at
    #: each daemon.  The paper calls this "continuous periodic exchange
    #: of timing information … significant communication overhead";
    #: calibrated so the Figure-12 crossovers land in the right region.
    gvt_round_s: float = 12e-3
    #: Optimistic GVT: saving one unit (byte) of rollback state.
    state_save_per_byte_s: float = 1e-9
    #: Optimistic GVT: fixed cost of one rollback.
    rollback_s: float = 1.0e-3

    def with_(self, **overrides) -> "CostModel":
        """A copy of this model with the given fields replaced."""
        return replace(self, **overrides)

    # -- derived helpers -------------------------------------------------------

    def compute_seconds(self, flops: float, working_set_bytes: float = 0.0,
                        cpu_scale: float = 1.0) -> float:
        """Virtual seconds to execute ``flops`` operations on one host.

        ``cpu_scale`` scales the base rate (the paper used 110 MHz hosts
        for the 2x2 matmul grid and 170 MHz hosts for the 3x3 grid).
        """
        rate = self.cpu_flops * cpu_scale
        return flops * self.cache.factor(working_set_bytes) / rate

    def wire_seconds(self, size_bytes: float) -> float:
        """Time the shared medium is occupied by one frame."""
        return self.wire_latency_s + size_bytes / self.bandwidth_bytes_per_s


def sparc5_costs(**overrides) -> CostModel:
    """The default calibration (SPARCstation 5 / 10 Mb Ethernet era)."""
    return CostModel().with_(**overrides) if overrides else CostModel()


#: Shared default instance used when no model is passed explicitly.
DEFAULT_COSTS = CostModel()
