"""Resilience: detection-driven recovery, supervision, invariants.

The fault layer (``repro.faults``) gave the reproduction failures and
*oracle* recovery — the instant a host crashed, every survivor somehow
knew.  This package removes the oracle and replaces it with the
machinery a real distributed system needs:

* **failure detectors** (:mod:`~repro.resilience.detectors`) —
  heartbeat and phi-accrual detectors per daemon, with tunable
  suspicion thresholds, turning crashes into *detected* failures that
  drive the existing MESSENGERS re-homing/re-dispatch and the PVM
  notification machinery through
  :meth:`~repro.netsim.transport.Network.announce_failure`;
* **supervision** (:mod:`~repro.resilience.supervision`) — one-for-one
  / give-up-after-N / escalate restart policies applied to announced
  failures, plus credit-based transport backpressure (bounded
  retransmit state, typed :class:`~repro.des.SimOverloadError`);
* **invariants** (:mod:`~repro.resilience.invariants`) — GVT
  monotonicity, no-lost-no-duplicated work, checkpoint snapshot
  integrity, and the cost-ledger accounting identity, checked inside
  the DES and failing fast with a minimal event-trace excerpt;
* **schedule search** (:mod:`~repro.resilience.search`) — bounded DFS
  plus seeded random restarts over fault schedules, shrinking any
  violation to a minimal :class:`~repro.faults.FaultPlan` reproducer.

One :class:`ResiliencePolicy` describes what to arm; a
:class:`ResilienceSuite` arms it on a live network.  The empty policy
arms *nothing* — no listeners, no processes, no flow control — which is
what keeps the idle overhead at zero (pinned by
``benchmarks/test_resilience_overhead.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..des.rng import RngRegistry
from .detectors import FailureDetector, HeartbeatDetector, PhiAccrualDetector
from .invariants import (
    CheckpointIntegrity,
    GvtMonotonic,
    Invariant,
    InvariantMonitor,
    InvariantViolation,
    LedgerIdentity,
    NoLostWork,
    WorkLedger,
)
from .search import ScheduleSearcher
from .supervision import (
    ESCALATE,
    GIVE_UP,
    ONE_FOR_ONE,
    RestartPolicy,
    SupervisionEscalation,
    Supervisor,
)

__all__ = [
    "CheckpointIntegrity",
    "ESCALATE",
    "FailureDetector",
    "GIVE_UP",
    "GvtMonotonic",
    "HeartbeatDetector",
    "Invariant",
    "InvariantMonitor",
    "InvariantViolation",
    "LedgerIdentity",
    "NoLostWork",
    "ONE_FOR_ONE",
    "PhiAccrualDetector",
    "ResiliencePolicy",
    "ResilienceSuite",
    "RestartPolicy",
    "ScheduleSearcher",
    "SupervisionEscalation",
    "Supervisor",
    "WorkLedger",
]

#: Detector kinds :class:`ResiliencePolicy` understands.
DETECTORS = ("heartbeat", "phi")


@dataclass(frozen=True)
class ResiliencePolicy:
    """What to arm on a cluster.  Every default means "arm nothing".

    ``detector`` switches crash announcements from oracle mode to
    detection mode: ``"heartbeat"`` (fixed timeout, suspect after
    ``heartbeat_misses`` silent intervals) or ``"phi"`` (phi-accrual
    with ``phi_threshold``, capped at ``max_silence_s``).
    ``supervision`` applies a :class:`RestartPolicy` to announced
    failures.  ``flow_credits`` bounds every reliable channel's unacked
    packets (overflow raises :class:`~repro.des.SimOverloadError`).
    Invariants are added to the armed suite with
    :meth:`ResilienceSuite.add_invariant`; ``invariant_interval_s``
    paces their in-run sweeps.
    """

    detector: Optional[str] = None
    heartbeat_interval_s: float = 0.02
    heartbeat_misses: int = 3
    phi_threshold: float = 8.0
    max_silence_s: float = 0.25
    supervision: Optional[RestartPolicy] = None
    flow_credits: Optional[int] = None
    invariant_interval_s: float = 0.05

    def __post_init__(self):
        if self.detector is not None and self.detector not in DETECTORS:
            raise ValueError(
                f"unknown detector {self.detector!r} "
                f"(choose from {', '.join(DETECTORS)})"
            )

    @property
    def empty(self) -> bool:
        """True when arming this policy would change nothing."""
        return (
            self.detector is None
            and self.supervision is None
            and self.flow_credits is None
        )


class ResilienceSuite:
    """A :class:`ResiliencePolicy` armed on one live network.

    Arms exactly what the policy asks for — an empty policy arms
    nothing at all (no listeners, no processes, no flow control), so an
    idle suite costs nothing.  The suite also keeps a small ring of
    recent resilience events (suspicions, restarts, announcements) that
    :class:`InvariantViolation` excerpts for fail-fast diagnosis, and
    aggregates every component's statistics in :meth:`stats`.
    """

    def __init__(self, network, policy: ResiliencePolicy, seed: int = 0,
                 rng: Optional[RngRegistry] = None):
        self.network = network
        self.sim = network.sim
        self.policy = policy
        self.notes: deque = deque(maxlen=64)
        self.detector: Optional[FailureDetector] = None
        self.supervisor: Optional[Supervisor] = None
        self.monitor: Optional[InvariantMonitor] = None
        self._observing = False
        rng = rng if rng is not None else RngRegistry(seed)

        if policy.flow_credits is not None:
            network.set_flow_control(policy.flow_credits)
        if policy.detector == "heartbeat":
            self._observe()
            self.detector = HeartbeatDetector(
                network, policy.heartbeat_interval_s,
                policy.heartbeat_misses, rng, suite=self,
            )
        elif policy.detector == "phi":
            self._observe()
            self.detector = PhiAccrualDetector(
                network, policy.heartbeat_interval_s,
                policy.phi_threshold, policy.max_silence_s, rng,
                suite=self,
            )
        if policy.supervision is not None:
            self._observe()
            self.supervisor = Supervisor(
                network, policy.supervision, suite=self
            )

    # -- the note ring -----------------------------------------------------

    def _observe(self) -> None:
        """Subscribe the note ring to lifecycle events (idempotent)."""
        if self._observing:
            return
        self._observing = True
        self.network.add_crash_listener(
            lambda host, lost: self.note(
                "crash", host=host.name, lost_packets=len(lost)
            )
        )
        self.network.add_failure_listener(
            lambda host: self.note("failure_announced", host=host.name)
        )
        self.network.add_restart_listener(
            lambda host: self.note("restart", host=host.name)
        )

    def note(self, kind: str, **args) -> None:
        """Record one resilience event (bounded ring, oldest dropped)."""
        self.notes.append((self.sim.now, kind, args))

    def recent_notes(self, limit: int = 10) -> list:
        """The newest ``limit`` notes, oldest first."""
        return list(self.notes)[-limit:]

    # -- invariants --------------------------------------------------------

    def add_invariant(self, invariant: Invariant) -> Invariant:
        """Arm ``invariant``; starts the in-run monitor on first use."""
        if self.monitor is None:
            self._observe()
            self.monitor = InvariantMonitor(
                self, self.policy.invariant_interval_s
            )
        return self.monitor.add(invariant)

    def check_final(self) -> None:
        """End-of-run invariant sweep; raises on the first violation."""
        if self.monitor is not None:
            self.monitor.sweep(final=True)

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        """JSON-friendly statistics from every armed component."""
        out: dict = {"empty": self.policy.empty}
        if self.detector is not None:
            out["detector"] = self.policy.detector
            out.update(self.detector.stats())
            out["undetected_crashes"] = self.network.unannounced_crashes
        if self.supervisor is not None:
            out["supervision"] = self.supervisor.stats()
        if self.policy.flow_credits is not None:
            out["flow_credits"] = self.policy.flow_credits
            out["overloads"] = self.network.overloads
        if self.monitor is not None:
            out["invariants"] = [
                inv.name for inv in self.monitor.invariants
            ]
            out["invariant_checks"] = self.monitor.checks_run
        return out

    def __repr__(self) -> str:
        armed = [
            name for name, on in (
                ("detector", self.detector is not None),
                ("supervision", self.supervisor is not None),
                ("flow-control", self.policy.flow_credits is not None),
                ("invariants", self.monitor is not None),
            ) if on
        ]
        return f"<ResilienceSuite armed=[{', '.join(armed) or '-'}]>"
