"""Schedule search: hunt for fault schedules that break an invariant.

A single ``repro chaos`` run checks one fault schedule.  The searcher
explores *many*: it enumerates fault schedules built from a small atom
vocabulary (a host crash at some fraction of the fault-free runtime, a
packet-loss rate), runs the workload under each, and records every
schedule whose run raises a violation.  When it finds one, it shrinks
the schedule ddmin-style to a *minimal* reproducer — the smallest
:class:`~repro.faults.FaultPlan` that still triggers the violation —
because a two-atom reproducer is worth a thousand flaky ten-atom ones.

Search order is deterministic: a bounded-depth DFS over the atom list
(singletons first, then pairs, ...) followed by random schedules drawn
from the ``resilience.search`` :class:`~repro.des.RngRegistry` stream,
so a (seed, vocabulary) pair always explores the same schedules in the
same order.  The runner is any callable ``runner(plan, seed)`` that
raises a :class:`~repro.des.SimulationError` subclass (an
:class:`~repro.resilience.InvariantViolation`, a deadlock, a stranded
recovery) when the run is broken and returns normally otherwise.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Iterable, Optional, Sequence

from ..des import SimulationError
from ..des.rng import RngRegistry
from ..faults import FaultPlan

__all__ = ["ScheduleSearcher"]

#: RNG stream for the random-restart half of the search.
SEARCH_STREAM = "resilience.search"


def _atom_key(atom: dict) -> tuple:
    return tuple(sorted(atom.items()))


class ScheduleSearcher:
    """Bounded DFS + random restarts over fault schedules.

    Parameters
    ----------
    runner:
        ``runner(plan, seed)`` — runs the workload under ``plan``;
        raises on violation.
    hosts:
        Host names eligible to crash (exclude the coordinator host if
        the workload cannot survive losing it by design).
    horizon_s:
        Fault-free runtime; crash atoms fire at fractions of it.
    crash_fractions / loss_rates:
        The atom vocabulary.
    partition_pairs / partition_windows:
        Extend the vocabulary with link partitions: one atom per
        (host pair, window), cutting the pair at the window's first
        fraction of the horizon and healing it at the second — so
        every schedule that cuts a link also heals it, and convergence
        after heal is what the run's invariants get to attack.
    violation_types:
        Exception classes that count as violations; anything else
        propagates (a searcher bug must not masquerade as a finding).
    """

    def __init__(
        self,
        runner: Callable,
        hosts: Sequence[str],
        horizon_s: float,
        seed: int = 0,
        crash_fractions: Sequence[float] = (0.25, 0.5, 0.75),
        loss_rates: Sequence[float] = (0.05,),
        partition_pairs: Sequence = (),
        partition_windows: Sequence = ((0.25, 0.75),),
        violation_types: tuple = (SimulationError,),
    ):
        if horizon_s <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_s}")
        self.runner = runner
        self.seed = seed
        self.violation_types = violation_types
        self._rng = RngRegistry(seed).stream(SEARCH_STREAM)
        self.atoms: list[dict] = []
        for host in hosts:
            for fraction in crash_fractions:
                self.atoms.append({
                    "kind": "crash",
                    "host": host,
                    "at": round(fraction * horizon_s, 9),
                })
        for rate in loss_rates:
            self.atoms.append({"kind": "drop", "rate": rate})
        for a, b in partition_pairs:
            for start, end in partition_windows:
                if not 0 <= start < end:
                    raise ValueError(
                        f"partition window must satisfy 0 <= start < "
                        f"end, got ({start}, {end})"
                    )
                self.atoms.append({
                    "kind": "partition",
                    "a": a,
                    "b": b,
                    "at": round(start * horizon_s, 9),
                    "heal_at": round(end * horizon_s, 9),
                })
        if not self.atoms:
            raise ValueError("empty atom vocabulary: nothing to search")
        self.schedules_run = 0

    # -- schedule construction ---------------------------------------------

    def plan_for(self, atoms: Iterable[dict]) -> FaultPlan:
        """Materialize one schedule as a :class:`FaultPlan`."""
        plan = FaultPlan()
        for atom in atoms:
            if atom["kind"] == "crash":
                plan.crash(atom["host"], at=atom["at"])
            elif atom["kind"] == "drop":
                plan.drop(atom["rate"])
            elif atom["kind"] == "partition":
                plan.partition(atom["a"], atom["b"], at=atom["at"])
                plan.heal(atom["a"], atom["b"], at=atom["heal_at"])
            else:
                raise ValueError(f"unknown atom kind {atom['kind']!r}")
        return plan

    def _valid(self, atoms: Sequence[dict]) -> bool:
        # At most one crash per host (no restart atoms in the
        # vocabulary), one global loss rate, and non-overlapping
        # partition windows per link (a second cut inside an open
        # window would fail plan validation).
        crashed = [a["host"] for a in atoms if a["kind"] == "crash"]
        drops = [a for a in atoms if a["kind"] == "drop"]
        if len(crashed) != len(set(crashed)) or len(drops) > 1:
            return False
        windows: dict = {}
        for atom in atoms:
            if atom["kind"] != "partition":
                continue
            windows.setdefault(
                frozenset((atom["a"], atom["b"])), []
            ).append((atom["at"], atom["heal_at"]))
        for spans in windows.values():
            spans.sort()
            for (_, heal), (cut, _) in zip(spans, spans[1:]):
                if cut < heal:
                    return False
        return True

    def _dfs_schedules(self, max_depth: int):
        for depth in range(1, max_depth + 1):
            for combo in combinations(range(len(self.atoms)), depth):
                atoms = [self.atoms[i] for i in combo]
                if self._valid(atoms):
                    yield atoms

    def _random_schedule(self) -> list[dict]:
        size = self._rng.randint(1, min(3, len(self.atoms)))
        picks = self._rng.sample(range(len(self.atoms)), size)
        return [self.atoms[i] for i in sorted(picks)]

    # -- running -----------------------------------------------------------

    def _run(self, atoms: Sequence[dict]) -> Optional[Exception]:
        self.schedules_run += 1
        try:
            self.runner(self.plan_for(atoms), self.seed)
        except self.violation_types as exc:
            return exc
        return None

    def search(
        self,
        max_schedules: int = 50,
        max_depth: int = 2,
        stop_at_first: bool = True,
    ) -> dict:
        """Explore up to ``max_schedules`` schedules; report findings.

        The report is JSON-friendly: every violating schedule appears
        with its atoms and error, and the first violation (when
        ``stop_at_first``) is shrunk to a minimal reproducer whose
        serialized plan (:meth:`FaultPlan.to_dict`) can be replayed
        verbatim.
        """
        violations: list[dict] = []
        minimal: Optional[dict] = None
        seen: set[tuple] = set()
        misses = 0

        def schedules():
            yield from self._dfs_schedules(max_depth)
            while True:
                yield self._random_schedule()

        for atoms in schedules():
            if self.schedules_run >= max_schedules:
                break
            key = tuple(sorted(_atom_key(a) for a in atoms))
            if key in seen or not self._valid(atoms):
                # A small vocabulary can run dry before max_schedules:
                # a long streak of already-seen random draws means the
                # space is (almost surely) exhausted, so stop instead
                # of spinning on rejected duplicates forever.
                misses += 1
                if misses >= 50 * len(self.atoms):
                    break
                continue
            misses = 0
            seen.add(key)
            error = self._run(atoms)
            if error is None:
                continue
            violations.append({
                "atoms": list(atoms),
                "error": type(error).__name__,
                "message": str(error).splitlines()[0],
            })
            if stop_at_first:
                shrunk = self.shrink(atoms)
                minimal = {
                    "atoms": shrunk,
                    "plan": self.plan_for(shrunk).to_dict(),
                    "seed": self.seed,
                }
                break

        return {
            "schedules_run": self.schedules_run,
            "atom_vocabulary": len(self.atoms),
            "violations": violations,
            "minimal": minimal,
            "clean": not violations,
        }

    # -- shrinking ---------------------------------------------------------

    def shrink(self, atoms: Sequence[dict]) -> list[dict]:
        """ddmin-style reduction: drop atoms while the violation holds.

        Greedy single-atom removal to a fixed point — for the small
        schedules the searcher builds, this finds a 1-minimal
        reproducer in O(n^2) runs.
        """
        current = list(atoms)
        shrunk = True
        while shrunk and len(current) > 1:
            shrunk = False
            for index in range(len(current)):
                candidate = current[:index] + current[index + 1:]
                if self._run(candidate) is not None:
                    current = candidate
                    shrunk = True
                    break
        return current

    def __repr__(self) -> str:
        return (
            f"<ScheduleSearcher atoms={len(self.atoms)} "
            f"run={self.schedules_run}>"
        )
