"""Invariant checkers: properties a faulty run must never violate.

Fault injection answers "does the system survive?"; invariants answer
the sharper question "did it survive *correctly*?".  Each
:class:`Invariant` states one property of the reproduction that must
hold at every observation point, fault or no fault:

* :class:`GvtMonotonic` — global virtual time never decreases (the
  conservative engine's central guarantee, §2.2);
* :class:`NoLostWork` — against a :class:`WorkLedger`, every completed
  work unit was issued, no unit is accepted twice, and (at the end)
  every issued unit completed: crash recovery must neither lose nor
  duplicate work;
* :class:`CheckpointIntegrity` — a hop-boundary checkpoint is a
  *snapshot*: once captured it must never change, or replay-from-
  checkpoint would resurrect a different Messenger than the one that
  was dispatched;
* :class:`LedgerIdentity` — the cost ledger cannot attribute more
  virtual seconds than physically exist (elapsed time x timelines),
  the accounting identity ``repro.obs.cost_breakdown`` rests on.

An :class:`InvariantMonitor` runs the checks inside the DES on
background timeouts and fails *fast*: the first violation raises
:class:`InvariantViolation` out of the simulation loop, carrying a
minimal excerpt of recent events (the suite's note ring) so the failure
is diagnosable without replaying the run.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Callable, Optional

from ..des import SimulationError

__all__ = [
    "CheckpointIntegrity",
    "GvtMonotonic",
    "Invariant",
    "InvariantMonitor",
    "InvariantViolation",
    "LedgerIdentity",
    "NoLostWork",
    "WorkLedger",
]


class InvariantViolation(SimulationError):
    """An invariant failed; carries a recent-event excerpt for triage."""

    def __init__(self, invariant: str, message: str, t: float, excerpt=()):
        self.invariant = invariant
        self.message = message
        self.t = t
        self.excerpt = list(excerpt)
        lines = [f"invariant {invariant!r} violated at t={t:.6f}: {message}"]
        if self.excerpt:
            lines.append("recent events:")
            lines.extend(
                f"  t={when:.6f} {kind} {args}"
                for when, kind, args in self.excerpt
            )
        super().__init__("\n".join(lines))


class Invariant:
    """One checkable property.  Subclasses override :meth:`check`
    (periodic, during the run) and optionally :meth:`check_final`
    (end-of-run, where liveness-flavoured properties become checkable).

    Both return ``None`` when the property holds, or a one-line
    description of the violation.
    """

    name = "invariant"

    def check(self, now: float) -> Optional[str]:
        return None

    def check_final(self, now: float) -> Optional[str]:
        return self.check(now)


class GvtMonotonic(Invariant):
    """Global virtual time never moves backwards."""

    name = "gvt-monotonic"

    def __init__(self, gvt_fn: Callable[[], float]):
        self._gvt_fn = gvt_fn
        self._last: Optional[float] = None

    def check(self, now: float) -> Optional[str]:
        value = self._gvt_fn()
        if self._last is not None and value < self._last - 1e-12:
            return f"GVT moved backwards: {self._last} -> {value}"
        self._last = value
        return None


class WorkLedger:
    """Double-entry book for work units (task blocks, messengers, ...).

    The workload calls :meth:`issue` when a unit enters the system and
    :meth:`complete` when its result is *accepted* into the final
    store.  Recomputing a unit after a crash is legitimate (and
    invisible here); accepting its result twice is not.
    """

    def __init__(self):
        self.issued: dict = {}
        self.completed: dict = {}

    def issue(self, unit) -> None:
        self.issued[unit] = self.issued.get(unit, 0) + 1

    def complete(self, unit) -> None:
        self.completed[unit] = self.completed.get(unit, 0) + 1

    def __repr__(self) -> str:
        return (
            f"<WorkLedger issued={len(self.issued)} "
            f"completed={len(self.completed)}>"
        )


class NoLostWork(Invariant):
    """No lost and no duplicated work units against a :class:`WorkLedger`.

    During the run: everything completed was issued, nothing was
    accepted twice.  At the end: everything issued completed — crash
    recovery finished the job, it did not quietly drop the victim's
    work on the floor.
    """

    name = "no-lost-work"

    def __init__(self, ledger: WorkLedger):
        self.ledger = ledger

    def check(self, now: float) -> Optional[str]:
        for unit, n in self.ledger.completed.items():
            if unit not in self.ledger.issued:
                return f"work unit {unit!r} completed but was never issued"
            if n > 1:
                return f"work unit {unit!r} accepted {n} times (duplicate)"
        return None

    def check_final(self, now: float) -> Optional[str]:
        problem = self.check(now)
        if problem is not None:
            return problem
        lost = [
            unit for unit in self.ledger.issued
            if self.ledger.completed.get(unit, 0) == 0
        ]
        if lost:
            return f"{len(lost)} issued work unit(s) never completed: " \
                   f"{sorted(map(repr, lost))[:5]}"
        return None


def _snapshot_digest(clone) -> str:
    """Content digest of a checkpointed Messenger's mutable state."""
    try:
        blob = pickle.dumps((clone.vt, clone.hops, clone.variables))
    except Exception:
        blob = repr(
            (clone.vt, clone.hops, sorted(clone.variables))
        ).encode("utf-8")
    return hashlib.sha1(blob).hexdigest()


class CheckpointIntegrity(Invariant):
    """Hop-boundary checkpoints are immutable snapshots.

    A checkpoint that changes after capture means live state aliased
    into the snapshot (a missing deep copy): replaying it would not
    reproduce the dispatched Messenger, silently breaking the
    bit-identical-recovery guarantee.  Each checkpoint's digest is
    recorded on first sight and must match on every later observation
    of the *same* checkpoint object.
    """

    name = "checkpoint-integrity"

    def __init__(self, system):
        self._system = system
        #: id(checkpoint) -> (messenger id, digest at first sight).
        self._digests: dict[int, tuple] = {}

    def check(self, now: float) -> Optional[str]:
        seen: set[int] = set()
        for mid, checkpoint in self._system._checkpoints.items():
            node = checkpoint
            while node is not None:
                key = id(node)
                seen.add(key)
                digest = _snapshot_digest(node.clone)
                recorded = self._digests.get(key)
                if recorded is None:
                    self._digests[key] = (mid, digest)
                elif recorded[1] != digest:
                    return (
                        f"checkpoint for messenger {mid} mutated after "
                        "capture (snapshot aliases live state)"
                    )
                node = node.prev
        # Retired checkpoints can never be observed again; forget them.
        for key in list(self._digests):
            if key not in seen:
                del self._digests[key]
        return None


class LedgerIdentity(Invariant):
    """The cost ledger never attributes more time than exists.

    With ``n_tracks`` timelines (hosts + the wire), at most
    ``now * n_tracks`` virtual seconds have physically elapsed; the sum
    of all per-category charges must stay within that, or some layer is
    double-charging (the identity ``cost_breakdown`` divides by).
    """

    name = "ledger-identity"

    def __init__(self, metrics, n_tracks: int):
        self.metrics = metrics
        self.n_tracks = n_tracks

    def check(self, now: float) -> Optional[str]:
        total = self.metrics.ledger_total()
        capacity = now * self.n_tracks
        if total > capacity + 1e-9:
            return (
                f"ledger attributes {total:.9f}s but only "
                f"{capacity:.9f}s exist ({self.n_tracks} timelines x "
                f"{now:.9f}s elapsed)"
            )
        return None


class InvariantMonitor:
    """Runs invariants inside the DES, failing fast on first violation.

    The periodic sweep rides background timeouts, so an armed monitor
    never keeps the simulation alive; :meth:`check_final` is for the
    harness to call after the run, where end-state properties (no lost
    work) become decidable.
    """

    def __init__(self, suite, interval_s: float):
        if interval_s <= 0:
            raise ValueError(
                f"check interval must be positive, got {interval_s}"
            )
        self.suite = suite
        self.sim = suite.sim
        self.interval_s = interval_s
        self.invariants: list[Invariant] = []
        self.checks_run = 0
        self.sim.process(self._loop(), daemon=True)

    def add(self, invariant: Invariant) -> Invariant:
        self.invariants.append(invariant)
        return invariant

    def _loop(self):
        while True:
            yield self.sim.timeout(self.interval_s, daemon=True)
            self.sweep(final=False)

    def sweep(self, final: bool) -> None:
        now = self.sim.now
        for invariant in self.invariants:
            self.checks_run += 1
            problem = (
                invariant.check_final(now) if final
                else invariant.check(now)
            )
            if problem is not None:
                raise InvariantViolation(
                    invariant.name, problem, now,
                    excerpt=self.suite.recent_notes(),
                )
