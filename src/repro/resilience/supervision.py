"""Supervision: what to *do* about a detected failure.

A :class:`Supervisor` subscribes to the network's failure announcements
(the knowledge phase — so it composes with both oracle mode and any
failure detector) and applies a :class:`RestartPolicy`:

* ``one_for_one`` — restart the crashed host after ``delay_s``, every
  time (the Erlang/OTP default for independent children);
* ``give_up`` — restart up to ``max_restarts`` times per host, then
  leave it down and record the surrender (the workload's own recovery
  — re-homing, re-dispatch, notification-driven re-queueing — carries
  on with fewer hosts);
* ``escalate`` — restart up to ``max_restarts`` times per host, then
  raise :class:`SupervisionEscalation`: this failure is beyond the
  supervisor's mandate and the run must fail fast rather than limp.

Restarts are scheduled as *foreground* simulation processes, so a
pending restart keeps the run alive until it happens (the mirror image
of the detectors, which run on background timeouts precisely so they
never do).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..des import SimulationError

__all__ = [
    "ESCALATE",
    "GIVE_UP",
    "ONE_FOR_ONE",
    "RestartPolicy",
    "SupervisionEscalation",
    "Supervisor",
]

ONE_FOR_ONE = "one_for_one"
GIVE_UP = "give_up"
ESCALATE = "escalate"

_STRATEGIES = (ONE_FOR_ONE, GIVE_UP, ESCALATE)


class SupervisionEscalation(SimulationError):
    """A host kept failing past its restart budget under ``escalate``."""

    def __init__(self, host: str, restarts: int):
        self.host = host
        self.restarts = restarts
        super().__init__(
            f"host {host!r} failed again after {restarts} restart(s); "
            "escalate policy gives up on the whole run"
        )


@dataclass(frozen=True)
class RestartPolicy:
    """How the supervisor reacts to an announced host failure."""

    strategy: str = ONE_FOR_ONE
    #: Simulated seconds between the announcement and the reboot
    #: (models reboot + daemon re-registration time).
    delay_s: float = 0.05
    #: Per-host restart budget for ``give_up`` / ``escalate``.
    max_restarts: int = 3

    def __post_init__(self):
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown restart strategy {self.strategy!r} "
                f"(choose from {', '.join(_STRATEGIES)})"
            )
        if self.delay_s < 0:
            raise ValueError(f"negative restart delay {self.delay_s}")
        if self.max_restarts < 0:
            raise ValueError(f"negative restart budget {self.max_restarts}")


class Supervisor:
    """Applies a :class:`RestartPolicy` to announced host failures."""

    def __init__(self, network, policy: RestartPolicy, suite=None):
        self.network = network
        self.sim = network.sim
        self.policy = policy
        self.suite = suite
        #: host -> restarts scheduled so far.
        self.restarts: dict[str, int] = {}
        #: Hosts left down after exhausting the budget (``give_up``).
        self.gave_up: list[str] = []
        network.add_failure_listener(self._on_failure)

    def _on_failure(self, host) -> None:
        name = host.name
        done = self.restarts.get(name, 0)
        policy = self.policy
        within_budget = (
            policy.strategy == ONE_FOR_ONE or done < policy.max_restarts
        )
        if within_budget:
            self.restarts[name] = done + 1
            if self.suite is not None:
                self.suite.note(
                    "restart_scheduled", host=name, attempt=done + 1,
                    delay_s=policy.delay_s,
                )
            self.sim.process(self._restart_later(name, policy.delay_s))
        elif policy.strategy == ESCALATE:
            if self.suite is not None:
                self.suite.note("escalate", host=name, restarts=done)
            raise SupervisionEscalation(name, done)
        else:  # GIVE_UP
            self.gave_up.append(name)
            if self.suite is not None:
                self.suite.note("gave_up", host=name, restarts=done)

    def _restart_later(self, name: str, delay_s: float):
        yield self.sim.timeout(delay_s)
        self.network.restart_host(name)

    def stats(self) -> dict:
        return {
            "strategy": self.policy.strategy,
            "restarts": sum(self.restarts.values()),
            "gave_up": list(self.gave_up),
        }

    def __repr__(self) -> str:
        return (
            f"<Supervisor {self.policy.strategy} "
            f"restarts={sum(self.restarts.values())}>"
        )
