"""Failure detectors: turning crashes into *detected* failures.

The fault layer's oracle mode announces a crash in the same call stack
that caused it — recovery is driven by perfect, instantaneous knowledge
no real system has.  The detectors here close that gap: each daemon is
monitored through periodic heartbeats (modeled arrivals with jittered
latency, not real packets — a detector must not perturb the workload it
watches), silence is turned into *suspicion*, and suspicion calls
:meth:`~repro.netsim.transport.Network.announce_failure`, which runs the
recovery listeners exactly as the oracle would — just later.

Two classical detectors are provided:

* :class:`HeartbeatDetector` — suspect after ``misses`` consecutive
  missed heartbeat intervals (the fixed-timeout detector);
* :class:`PhiAccrualDetector` — Hayashibara et al.'s phi-accrual
  detector: the suspicion level ``phi = -log10(P(a beat could still be
  this late))`` is computed from the observed inter-arrival history, so
  the threshold adapts to the link's actual jitter.  A ``max_silence_s``
  cap bounds the worst case.

Both run on *background* (daemon) timeouts, so an armed detector never
keeps the simulation alive by itself; the transport's detection-mode
keep-alive (one foreground timeout per crash, ``horizon_s`` long)
guarantees the simulation cannot drain before the detector has had its
chance.  ``horizon_s`` is each detector's worst-case detection latency.

False suspicions are harmless by construction — announcing a live host
is a no-op — but they are counted, because a detector tuned so tight it
cries wolf is exactly the trade-off the suspicion threshold sweeps in
``BENCH_resilience.json`` measure.
"""

from __future__ import annotations

import math
from collections import deque

__all__ = ["FailureDetector", "HeartbeatDetector", "PhiAccrualDetector"]

#: RNG stream for modeled heartbeat-arrival jitter.
HEARTBEAT_STREAM = "resilience.heartbeat"


class FailureDetector:
    """Base class: per-host beat bookkeeping + suspicion plumbing.

    Subclasses define :attr:`horizon_s` (worst-case detection latency)
    and :meth:`_suspicious` (is this host's silence long enough?).
    Construction arms the network's detection mode and starts the
    monitor loop; nothing else in the system needs to know a detector
    exists.
    """

    def __init__(self, network, interval_s: float, rng, suite=None):
        if interval_s <= 0:
            raise ValueError(
                f"heartbeat interval must be positive, got {interval_s}"
            )
        self.network = network
        self.sim = network.sim
        self.interval_s = interval_s
        self.suite = suite
        self._rng = rng.stream(HEARTBEAT_STREAM)
        #: host -> arrival time of its most recent (modeled) heartbeat.
        self._last_beat: dict[str, float] = {}
        #: host -> recent inter-arrival gaps (phi-accrual history).
        self._history: dict[str, deque] = {}
        self._suspected: set[str] = set()
        #: Exact crash times, recorded for latency accounting only —
        #: the *suspicion* logic never reads them.
        self._crash_times: dict[str, float] = {}
        self.suspicions = 0
        self.false_suspicions = 0
        self.detection_latencies: list[float] = []

        network.add_crash_listener(self._record_crash)
        network.add_restart_listener(self._on_restart)
        network.enable_detection(self.horizon_s)
        # Baseline beat for every host at arm time: a host that crashes
        # before the first monitor tick must still accrue silence, or it
        # would never be suspected at all.
        for name in network.host_names:
            self._last_beat[name] = self.sim.now
        self.sim.process(self._monitor(), daemon=True)

    # -- subclass surface --------------------------------------------------

    @property
    def horizon_s(self) -> float:
        """Worst-case detection latency (transport keep-alive bound)."""
        raise NotImplementedError

    def _suspicious(self, name: str, silence_s: float) -> bool:
        """Has ``name`` been silent long enough to suspect?"""
        raise NotImplementedError

    # -- bookkeeping -------------------------------------------------------

    def _record_crash(self, host, lost_packets) -> None:
        self._crash_times.setdefault(host.name, self.sim.now)

    def _on_restart(self, host) -> None:
        # The rebooted daemon beats again: clear its silence history so
        # the pre-crash gap does not poison the inter-arrival stats.
        name = host.name
        self._suspected.discard(name)
        self._crash_times.pop(name, None)
        self._last_beat[name] = self.sim.now
        self._history.pop(name, None)

    def _monitor(self):
        """Daemon loop: evaluate silence, then record fresh beats.

        Evaluation happens *before* recording, so a crashed host's
        silence accrues from its last real beat.  Live hosts' beats
        arrive with jittered latency drawn from the
        ``resilience.heartbeat`` stream — modeled arrivals, not packets,
        so the detector adds zero load to the wire it monitors.
        """
        interval = self.interval_s
        jitter = 0.25 * interval
        while True:
            yield self.sim.timeout(interval, daemon=True)
            now = self.sim.now
            for name in self.network.host_names:
                host = self.network.host(name)
                last = self._last_beat.get(name)
                if last is not None and name not in self._suspected:
                    silence = now - last
                    if self._suspicious(name, silence):
                        self._suspect(name, host)
                if not host.crashed:
                    arrival = now - jitter * self._rng.random()
                    if last is not None:
                        history = self._history.setdefault(
                            name, deque(maxlen=32)
                        )
                        history.append(arrival - last)
                    self._last_beat[name] = arrival

    def _suspect(self, name: str, host) -> None:
        self._suspected.add(name)
        self.suspicions += 1
        announced = self.network.announce_failure(name)
        if announced:
            crash_time = self._crash_times.get(name, self.sim.now)
            self.detection_latencies.append(self.sim.now - crash_time)
        elif not host.crashed:
            # Cried wolf: the host is alive (announce was a no-op).
            # Give it a clean slate so one jitter spike does not turn
            # into a suspicion per tick forever.
            self.false_suspicions += 1
            self._suspected.discard(name)
            self._last_beat[name] = self.sim.now
            self._history.pop(name, None)
        if self.suite is not None:
            self.suite.note(
                "suspect", host=name, announced=announced,
                false=not host.crashed,
            )

    def stats(self) -> dict:
        latencies = self.detection_latencies
        return {
            "suspicions": self.suspicions,
            "false_suspicions": self.false_suspicions,
            "detections": len(latencies),
            "detection_latency_mean_s": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "detection_latency_max_s": max(latencies, default=0.0),
            "horizon_s": self.horizon_s,
        }

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} interval={self.interval_s:g}s "
            f"suspected={sorted(self._suspected)}>"
        )


class HeartbeatDetector(FailureDetector):
    """Fixed-timeout detector: suspect after ``misses`` silent intervals.

    The paper's era default: simple, predictable, and exactly as good
    as its timeout — ``misses`` low means fast detection and false
    suspicions under jitter; high means slow recovery.  That trade-off
    is the x-axis of the detection-latency sweep in
    ``BENCH_resilience.json``.
    """

    def __init__(self, network, interval_s: float, misses: int, rng,
                 suite=None):
        if misses < 1:
            raise ValueError(f"need at least one miss, got {misses}")
        self.misses = misses
        super().__init__(network, interval_s, rng, suite=suite)

    @property
    def horizon_s(self) -> float:
        # misses silent intervals + one tick granularity + jitter slack.
        return self.interval_s * (self.misses + 2)

    def _suspicious(self, name: str, silence_s: float) -> bool:
        return silence_s > self.misses * self.interval_s


class PhiAccrualDetector(FailureDetector):
    """Phi-accrual detector (Hayashibara et al., SRDS 2004).

    ``phi(silence) = -log10(1 - F(silence))`` where ``F`` is a normal
    fit of the observed inter-arrival distribution; suspicion fires at
    ``phi >= threshold``.  Adaptive: a jittery link automatically earns
    a longer effective timeout.  ``max_silence_s`` caps the silence a
    pathological history could excuse, which is what makes
    :attr:`horizon_s` finite.
    """

    #: Minimum samples before the normal fit is trusted.
    MIN_SAMPLES = 4

    def __init__(self, network, interval_s: float, threshold: float,
                 max_silence_s: float, rng, suite=None):
        if threshold <= 0:
            raise ValueError(f"phi threshold must be positive, got "
                             f"{threshold}")
        if max_silence_s <= interval_s:
            raise ValueError(
                f"max_silence_s ({max_silence_s}) must exceed the "
                f"heartbeat interval ({interval_s})"
            )
        self.threshold = threshold
        self.max_silence_s = max_silence_s
        super().__init__(network, interval_s, rng, suite=suite)

    @property
    def horizon_s(self) -> float:
        return self.max_silence_s + 2 * self.interval_s

    def phi(self, name: str, silence_s: float) -> float:
        """Current suspicion level for ``name`` after ``silence_s``."""
        history = self._history.get(name)
        if history is None or len(history) < self.MIN_SAMPLES:
            # Too little history for a fit: fall back to the cap alone.
            return float("inf") if silence_s >= self.max_silence_s else 0.0
        n = len(history)
        mean = sum(history) / n
        variance = sum((x - mean) ** 2 for x in history) / n
        # Floor the spread so a freakishly regular history cannot make
        # the detector hair-triggered.
        sigma = max(math.sqrt(variance), 0.05 * self.interval_s)
        z = (silence_s - mean) / sigma
        p_later = 0.5 * math.erfc(z / math.sqrt(2.0))
        if p_later <= 0.0:
            return float("inf")
        return -math.log10(p_later)

    def _suspicious(self, name: str, silence_s: float) -> bool:
        if silence_s >= self.max_silence_s:
            return True
        return self.phi(name, silence_s) >= self.threshold
