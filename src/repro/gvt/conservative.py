"""Conservative virtual-time kernel (barrier-synchronous).

The safest execution rule: an event at timestamp ``t`` may be processed
only when GVT has reached ``t``, i.e. no event anywhere has a smaller
timestamp.  This engine repeatedly

1. runs a synchronization round (the "continuous periodic exchange of
   timing information among all participating daemons" whose cost the
   paper calls significant, §2.2) — charged
   ``gvt_round_s × n_lps + 2 × wire_latency_s`` of simulated time;
2. advances GVT to the minimum pending timestamp;
3. processes *all* events at that timestamp, in parallel across LPs
   (events on the same LP are handled in uid order).

New events are delivered with the configured message latency.  Because
every handler sees its LP's events in nondecreasing timestamp order by
construction, no rollback machinery is needed — that is the trade:
synchronization overhead on every advance instead.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Iterable, Optional

from ..des import Simulator
from ..netsim import CostModel, DEFAULT_COSTS
from .base import Event, LpSpec, RunStats, VirtualTimeKernelError

__all__ = ["ConservativeKernel"]


class ConservativeKernel:
    """Barrier-synchronous conservative executor."""

    def __init__(
        self,
        sim: Simulator,
        lps: Iterable[LpSpec],
        costs: CostModel = DEFAULT_COSTS,
        message_latency_s: Optional[float] = None,
    ):
        self.sim = sim
        self.costs = costs
        self.message_latency_s = (
            message_latency_s
            if message_latency_s is not None
            else costs.wire_latency_s
        )
        self._lps: dict[str, LpSpec] = {}
        for spec in lps:
            if spec.name in self._lps:
                raise VirtualTimeKernelError(
                    f"duplicate LP name {spec.name!r}"
                )
            self._lps[spec.name] = spec
        if not self._lps:
            raise VirtualTimeKernelError("kernel needs at least one LP")
        self._queue: list = []  # heap of (timestamp, uid, event)
        self.gvt = 0.0
        self.stats = RunStats()

    # -- event intake -------------------------------------------------------

    def post(self, event: Event) -> None:
        """Schedule an initial event (before or during the run)."""
        if event.anti:
            raise VirtualTimeKernelError(
                "anti-messages are a Time-Warp concept; conservative "
                "kernels never see them"
            )
        if event.target not in self._lps:
            raise VirtualTimeKernelError(f"unknown LP {event.target!r}")
        if event.timestamp < self.gvt:
            raise VirtualTimeKernelError(
                f"event at {event.timestamp} is before GVT {self.gvt}"
            )
        heapq.heappush(self._queue, (event.timestamp, event.uid, event))

    # -- execution ------------------------------------------------------------

    def _round_delay(self) -> float:
        return (
            self.costs.gvt_round_s * len(self._lps)
            + 2 * self.costs.wire_latency_s
        )

    def run(self, until_vt: float = float("inf")) -> RunStats:
        """Process events in global timestamp order until the queue
        drains or GVT passes ``until_vt``; returns run statistics."""
        process = self.sim.process(self._driver(until_vt))
        self.sim.run(until=process)
        self.stats.final_gvt = self.gvt
        self.stats.wallclock_s = self.sim.now
        return self.stats

    def _driver(self, until_vt: float):
        metrics = self.sim.obs
        while self._queue:
            # Synchronization round to agree on the global minimum.
            round_start = self.sim.now
            yield self.sim.timeout(self._round_delay())
            self.stats.gvt_advances += 1
            if metrics is not None:
                metrics.count("gvt.min_reductions")
                metrics.count("gvt.advances")
                metrics.span("gvt", "round", "gvt", round_start, self.sim.now)
            timestamp = self._queue[0][0]
            if timestamp > until_vt:
                break
            if timestamp < self.gvt:
                raise VirtualTimeKernelError("GVT moved backwards")
            self.gvt = timestamp

            batch: dict[str, list] = defaultdict(list)
            while self._queue and self._queue[0][0] == timestamp:
                _ts, _uid, event = heapq.heappop(self._queue)
                batch[event.target].append(event)

            # LPs work concurrently; each processes its own events
            # sequentially.  Wall-clock cost = max over LPs.
            longest = 0.0
            outputs: list[Event] = []
            for name, events in batch.items():
                spec = self._lps[name]
                for event in sorted(events, key=Event.sort_key):
                    produced = spec.handler(spec.state, event) or []
                    self.stats.events_processed += 1
                    for new_event in produced:
                        if new_event.timestamp <= event.timestamp:
                            raise VirtualTimeKernelError(
                                f"LP {name!r} produced an event at "
                                f"{new_event.timestamp} <= now "
                                f"{event.timestamp} (needs positive "
                                "lookahead)"
                            )
                        outputs.append(new_event)
                longest = max(longest, spec.cost_s * len(events))
            if longest > 0:
                work_start = self.sim.now
                yield self.sim.timeout(longest)
                if metrics is not None:
                    metrics.count(
                        "gvt.events_processed_batch", len(batch)
                    )
                    metrics.span(
                        "gvt", "batch", "compute",
                        work_start, self.sim.now,
                    )
            if outputs:
                yield self.sim.timeout(self.message_latency_s)
                if metrics is not None:
                    metrics.charge("protocol", self.message_latency_s)
                for new_event in outputs:
                    self.post(new_event)
        return self.stats
