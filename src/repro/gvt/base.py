"""Common model for the standalone virtual-time kernels (§2.2).

The paper: "MESSENGERS supports both a conservative and an optimistic
approach [Jef85, Fuj90]".  The conservative engine wired into the
daemons lives in :mod:`repro.messengers.vtime`; this package provides
*library-level* virtual-time kernels over an explicit logical-process
(LP) model, so the two synchronization strategies can be compared head
to head on the same workload (benchmark ABL-GVT).

An application defines:

* a set of named LPs, each with a state dict;
* a handler ``handle(lp_state, event) -> [Event, ...]`` producing new
  events (possibly for other LPs, strictly in the timestamp future);
* optionally a per-event processing cost in seconds.

Both kernels guarantee that handlers observe events in nondecreasing
timestamp order per LP (the optimistic kernel enforces this by rolling
back when it speculated wrong), so final states are identical between
engines — a property the tests assert.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable

__all__ = ["Event", "LpSpec", "RunStats", "VirtualTimeKernelError"]

_event_ids = itertools.count(1)


class VirtualTimeKernelError(RuntimeError):
    """Protocol violation inside a virtual-time kernel."""


@dataclass(frozen=True)
class Event:
    """A timestamped event destined for one LP.

    ``anti`` marks Time-Warp anti-messages (cancellations); user code
    never creates those.  ``uid`` identifies the message/anti-message
    pair.
    """

    timestamp: float
    target: str
    payload: Any = None
    anti: bool = False
    uid: int = field(default_factory=lambda: next(_event_ids))

    def as_anti(self) -> "Event":
        """The annihilating twin of this event."""
        return replace(self, anti=True)

    def sort_key(self):
        return (self.timestamp, self.uid)


@dataclass
class LpSpec:
    """Definition of one logical process.

    ``handler(state, event) -> list[Event]`` mutates ``state`` and
    returns new events.  Events it returns must have timestamps
    strictly greater than the handled event's (positive lookahead) —
    both kernels check this.

    ``cost_s`` charges wall-clock (simulated) seconds per handled event;
    ``state_bytes`` sizes Time-Warp state snapshots for cost accounting.
    """

    name: str
    handler: Callable[[dict, Event], list]
    state: dict = field(default_factory=dict)
    cost_s: float = 0.0
    state_bytes: int = 64


@dataclass
class RunStats:
    """What a kernel run reports."""

    events_processed: int = 0
    events_rolled_back: int = 0
    rollbacks: int = 0
    anti_messages: int = 0
    gvt_advances: int = 0
    final_gvt: float = 0.0
    wallclock_s: float = 0.0  # simulated seconds
    lps_killed: int = 0
    orphans_cancelled: int = 0  # events to/from killed LPs annihilated

    @property
    def efficiency(self) -> float:
        """Committed / total processed (1.0 for conservative runs)."""
        total = self.events_processed
        if total == 0:
            return 1.0
        return (total - self.events_rolled_back) / total
