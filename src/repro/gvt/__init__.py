"""Global Virtual Time kernels (§2.2 of the paper).

Two library-level engines over an explicit logical-process model:

* :class:`ConservativeKernel` — barrier-synchronous, pays a
  synchronization round per GVT advance;
* :class:`TimeWarpKernel` — optimistic, with state saving, straggler
  rollback, anti-messages, exact GVT and fossil collection.

(The conservative engine wired directly into the MESSENGERS daemons —
the one ``M_sched_time_abs``/``M_sched_time_dlt`` use — lives in
:mod:`repro.messengers.vtime`.)
"""

from .base import Event, LpSpec, RunStats, VirtualTimeKernelError
from .conservative import ConservativeKernel
from .optimistic import TimeWarpKernel
from .workloads import phold, pipeline, skewed_load

__all__ = [
    "ConservativeKernel",
    "Event",
    "LpSpec",
    "RunStats",
    "TimeWarpKernel",
    "VirtualTimeKernelError",
    "phold",
    "pipeline",
    "skewed_load",
]
