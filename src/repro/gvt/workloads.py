"""Reference workloads for comparing virtual-time kernels.

* :func:`phold` — the classic PHOLD stress test: a fixed population of
  jobs bouncing between LPs with random timestamp increments.  Low
  lookahead and cross-LP traffic make it rollback-prone, which is what
  separates conservative from optimistic engines.
* :func:`pipeline` — a feed-forward chain (excellent lookahead), the
  conservative-friendly extreme.
* :func:`skewed_load` — LPs with very different per-event costs, where
  optimism lets fast LPs run ahead (the case the paper's §2.2 says
  favours optimistic execution).

Each builder returns ``(lp_specs, initial_events)``; run them on either
kernel.  All randomness is drawn up front from a seeded RNG so both
kernels process the *same* logical workload (handler behaviour depends
only on event payloads and LP state, never on a live RNG), which makes
state equivalence between engines exactly checkable.
"""

from __future__ import annotations

import random

from .base import Event, LpSpec

__all__ = ["phold", "pipeline", "skewed_load"]


def phold(
    n_lps: int = 4,
    population: int = 8,
    hops: int = 20,
    seed: int = 0,
    cost_s: float = 1e-4,
    mean_increment: float = 1.0,
):
    """Build a PHOLD instance.

    Each job performs ``hops`` moves; move ``k`` of job ``j`` goes to a
    pre-drawn LP with a pre-drawn timestamp increment, so the event
    graph is fully deterministic.  LP state counts arrivals per job.
    """
    rng = random.Random(seed)
    # Pre-draw the full itinerary of every job: (target_lp, increment).
    itineraries = [
        [
            (
                rng.randrange(n_lps),
                rng.uniform(0.5 * mean_increment, 1.5 * mean_increment),
            )
            for _ in range(hops)
        ]
        for _ in range(population)
    ]

    def handler(state, event):
        job, hop_index = event.payload
        state["arrivals"] = state.get("arrivals", 0) + 1
        state.setdefault("jobs_seen", []).append((job, hop_index))
        if hop_index + 1 >= hops:
            return []
        target, increment = itineraries[job][hop_index + 1]
        return [
            Event(
                timestamp=event.timestamp + increment,
                target=f"lp{target}",
                payload=(job, hop_index + 1),
            )
        ]

    specs = [
        LpSpec(name=f"lp{index}", handler=handler, cost_s=cost_s)
        for index in range(n_lps)
    ]
    initial = []
    for job in range(population):
        target, increment = itineraries[job][0]
        initial.append(
            Event(timestamp=increment, target=f"lp{target}",
                  payload=(job, 0))
        )
    return specs, initial


def pipeline(
    stages: int = 5,
    items: int = 10,
    stage_delay: float = 1.0,
    cost_s: float = 1e-4,
):
    """A feed-forward pipeline: stage k forwards to stage k+1."""

    def handler(state, event):
        item, stage = event.payload
        state["handled"] = state.get("handled", 0) + 1
        if stage + 1 >= stages:
            return []
        return [
            Event(
                timestamp=event.timestamp + stage_delay,
                target=f"stage{stage + 1}",
                payload=(item, stage + 1),
            )
        ]

    specs = [
        LpSpec(name=f"stage{index}", handler=handler, cost_s=cost_s)
        for index in range(stages)
    ]
    initial = [
        Event(timestamp=1.0 + item * 0.1, target="stage0",
              payload=(item, 0))
        for item in range(items)
    ]
    return specs, initial


def skewed_load(
    n_lps: int = 4,
    rounds: int = 10,
    slow_factor: float = 20.0,
    base_cost_s: float = 1e-4,
):
    """A ring where one LP is much slower than the rest.

    Under conservative execution every GVT advance waits for the slow
    LP; under Time Warp the fast LPs speculate ahead and almost never
    roll back (the ring imposes its own causality).
    """

    def handler(state, event):
        round_index = event.payload
        state["rounds"] = state.get("rounds", 0) + 1
        if round_index + 1 >= rounds:
            return []
        me = int(event.target[2:])
        nxt = (me + 1) % n_lps
        return [
            Event(
                timestamp=event.timestamp + 1.0,
                target=f"lp{nxt}",
                payload=round_index + 1,
            )
        ]

    specs = []
    for index in range(n_lps):
        cost = base_cost_s * (slow_factor if index == 0 else 1.0)
        specs.append(LpSpec(name=f"lp{index}", handler=handler, cost_s=cost))
    initial = [Event(timestamp=1.0, target="lp0", payload=0)]
    return specs, initial
