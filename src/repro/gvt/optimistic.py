"""Optimistic virtual-time kernel — Time Warp (Jefferson 1985).

"Optimistic approaches permit processors to advance their local virtual
times at their own pace but require that a computation be rolled back if
a 'straggler' Messenger arrives … This, in turn, may require the sending
of 'anti-Messengers' to cancel Messengers that departed during the time
that is being rolled back" (§2.2).

Implementation per LP:

* **state saving** — before every handled event the LP snapshots its
  state (charged ``state_save_per_byte_s × state_bytes``);
* **straggler detection** — an arriving event ordered before the LP's
  last processed event triggers a rollback (charged ``rollback_s``);
* **anti-messages** — rollback sends the annihilating twin of every
  output the undone events produced; anti-messages cancel their twins
  wherever they are (pending, processed — causing cascaded rollback —
  or still in transit, caught on arrival);
* **GVT & fossil collection** — a controller computes the true global
  minimum of unprocessed/in-transit timestamps (exact in a simulator)
  and LPs discard history older than GVT.

Final LP states are provably identical to a conservative execution of
the same workload; ``tests/test_gvt.py`` asserts exactly that, and the
ABL-GVT benchmark compares the two kernels' virtual-time costs.
"""

from __future__ import annotations

import copy
import heapq
from dataclasses import dataclass
from typing import Iterable, Optional

from ..des import Simulator, Store
from ..netsim import CostModel, DEFAULT_COSTS
from .base import Event, LpSpec, RunStats, VirtualTimeKernelError

__all__ = ["TimeWarpKernel"]

_NEG_INF = float("-inf")


@dataclass
class _ProcessedEntry:
    """History record enabling rollback of one handled event."""

    event: Event
    snapshot: dict
    outputs: list


class _Lp:
    """Runtime wrapper around one LpSpec."""

    def __init__(self, spec: LpSpec, kernel: "TimeWarpKernel"):
        self.spec = spec
        self.kernel = kernel
        self.inbox: Store = Store(kernel.sim)
        self.pending: list = []  # heap of (ts, uid, event)
        self.processed: list[_ProcessedEntry] = []
        self.last_key: tuple = (_NEG_INF, 0)
        #: Positive events annihilated before arrival (anti came first).
        self.doomed: set = set()
        #: Killed by :meth:`TimeWarpKernel.kill_lp` (crash injection).
        self.dead = False

    # -- queue helpers ----------------------------------------------------

    def push_pending(self, event: Event) -> None:
        heapq.heappush(self.pending, (event.timestamp, event.uid, event))
        self.kernel._outstanding_changed(+1)
        self.inbox.put(None)  # wake the LP loop

    def pop_pending(self) -> Event:
        """Remove the minimum event WITHOUT outstanding accounting; the
        LP loop settles accounting after the event is fully handled so
        quiescence is never declared mid-processing."""
        _ts, _uid, event = heapq.heappop(self.pending)
        return event

    def remove_pending(self, uid: int) -> bool:
        for index, (_ts, entry_uid, _event) in enumerate(self.pending):
            if entry_uid == uid:
                self.pending.pop(index)
                heapq.heapify(self.pending)
                self.kernel._outstanding_changed(-1)
                return True
        return False

    def min_pending_ts(self) -> float:
        return self.pending[0][0] if self.pending else float("inf")


class TimeWarpKernel:
    """The optimistic executor."""

    def __init__(
        self,
        sim: Simulator,
        lps: Iterable[LpSpec],
        costs: CostModel = DEFAULT_COSTS,
        message_latency_s: Optional[float] = None,
        gvt_interval_s: float = 0.05,
    ):
        self.sim = sim
        self.costs = costs
        self.message_latency_s = (
            message_latency_s
            if message_latency_s is not None
            else costs.wire_latency_s
        )
        self.gvt_interval_s = gvt_interval_s
        self.gvt = 0.0
        self.stats = RunStats()
        self._lps: dict[str, _Lp] = {}
        for spec in lps:
            if spec.name in self._lps:
                raise VirtualTimeKernelError(
                    f"duplicate LP name {spec.name!r}"
                )
            self._lps[spec.name] = _Lp(spec, self)
        if not self._lps:
            raise VirtualTimeKernelError("kernel needs at least one LP")
        self._in_transit: dict[int, float] = {}  # uid -> timestamp
        self._outstanding = 0
        self._done = sim.event()
        self._started = False

    # -- public API ---------------------------------------------------------

    def post(self, event: Event) -> None:
        """Schedule an initial event."""
        lp = self._lp_of(event)
        lp.push_pending(event)

    def run(self, until_vt: float = float("inf")) -> RunStats:
        """Execute to completion; returns run statistics.

        ``until_vt`` bounds committed virtual time: once GVT exceeds it
        the run is cut off (remaining events are abandoned).
        """
        self._until_vt = until_vt
        if not self._started:
            self._started = True
            for lp in self._lps.values():
                self.sim.process(self._lp_loop(lp), daemon=True)
            self.sim.process(self._gvt_controller(), daemon=True)
        if self._outstanding == 0:
            self._finish()
        self.sim.run(until=self._done)
        self.stats.final_gvt = self.gvt
        self.stats.wallclock_s = self.sim.now
        return self.stats

    def state_of(self, name: str) -> dict:
        """Final (or current) state of one LP."""
        return self._lps[name].spec.state

    def kill_lp(self, name: str) -> None:
        """Crash one LP mid-run (fault injection).

        Its pending events are discarded, and anti-messages go out for
        every *uncommitted* event it ever sent (timestamp > GVT) — those
        sends are orphans of speculative work that can no longer be
        confirmed, and leaving them uncancelled would let downstream LPs
        commit state derived from a vanished sender.  Committed history
        (≤ GVT) stands, exactly as fossil collection guarantees.
        """
        try:
            lp = self._lps[name]
        except KeyError:
            raise VirtualTimeKernelError(f"unknown LP {name!r}") from None
        if lp.dead:
            return
        lp.dead = True
        self.stats.lps_killed += 1
        metrics = self.sim.obs
        if metrics is not None:
            metrics.count("gvt.lps_killed")
            metrics.instant(
                "gvt", "lp_killed", self.sim.now, args={"lp": name}
            )
        while lp.pending:
            lp.pop_pending()
            self.stats.orphans_cancelled += 1
            if metrics is not None:
                metrics.count("gvt.orphans_cancelled")
            self._outstanding_changed(-1)
        for entry in lp.processed:
            for output in entry.outputs:
                if output.timestamp > self.gvt:
                    self.stats.orphans_cancelled += 1
                    if metrics is not None:
                        metrics.count("gvt.orphans_cancelled")
                    self._send(output.as_anti())
        lp.processed.clear()
        lp.doomed.clear()

    # -- internals ------------------------------------------------------------

    def _lp_of(self, event: Event) -> _Lp:
        try:
            return self._lps[event.target]
        except KeyError:
            raise VirtualTimeKernelError(
                f"unknown LP {event.target!r}"
            ) from None

    def _outstanding_changed(self, delta: int) -> None:
        self._outstanding += delta
        if self._outstanding == 0 and self._started:
            self._finish()

    def _finish(self) -> None:
        if not self._done.triggered:
            self._done.succeed()

    # -- message transport ----------------------------------------------------------

    def _send(self, event: Event) -> None:
        """Dispatch an event (or anti-event) with transit latency."""
        self._in_transit[event.uid if not event.anti else -event.uid] = (
            event.timestamp
        )
        self._outstanding_changed(+1)
        self.sim.process(self._deliver(event))

    def _deliver(self, event: Event):
        yield self.sim.timeout(self.message_latency_s)
        lp = self._lp_of(event)
        # Absorb first, then settle the in-transit accounting, so that
        # quiescence cannot be declared between arrival and absorption.
        if lp.dead:
            # Mail for a crashed LP — positive or anti — is an orphan;
            # the kernel already cancelled everything the LP owed.
            self.stats.orphans_cancelled += 1
            metrics = self.sim.obs
            if metrics is not None:
                metrics.count("gvt.orphans_cancelled")
        else:
            self._absorb(lp, event)
        del self._in_transit[event.uid if not event.anti else -event.uid]
        self._outstanding_changed(-1)

    def _absorb(self, lp: _Lp, event: Event) -> None:
        """Classify an arrival: anti, straggler, or plain pending."""
        if event.anti:
            self.stats.anti_messages += 1
            metrics = self.sim.obs
            if metrics is not None:
                metrics.count("gvt.anti_messages")
            self._annihilate(lp, event)
            return
        if event.uid in lp.doomed:
            lp.doomed.discard(event.uid)  # cancelled before arrival
            return
        key = (event.timestamp, event.uid)
        if key <= lp.last_key:
            self._rollback(lp, key)
        lp.push_pending(event)

    def _annihilate(self, lp: _Lp, anti: Event) -> None:
        if lp.remove_pending(anti.uid):
            return
        processed_keys = [
            (entry.event.timestamp, entry.event.uid)
            for entry in lp.processed
        ]
        key = (anti.timestamp, anti.uid)
        if key in processed_keys:
            # The positive twin was already handled: undo back to it,
            # then drop it instead of re-queueing.
            self._rollback(lp, key, drop_uid=anti.uid)
            return
        # Twin still in transit: doom it so it dies on arrival.
        lp.doomed.add(anti.uid)

    def _rollback(self, lp: _Lp, to_key: tuple, drop_uid: Optional[int] = None):
        """Undo all processed events ordered at or after ``to_key``."""
        self.stats.rollbacks += 1
        metrics = self.sim.obs
        if metrics is not None:
            metrics.count("gvt.rollbacks")
            metrics.instant(
                "gvt", "rollback", self.sim.now,
                args={"lp": lp.spec.name, "to": to_key[0]},
            )
        undone: list[_ProcessedEntry] = []
        while lp.processed:
            entry = lp.processed[-1]
            entry_key = (entry.event.timestamp, entry.event.uid)
            if entry_key < to_key:
                break
            lp.processed.pop()
            undone.append(entry)
        if not undone:
            return
        # Restore the snapshot taken before the earliest undone event.
        lp.spec.state.clear()
        lp.spec.state.update(undone[-1].snapshot)
        lp.last_key = (
            (lp.processed[-1].event.timestamp, lp.processed[-1].event.uid)
            if lp.processed
            else (_NEG_INF, 0)
        )
        for entry in undone:
            self.stats.events_rolled_back += 1
            if metrics is not None:
                metrics.count("gvt.events_rolled_back")
            # Cancel everything these events sent.
            for output in entry.outputs:
                self._send(output.as_anti())
            if drop_uid is not None and entry.event.uid == drop_uid:
                continue  # annihilated with its anti-message
            lp.push_pending(entry.event)

    # -- LP execution -----------------------------------------------------------------

    def _lp_loop(self, lp: _Lp):
        spec = lp.spec
        costs = self.costs
        state_save_charge = spec.state_bytes * costs.state_save_per_byte_s
        per_event_charge = state_save_charge + spec.cost_s
        while True:
            if lp.dead:
                return
            if not lp.pending:
                yield lp.inbox.get()  # wake-up token
                continue
            # Charge state-save + processing time *before* touching any
            # state.  Stragglers arriving during the charge are absorbed
            # (possibly rolling back history) and the pop below then
            # picks the true minimum — no event is ever half-processed
            # across a simulation yield.
            if per_event_charge > 0:
                yield self.sim.timeout(per_event_charge)
                metrics = self.sim.obs
                if metrics is not None:
                    metrics.charge("gvt", state_save_charge)
                    metrics.charge("compute", spec.cost_s)
            if not lp.pending:
                continue

            # ---- atomic from here (no simulation yields) ----
            event = lp.pop_pending()
            snapshot = copy.deepcopy(spec.state)
            outputs = spec.handler(spec.state, event) or []
            self.stats.events_processed += 1
            metrics = self.sim.obs
            if metrics is not None:
                metrics.count("gvt.events_processed")
            for produced in outputs:
                if produced.timestamp <= event.timestamp:
                    raise VirtualTimeKernelError(
                        f"LP {spec.name!r} produced an event at "
                        f"{produced.timestamp} <= now {event.timestamp}"
                    )
            lp.processed.append(
                _ProcessedEntry(event, snapshot, list(outputs))
            )
            lp.last_key = (event.timestamp, event.uid)
            for produced in outputs:
                self._send(produced)
            # Event fully handled: settle the accounting deferred by
            # pop_pending (outputs are already counted as in transit).
            self._outstanding_changed(-1)

    # -- GVT & fossils -------------------------------------------------------------------

    def _compute_gvt(self) -> float:
        values = [ts for ts in self._in_transit.values()]
        values.extend(
            lp.min_pending_ts()
            for lp in self._lps.values()
            if lp.pending
        )
        return min(values, default=float("inf"))

    def _gvt_controller(self):
        while not self._done.triggered:
            yield self.sim.timeout(self.gvt_interval_s)
            new_gvt = self._compute_gvt()
            if new_gvt == float("inf"):
                continue
            if new_gvt > self.gvt:
                self.gvt = new_gvt
                self.stats.gvt_advances += 1
                metrics = self.sim.obs
                if metrics is not None:
                    metrics.count("gvt.advances")
                    metrics.gauge("gvt.value").set(self.gvt)
                self._fossil_collect()
                if self.gvt > getattr(self, "_until_vt", float("inf")):
                    self._finish()
                    return

    def _fossil_collect(self) -> None:
        """Discard history no rollback can ever need (ts < GVT)."""
        collected = 0
        for lp in self._lps.values():
            keep = [
                entry
                for entry in lp.processed
                if entry.event.timestamp >= self.gvt
            ]
            collected += len(lp.processed) - len(keep)
            lp.processed = keep
        if collected:
            metrics = self.sim.obs
            if metrics is not None:
                metrics.count("gvt.fossil_collected", collected)
