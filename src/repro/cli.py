"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``shell [--hosts N]``
    Start an interactive MESSENGERS shell on a fresh simulated LAN.
``run SCRIPT.mcl [args ...] [--hosts N]``
    Inject an MCL script file and run to quiescence (prints logs,
    statistics and the final logical network).
``figure {4,5,6,7,12a,12b}``
    Regenerate one paper figure and print its table + ASCII chart.
``stats [--system messengers|pvm] [--image N] [--procs P]``
    Run the Figure-4 Mandelbrot workload with the observability layer
    attached: prints the per-category virtual-time cost breakdown
    (where did the time go — copies? wire? interpretation? compute?),
    the key counters, and writes a Chrome ``trace_event`` JSON
    (load it at ``chrome://tracing`` or https://ui.perfetto.dev).
``chaos [--seed N] [--loss R] [--crash-host H] [--detect D] [--json]``
    Run the Figure-4 Mandelbrot workload on both systems under a
    deterministic fault plan (packet loss + one mid-run worker-host
    crash) and print the recovery counters.  The image must come out
    bit-identical to the fault-free run on both systems; the counters
    are reproducible for a given ``--seed``.  ``--detect
    heartbeat|phi`` triggers recovery through a failure detector
    instead of the oracle crash hook; ``--json`` emits the report as
    JSON.  Exits non-zero if either system diverges.
``search [--system S] [--schedules N] [--depth D] [--json] [--out F]``
    Explore fault schedules (crash times x drop rates) against the
    Mandelbrot workload with :class:`repro.resilience.ScheduleSearcher`
    and shrink any violation to a minimal reproducer.  ``--out FILE``
    writes the JSON report — including the shrunk minimal FaultPlan,
    replayable via ``FaultPlan.from_dict`` — to disk.  Exits non-zero
    when a violation is found.
``bench {perf,throughput,faults,resilience,mailbox,conversations,service,scale,sweep} [--parallel N]``
    Run a benchmark suite and emit the JSON blob the committed
    ``BENCH_*.json`` files are made of (stdout, or ``--out FILE``).
    ``perf`` is the throughput report behind ``BENCH_perf.json``;
    ``throughput`` is just its microbenchmarks; ``faults`` /
    ``resilience`` regenerate the fault and resilience sweeps;
    ``mailbox`` measures mail delivery latency and throughput under
    churn and 5% loss (``BENCH_mailbox.json``); ``conversations``
    drives saga chains with compensation over replicated mailboxes
    through a partition and churn (``BENCH_conversations.json``:
    per-side goodput during the cut, convergence time after heal,
    anti-entropy overhead); ``service`` sweeps the
    open-loop service workload across offered load, faults, and churn
    on both systems (``BENCH_service.json``); and ``sweep`` runs the
    seed-replication demo experiment.  ``--parallel N`` fans
    independent replications out over an ``N``-process pool (``faults``
    and ``sweep``) — the output is identical to the serial run by
    construction.
``selftest``
    Run the repository's test suite plus the observability, fault-path
    and resilience overhead guards (requires pytest).
``info``
    Version, package inventory and cost-model summary.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import fields

__all__ = ["main"]


def _build_system(n_hosts: int):
    from .des import Simulator
    from .messengers import MessengersSystem
    from .netsim import build_lan

    sim = Simulator()
    return MessengersSystem(build_lan(sim, n_hosts))


def _cmd_shell(args) -> int:
    from .messengers import Shell

    system = _build_system(args.hosts)
    shell = Shell(system)
    print(
        f"MESSENGERS shell — {args.hosts} daemons on one simulated "
        "Ethernet.  Type 'help'; 'quit' exits."
    )
    shell.repl()
    return 0


def _cmd_run(args) -> int:
    from pathlib import Path

    from .messengers import Shell

    path = Path(args.script)
    if not path.exists():
        print(f"error: no such script: {path}", file=sys.stderr)
        return 2
    system = _build_system(args.hosts)
    shell = Shell(system)
    command = f"inject {path} " + " ".join(args.args)
    print(shell.execute(command.strip()))
    print(shell.execute("run"))
    for line in system.log_lines:
        print("log:", line)
    print(shell.execute("stats"))
    print(shell.execute("nodes"))
    return 0


def _cmd_figure(args) -> int:
    from . import bench

    name = args.which.lower()
    if name in ("4", "5", "6"):
        image = {"4": 320, "5": 640, "6": 1280}[name]
        processor_counts = (1, 2, 4, 8, 16, 32) if args.full else (1, 2, 8, 32)
        sweep = bench.run_figure(
            image, processor_counts=processor_counts
        )
        print(sweep.as_figure().render())
    elif name == "7":
        data = bench.best_case_comparison(1280, 8)
        print(
            bench.format_table(
                ["procs", "pvm_s", "messengers_s", "ratio"],
                [
                    [r["procs"], r["pvm_s"], r["messengers_s"], r["ratio"]]
                    for r in data["rows"]
                ],
                title=(
                    "Figure 7 (sequential = "
                    f"{data['sequential_s']:.2f}s)"
                ),
            )
        )
    elif name in ("12a", "12b"):
        if name == "12a":
            sweep = bench.run_block_size_sweep(
                2,
                bench.PAPER_BLOCK_SIZES_2X2 if args.full
                else (25, 50, 100, 200),
                cpu_scale=bench.FIG12A_CPU_SCALE,
            )
        else:
            sweep = bench.run_block_size_sweep(
                3,
                bench.PAPER_BLOCK_SIZES_3X3 if args.full
                else (10, 20, 50, 100),
                cpu_scale=bench.FIG12B_CPU_SCALE,
            )
        print(sweep.as_figure().render())
    else:
        print(f"error: unknown figure {args.which!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_stats(args) -> int:
    from .apps.mandelbrot.kernel import TaskGrid
    from .apps.mandelbrot.messengers_app import run_messengers
    from .apps.mandelbrot.pvm_app import run_pvm
    from .obs import (
        MetricsRegistry,
        cost_breakdown,
        dump_chrome_trace,
        format_breakdown,
        format_counters,
    )

    registry = MetricsRegistry(opcode_counts=args.opcodes)
    grid = TaskGrid(args.image, args.grid)
    runner = run_messengers if args.system == "messengers" else run_pvm
    result = runner(grid, args.procs, metrics=registry)

    # One cost-ledger timeline per host (manager + P workers) plus the
    # shared Ethernet segment.
    n_tracks = args.procs + 2
    breakdown = cost_breakdown(registry, result.seconds, n_tracks)
    print(
        format_breakdown(
            breakdown,
            title=(
                f"{args.system} mandelbrot {args.image}x{args.image} "
                f"({args.grid}x{args.grid} blocks, {args.procs} procs) — "
                f"{result.seconds:.4f} simulated seconds"
            ),
        )
    )
    print()
    print(format_counters(registry))
    events = dump_chrome_trace(registry, args.trace)
    print()
    print(f"chrome trace: {args.trace} ({events} events; open at "
          "chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _cmd_chaos(args) -> int:
    import json

    from .apps.mandelbrot.kernel import TaskGrid
    from .apps.mandelbrot.messengers_app import run_messengers
    from .apps.mandelbrot.pvm_app import run_pvm
    from .faults import FaultPlan

    grid = TaskGrid(args.image, args.grid)
    crash_host = args.crash_host or f"host{min(2, args.procs)}"
    resilience = None
    if args.detect != "oracle":
        from .resilience import ResiliencePolicy

        resilience = ResiliencePolicy(detector=args.detect)
    report = {
        "image": args.image,
        "grid": args.grid,
        "procs": args.procs,
        "loss": args.loss,
        "crash_host": crash_host,
        "seed": args.seed,
        "detect": args.detect,
        "systems": {},
    }
    if not args.json:
        print(
            f"chaos: mandelbrot {args.image}x{args.image} "
            f"({args.grid}x{args.grid} blocks, {args.procs} procs), "
            f"loss={args.loss:g}, crash {crash_host} mid-run, "
            f"seed={args.seed}, recovery={args.detect}"
        )
    status = 0
    for label, runner in (
        ("messengers", run_messengers),
        ("pvm", run_pvm),
    ):
        clean = runner(grid, args.procs)
        plan = FaultPlan().drop(args.loss).crash(
            crash_host, at=0.5 * clean.seconds
        )
        faulty = runner(
            grid, args.procs, faults=plan, seed=args.seed,
            resilience=resilience,
        )
        identical = (
            faulty.image.shape == clean.image.shape
            and bool((faulty.image == clean.image).all())
        )
        report["systems"][label] = {
            "clean_s": clean.seconds,
            "faulty_s": faulty.seconds,
            "identical": identical,
            "faults": dict(sorted(faulty.stats["faults"].items())),
            **(
                {"resilience": faulty.stats["resilience"]}
                if "resilience" in faulty.stats else {}
            ),
        }
        if not args.json:
            verdict = "bit-identical" if identical else "DIVERGED"
            print()
            print(
                f"{label}: clean {clean.seconds:.4f}s -> "
                f"faulty {faulty.seconds:.4f}s, image {verdict}"
            )
            for name, value in sorted(faulty.stats["faults"].items()):
                print(f"  faults.{name:<28} {value}")
            if "resilience" in faulty.stats:
                stats = faulty.stats["resilience"]
                print(
                    f"  detector={stats['detector']} "
                    f"detections={stats['detections']} "
                    f"latency={stats['detection_latency_mean_s']:.4f}s "
                    f"false={stats['false_suspicions']}"
                )
        if not identical:
            status = 1
    report["status"] = status
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    return status


def _cmd_search(args) -> int:
    import json

    from .apps.mandelbrot.kernel import TaskGrid
    from .apps.mandelbrot.messengers_app import run_messengers
    from .apps.mandelbrot.pvm_app import run_pvm
    from .resilience import InvariantViolation, ScheduleSearcher

    grid = TaskGrid(args.image, args.grid)
    runner_fn = run_messengers if args.system == "messengers" else run_pvm
    clean = runner_fn(grid, args.procs)

    def runner(plan, seed):
        try:
            result = runner_fn(grid, args.procs, faults=plan, seed=seed)
        except ValueError as exc:
            # e.g. image assembly with missing blocks: the run failed
            # to produce a result at all.
            raise InvariantViolation("run-completes", str(exc), 0.0) from exc
        identical = (
            result.image.shape == clean.image.shape
            and bool((result.image == clean.image).all())
        )
        if not identical:
            raise InvariantViolation(
                "image-identity",
                "faulty image diverged from the fault-free run",
                result.seconds,
            )

    # host0 carries the manager/central node; by design the workloads
    # cannot survive losing it, so it only joins the crash vocabulary
    # when the user explicitly asks to hunt that class of violation.
    first_worker = 0 if args.include_manager else 1
    hosts = [f"host{i}" for i in range(first_worker, args.procs + 1)]
    searcher = ScheduleSearcher(
        runner, hosts, clean.seconds, seed=args.seed,
        loss_rates=(args.loss,) if args.loss > 0 else (),
    )
    report = searcher.search(
        max_schedules=args.schedules, max_depth=args.depth
    )
    report["system"] = args.system
    if args.out:
        from pathlib import Path

        # The shrunk minimal reproducer (when a violation was found) is
        # the payload worth keeping: report["minimal"]["plan"] is a
        # FaultPlan.to_dict() that FaultPlan.from_dict() replays
        # verbatim with report["minimal"]["seed"].
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.out}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"search: {args.system} mandelbrot {args.image}x{args.image}, "
            f"{report['schedules_run']} schedule(s) over "
            f"{report['atom_vocabulary']} atoms"
        )
        if report["clean"]:
            print("no violations found")
        else:
            for violation in report["violations"]:
                print(f"VIOLATION {violation['error']}: "
                      f"{violation['message']}")
                for atom in violation["atoms"]:
                    print(f"  atom: {atom}")
            if report["minimal"] is not None:
                print("minimal reproducer "
                      f"(seed={report['minimal']['seed']}):")
                for atom in report["minimal"]["atoms"]:
                    print(f"  atom: {atom}")
    return 0 if report["clean"] else 1


def _cmd_bench(args) -> int:
    import json

    from . import bench

    if args.which == "perf":
        blob = bench.run_perf_report(
            scale=args.scale,
            repeats=args.repeats,
            figures=not args.no_figures,
            backend=args.backend,
        )
    elif args.which == "throughput":
        from .perf import throughput_suite

        blob = throughput_suite(scale=args.scale, repeats=args.repeats)
    elif args.which == "faults":
        blob = bench.run_loss_sweep(processes=args.parallel)
    elif args.which == "resilience":
        blob = {
            "detection": bench.run_detection_sweep(),
            "recovery": bench.run_recovery_comparison(),
        }
    elif args.which == "mailbox":
        blob = bench.run_mailbox_bench(repeats=args.repeats)
    elif args.which == "conversations":
        blob = bench.run_conversations_bench(repeats=args.repeats)
    elif args.which == "service":
        blob = bench.run_service_bench(repeats=args.repeats)
    elif args.which == "scale":
        blob = bench.run_scale_bench(
            factors=args.factors, repeats=args.repeats
        )
    else:  # sweep
        blob = bench.seed_sweep_experiment().run(processes=args.parallel)
    text = json.dumps(blob, indent=2, sort_keys=True)
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_selftest(args) -> int:
    import subprocess
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    targets = [str(root / "tests")]
    for guard_name in (
        "test_obs_overhead.py",
        "test_faults_overhead.py",
        "test_resilience_overhead.py",
        "test_mailbox_overhead.py",
    ):
        guard = root / "benchmarks" / guard_name
        if guard.exists():
            targets.append(str(guard))
    command = [sys.executable, "-m", "pytest", "-q", *targets]
    print("selftest:", " ".join(command))
    return subprocess.call(command, cwd=root)


def _cmd_info(args) -> int:
    import repro
    from .netsim import DEFAULT_COSTS

    print(f"repro {repro.__version__} — reproduction of "
          "'Messages versus Messengers in Distributed Programming'")
    print()
    print("packages: des netsim mp messengers(+mcl) gvt apps bench")
    print()
    print("cost model (virtual-time charges):")
    for field_info in fields(DEFAULT_COSTS):
        value = getattr(DEFAULT_COSTS, field_info.name)
        if isinstance(value, float):
            print(f"  {field_info.name:<28} {value:g}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    shell = sub.add_parser("shell", help="interactive MESSENGERS shell")
    shell.add_argument("--hosts", type=int, default=4)
    shell.set_defaults(func=_cmd_shell)

    run = sub.add_parser("run", help="inject an MCL script file and run")
    run.add_argument("script")
    run.add_argument("args", nargs="*")
    run.add_argument("--hosts", type=int, default=4)
    run.set_defaults(func=_cmd_run)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("which", choices=["4", "5", "6", "7", "12a", "12b"])
    figure.add_argument("--full", action="store_true",
                        help="paper-scale parameter ranges")
    figure.set_defaults(func=_cmd_figure)

    stats = sub.add_parser(
        "stats",
        help="cost breakdown + Chrome trace for the Fig-4 workload",
    )
    stats.add_argument(
        "--system", choices=["messengers", "pvm"], default="messengers"
    )
    stats.add_argument("--image", type=int, default=320,
                       help="image size in pixels (default 320, Fig 4)")
    stats.add_argument("--grid", type=int, default=8,
                       help="task grid side (default 8 -> 64 blocks)")
    stats.add_argument("--procs", type=int, default=4,
                       help="worker processors (default 4)")
    stats.add_argument("--opcodes", action="store_true",
                       help="also count VM instructions per opcode")
    stats.add_argument("--trace", default="mandelbrot_trace.json",
                       help="Chrome trace output path")
    stats.set_defaults(func=_cmd_stats)

    chaos = sub.add_parser(
        "chaos",
        help="Fig-4 workload under packet loss + a worker crash",
    )
    chaos.add_argument("--seed", type=int, default=7,
                       help="fault-plan seed (default 7)")
    chaos.add_argument("--loss", type=float, default=0.05,
                       help="packet drop probability (default 0.05)")
    chaos.add_argument("--crash-host", default=None,
                       help="host to crash mid-run (default: a worker)")
    chaos.add_argument("--image", type=int, default=64,
                       help="image size in pixels (default 64)")
    chaos.add_argument("--grid", type=int, default=4,
                       help="task grid side (default 4 -> 16 blocks)")
    chaos.add_argument("--procs", type=int, default=3,
                       help="worker processors (default 3)")
    chaos.add_argument("--detect", choices=["oracle", "heartbeat", "phi"],
                       default="oracle",
                       help="recovery trigger: oracle hook (default) or a "
                            "failure detector from repro.resilience")
    chaos.add_argument("--json", action="store_true",
                       help="emit a machine-readable JSON report")
    chaos.set_defaults(func=_cmd_chaos)

    search = sub.add_parser(
        "search",
        help="search fault schedules for violations, shrink reproducers",
    )
    search.add_argument(
        "--system", choices=["messengers", "pvm"], default="messengers"
    )
    search.add_argument("--schedules", type=int, default=50,
                        help="schedule budget (default 50)")
    search.add_argument("--depth", type=int, default=2,
                        help="max atoms per DFS schedule (default 2)")
    search.add_argument("--seed", type=int, default=0,
                        help="seed for the random-restart phase")
    search.add_argument("--loss", type=float, default=0.05,
                        help="drop rate atom (default 0.05; 0 disables)")
    search.add_argument("--image", type=int, default=64,
                        help="image size in pixels (default 64)")
    search.add_argument("--grid", type=int, default=4,
                        help="task grid side (default 4 -> 16 blocks)")
    search.add_argument("--procs", type=int, default=3,
                        help="worker processors (default 3)")
    search.add_argument("--include-manager", action="store_true",
                        help="let the searcher crash host0 too (the "
                             "manager host; finds a known violation)")
    search.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report")
    search.add_argument("--out", default=None,
                        help="write the JSON report (including the "
                             "shrunk minimal FaultPlan reproducer, if "
                             "any) to this path")
    search.set_defaults(func=_cmd_search)

    bench = sub.add_parser(
        "bench",
        help="benchmark suites -> BENCH_*.json blobs",
    )
    bench.add_argument(
        "which",
        choices=[
            "perf", "throughput", "faults", "resilience", "mailbox",
            "conversations", "service", "scale", "sweep",
        ],
    )
    bench.add_argument("--factors", type=int, nargs="+", default=None,
                       help="scale: subset of grid factors to run "
                            "(default: the full 1..1000x sweep)")
    bench.add_argument("--parallel", type=int, default=1,
                       help="replication pool size (faults/sweep; "
                            "default 1 = serial)")
    bench.add_argument("--scale", type=float, default=1.0,
                       help="microbenchmark iteration scale (default 1.0)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="best-of repeats per probe (default 3)")
    bench.add_argument("--no-figures", action="store_true",
                       help="perf: skip the end-to-end figure sweeps")
    bench.add_argument("--backend", choices=["interp", "closures"],
                       default="interp",
                       help="perf: MCL backend for the headline vm "
                            "probe and figure walls (the backends "
                            "section always compares both)")
    bench.add_argument("--out", default=None,
                       help="write the JSON blob here instead of stdout")
    bench.set_defaults(func=_cmd_bench)

    selftest = sub.add_parser(
        "selftest",
        help="run the test suite + obs/faults/resilience overhead guards",
    )
    selftest.set_defaults(func=_cmd_selftest)

    info = sub.add_parser("info", help="version and cost model")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
