"""Performance experiment driver: the numbers behind ``BENCH_perf.json``.

``BASELINE`` pins what the stack measured *before* the fast path landed
(same host, same workloads — captured with the pre-optimisation kernel
at commit d15be66).  :func:`run_perf_report` re-measures everything on
the current tree and reports both sides plus the ratios.

Two kinds of "after/before" live here, with different portability:

* ``speedup_over_baseline`` divides current throughput by ``BASELINE``
  throughput.  Only meaningful on a host comparable to the one that
  captured the baseline — absolute events/sec move with the machine.
* ``current.speedup_vs_reference`` races the live kernel against the
  frozen pre-optimisation kernel (:mod:`repro.perf.slowkernel`)
  back-to-back in one process.  That ratio is host-independent, and it
  is what the CI perf-smoke guard asserts on.
"""

from __future__ import annotations

__all__ = ["BASELINE", "run_perf_report"]

#: Throughput of the pre-fast-path stack (events through the old DES
#: kernel, opcodes through the string-dispatch VM, packets through the
#: pre-__slots__ netsim) and warm wall-clock for two figure sweeps.
#: Captured by racing a ``d15be66`` worktree against this tree in
#: alternating subprocess rounds (gc flushed before every timed run,
#: best per probe kept), so both sides sampled the same machine
#: conditions.
BASELINE = {
    "captured": "pre-fast-path stack at commit d15be66",
    "microbench": {
        "des_events_per_sec": 718083.0,
        "store_events_per_sec": 681936.0,
        "vm_opcodes_per_sec": 4145544.0,
        "net_packets_per_sec": 35031.0,
    },
    "figures": {
        "fig5_warm_wall_s": 2.126,
        "fig12b_warm_wall_s": 0.627,
    },
}


def _figure_walls() -> dict:
    """Warm wall-clock of the Fig-5 and Fig-12b default sweeps.

    Each sweep runs once unmeasured (so compiled-program caches and
    numpy are warm, matching how the benchmark suite hits them) and
    once timed.
    """
    import gc
    import time

    from .mandelbrot_experiments import run_figure
    from .matmul_experiments import FIG12B_CPU_SCALE, run_block_size_sweep

    def warm_wall(fn):
        fn()
        gc.collect()
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    return {
        "fig5_warm_wall_s": warm_wall(
            lambda: run_figure(640, processor_counts=(1, 2, 8, 32))
        ),
        "fig12b_warm_wall_s": warm_wall(
            lambda: run_block_size_sweep(
                m=3,
                block_sizes=(10, 20, 50, 100, 300),
                cpu_scale=FIG12B_CPU_SCALE,
            )
        ),
    }


def run_perf_report(
    scale: float = 1.0,
    repeats: int = 3,
    figures: bool = True,
    speedup_rounds: int = 25,
    backend: str = "interp",
) -> dict:
    """Measure the current tree; return the ``BENCH_perf.json`` blob.

    ``scale`` shrinks the microbenchmark iteration counts (CI smoke
    uses a fraction); ``figures=False`` skips the two end-to-end figure
    sweeps, which dominate the runtime.  ``backend`` selects which MCL
    backend the headline ``vm_opcodes`` probe and figure walls run on
    (``"interp"`` keeps them comparable with ``BASELINE``); the
    ``current.backends`` section always races interp against closures
    back-to-back and, with ``figures=True``, measures the figure walls
    under both backends.
    """
    from ..des import MCL_BACKENDS, mcl_backend_default
    from ..perf import (
        des_speedup_vs_reference,
        throughput_suite,
        vm_backend_speedup,
        vm_opcode_throughput,
    )

    if backend not in MCL_BACKENDS:
        raise ValueError(
            f"unknown MCL backend {backend!r}; expected one of "
            f"{MCL_BACKENDS}"
        )
    vm_n = max(500, int(20_000 * scale))
    suite = throughput_suite(scale=scale, repeats=repeats)
    if backend != "interp":
        suite["vm_opcodes"] = vm_opcode_throughput(
            vm_n, repeats, backend=backend
        )
    comparison = vm_backend_speedup(
        n=vm_n, rounds=max(3, speedup_rounds // 2)
    )
    current: dict = {
        "mcl_backend": backend,
        "microbench": {
            "des_events_per_sec": suite["des_events"]["per_sec"],
            "store_events_per_sec": suite["store_events"]["per_sec"],
            "vm_opcodes_per_sec": suite["vm_opcodes"]["per_sec"],
            "net_packets_per_sec": suite["net_packets"]["per_sec"],
        },
        "microbench_detail": suite,
        "speedup_vs_reference": {
            "chain": des_speedup_vs_reference(rounds=speedup_rounds),
            "mixed": des_speedup_vs_reference(
                rounds=speedup_rounds, workload="mixed"
            ),
        },
        "backends": {
            "selected": backend,
            "vm": comparison,
            "closures_speedup": comparison["speedup"],
        },
    }
    over_baseline = {
        key: current["microbench"][key] / BASELINE["microbench"][key]
        for key in BASELINE["microbench"]
    }
    if figures:
        with mcl_backend_default(backend):
            walls = _figure_walls()
        current["figures"] = walls
        over_baseline.update(
            {
                key: BASELINE["figures"][key] / walls[key]
                for key in BASELINE["figures"]
            }
        )
        other = "closures" if backend == "interp" else "interp"
        with mcl_backend_default(other):
            other_walls = _figure_walls()
        current["backends"]["figures"] = {
            backend: walls,
            other: other_walls,
        }
    return {
        "baseline": BASELINE,
        "current": current,
        "speedup_over_baseline": over_baseline,
    }
