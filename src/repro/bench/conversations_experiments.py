"""Conversations experiment driver: ``BENCH_conversations.json``.

Long saga chains with compensation over *replicated* mailboxes — the
workload the ROADMAP's "long-lived conversation workloads" item asks
for.  Three scenarios drive the same deterministic chain harness
through the typed-config facade:

* ``baseline`` — replication factor 2, no faults: every chain
  completes, replicas converge continuously, and the gossip counters
  give the steady-state anti-entropy overhead.
* ``partition`` — the cluster is split down the middle for a fixed
  window.  Each side has its own coordinator driving same-side chains
  (both sides keep accepting quorum-acked mail — the per-side goodput
  numbers), cross-side chains stall and compensate at the deadline,
  and after ``heal`` the replicas converge within a bounded time
  (``convergence_time_s``).
* ``gossip_churn`` — factor 3 with a broadcast fan-out, a host join, a
  graceful leave, and a crash/restart mid-run: anti-entropy and
  replica promotion under membership change.

The simulated side (chain outcomes, goodput splits, convergence time,
lifecycle digests, gossip counters) is bit-identical for a given seed
on any host — the CI guard asserts it matches ``BASELINE`` exactly.
``conv_ops_per_sec`` is wall-clock and moves with the machine; the
guard allows 25% regression, same contract as the other perf suites.
"""

from __future__ import annotations

__all__ = [
    "BASELINE",
    "run_conversations_bench",
    "run_conversations_scenario",
]

#: Scenario knobs, in report order.
SCENARIOS = {
    "baseline": {},
    "partition": {"partition": True},
    "gossip_churn": {"churn": True, "factor": 3},
}

N_HOSTS = 4
N_CHAINS = 6
CHAIN_LEN = 4
CHAIN_SPACING_S = 0.004
POLL_INTERVAL_S = 0.01
SEED = 13

PARTITION_AT_S = 0.05
HEAL_AT_S = 0.45
COMPENSATE_AT_S = 0.3
BCAST_AT_S = 0.08
JOIN_AT_S = 0.06
LEAVE_AT_S = 0.12
CRASH_AT_S = 0.09
RESTART_AT_S = 0.2

#: What the replication layer measured when the committed
#: ``BENCH_conversations.json`` was captured.  The ``scenarios`` side
#: is simulated and must reproduce bit-identically on any host; the
#: ``conv_ops_per_sec`` side is wall-clock on the capture machine.
BASELINE = {
    "captured": "replication layer at introduction (v1.5.0)",
    "conv_ops_per_sec": 6423.2,
    "scenarios": {
        "baseline": {
            "chains": {"completed": 6},
            "compensated_work_items": 0,
            "delivered": 48,
            "lifecycle_digest":
                "6eb49d83a1c02092e266d1c89e1edf8d6bafa6de",
            "read_digest":
                "2b91ac71fd5d826eed98685d7d83bc5f8db07023",
            "replicas_converged": True,
            "makespan_s": 0.3,
            "pending_at_quiescence": 0,
        },
        "partition": {
            "chains": {"compensated": 4, "completed": 2},
            "compensated_work_items": 4,
            "convergence_time_s": 0.118414542,
            "delivered": 36,
            "goodput_during_partition": {"a": 7, "b": 11},
            "lifecycle_digest":
                "fed635b7189ffa46231fad7e8c54d397fc689943",
            "read_digest":
                "5e4aada55701acfe498bcd904d608827b7c7c802",
            "replicas_converged": True,
            "makespan_s": 2.043080266,
            "pending_at_quiescence": 0,
        },
        "gossip_churn": {
            "chains": {"completed": 6},
            "compensated_work_items": 0,
            "delivered": 53,
            "lifecycle_digest":
                "b16b380735d811b6bfd28e6f6e0151f925ba5973",
            "read_digest":
                "98f0cc45bd721f625f2f583cbf961d40a2ec30a1",
            "replicas_converged": True,
            "makespan_s": 0.3,
            "pending_at_quiescence": 0,
        },
    },
}


class _ChainHarness:
    """Saga chains with compensation over one cluster.

    Each chain is a conversation: the coordinator requests step 0 from
    its first participant, every reply triggers the next step's
    request, and a chain that has not completed by the compensation
    deadline sends a ``compensate`` mail to every participant that
    already did work (undoing it) and stops issuing new steps.

    ``participants`` is the coordinator's routing preference — its own
    side's participants first.  Chains with ``chain_id % 3 == 0`` are
    *pinned* to the first two (same-side) participants; the rest
    rotate over all four and straddle any partition.
    """

    def __init__(self, cluster, coordinator: str, participants: list,
                 chain_ids) -> None:
        self.cluster = cluster
        self.coordinator = coordinator
        self.participants = participants
        self.chains = {
            chain_id: {"step": 0, "done": [], "state": "running"}
            for chain_id in chain_ids
        }
        cluster.consumer(coordinator, self._on_reply)

    def _participant_for(self, chain_id: int, step: int) -> str:
        pool = (
            self.participants[:2]
            if chain_id % 3 == 0
            else self.participants
        )
        return pool[(chain_id + step) % len(pool)]

    def start_chain(self, chain_id: int) -> None:
        self._request_step(chain_id, 0)

    def _request_step(self, chain_id: int, step: int) -> None:
        target = self._participant_for(chain_id, step)
        self.cluster.mail.request(
            target,
            {"chain": chain_id, "step": step},
            subject="step",
            frm=self.coordinator,
        )

    def _on_reply(self, mail) -> None:
        if mail.subject.startswith("re:") is False:
            return
        chain = self.chains.get(mail.body["chain"])
        if chain is None or chain["state"] != "running":
            return
        chain["done"].append(mail.body["step"])
        chain["step"] += 1
        if chain["step"] >= CHAIN_LEN:
            chain["state"] = "completed"
        else:
            self._request_step(mail.body["chain"], chain["step"])

    def compensate_stalled(self) -> None:
        """Deadline sweep: every still-running chain rolls back."""
        for chain_id in sorted(self.chains):
            chain = self.chains[chain_id]
            if chain["state"] != "running":
                continue
            chain["state"] = "compensated"
            for step in chain["done"]:
                self.cluster.send_mail(
                    self._participant_for(chain_id, step),
                    {"chain": chain_id, "undo": step},
                    subject="compensate",
                    frm=self.coordinator,
                )

    def outcomes(self) -> dict:
        states = sorted(c["state"] for c in self.chains.values())
        return {
            state: states.count(state) for state in dict.fromkeys(states)
        }


def _side_of(daemon: str) -> str:
    """Which partition side a daemon is on (hosts 0/1 vs 2/3)."""
    return "a" if daemon in ("host0", "host1") else "b"


def run_conversations_scenario(
    partition: bool = False,
    churn: bool = False,
    factor: int = 2,
    seed: int = SEED,
) -> dict:
    """One deterministic conversations workload; simulated metrics.

    Two coordinators (one per prospective partition side) drive
    ``N_CHAINS`` chains each of ``CHAIN_LEN`` steps over four
    participants.  With ``partition`` the cluster splits down the
    middle for ``[PARTITION_AT_S, HEAL_AT_S)``: chain steps whose
    participants sit across the cut stall and compensate, same-side
    chains keep completing quorum-acked writes.  With ``churn`` a host
    joins, ``host1`` retires gracefully, ``host2`` crashes and
    restarts, and a broadcast fans out mid-run.
    """
    from .. import Cluster, ClusterConfig, MailboxConfig
    from ..faults import FaultPlan
    from ..replication import ReplicationConfig

    plan = None
    if partition:
        plan = FaultPlan()
        for a in ("host0", "host1"):
            for b in ("host2", "host3"):
                plan.partition(a, b, at=PARTITION_AT_S)
                plan.heal(a, b, at=HEAL_AT_S)
    if churn:
        plan = plan or FaultPlan()
        plan.crash("host2", at=CRASH_AT_S)
        plan.restart("host2", at=RESTART_AT_S)
    c = Cluster(config=ClusterConfig(
        n_hosts=N_HOSTS,
        mailbox=MailboxConfig(
            poll_interval_s=POLL_INTERVAL_S,
            replication=ReplicationConfig(factor=factor),
        ),
        faults=plan,
        seed=seed,
    ))

    participants = []
    compensated_work = []
    for index in range(N_HOSTS):
        name = f"part{index}"
        participants.append(name)
        c.add_node(name, daemon=f"host{index}")

    def participant_handler(mail):
        if mail.subject == "step":
            c.mail.reply(mail, dict(mail.body))
        elif mail.subject == "compensate":
            compensated_work.append(
                (mail.body["chain"], mail.body["undo"])
            )

    for name in participants:
        c.consumer(name, participant_handler)

    harnesses = []
    for coord, daemon, order, chain_ids in (
        ("coord_a", "host0", ["part0", "part1", "part2", "part3"],
         range(0, N_CHAINS // 2)),
        ("coord_b", "host2", ["part2", "part3", "part0", "part1"],
         range(N_CHAINS // 2, N_CHAINS)),
    ):
        c.add_node(coord, daemon=daemon)
        harnesses.append(_ChainHarness(c, coord, order, chain_ids))

    for harness in harnesses:
        for offset, chain_id in enumerate(sorted(harness.chains)):
            c.schedule(
                (offset + 1) * CHAIN_SPACING_S
                + (PARTITION_AT_S + 0.01 if partition else 0.0),
                lambda cl, h=harness, cid=chain_id: h.start_chain(cid),
            )
    c.schedule(
        COMPENSATE_AT_S,
        lambda cl: [h.compensate_stalled() for h in harnesses],
    )
    if churn:
        c.schedule(JOIN_AT_S, lambda cl: cl.join_host())
        c.schedule(LEAVE_AT_S, lambda cl: cl.leave_host("host1"))
        c.schedule(
            BCAST_AT_S,
            lambda cl: cl.broadcast("round", frm="coord_a"),
        )
    c.run_to_quiescence()

    service = c.mail
    repl = service.replication
    goodput = {"a": 0, "b": 0}
    if partition:
        for mail_id, when in sorted(repl.quorum_times.items()):
            if PARTITION_AT_S <= when < HEAL_AT_S:
                mail = repl._mail_records.get(mail_id)
                if mail is not None:
                    goodput[_side_of(mail.origin)] += 1
    replica_digests_equal = all(
        len(set(repl.digests(uid).values())) == 1
        for uid in sorted(repl._sets)
    )
    outcomes: dict = {}
    for harness in harnesses:
        for state, count in harness.outcomes().items():
            outcomes[state] = outcomes.get(state, 0) + count
    result = {
        "chains": outcomes,
        "compensated_work_items": len(compensated_work),
        "delivered": service.counts.get("delivered", 0),
        "read_digest": service.read_digest(),
        "lifecycle_digest": service.lifecycle_digest(),
        "replicas_converged": replica_digests_equal,
        "makespan_s": round(c.now, 9),
        "mail_counts": dict(sorted(service.counts.items())),
        "replication": {
            key: value
            for key, value in sorted(repl.counts.items())
        },
        "pending_at_quiescence": len(service._pending),
    }
    if partition:
        result["goodput_during_partition"] = goodput
        result["convergence_time_s"] = (
            round(repl.converged_s - HEAL_AT_S, 9)
            if repl.converged_s is not None
            and repl.converged_s >= HEAL_AT_S
            else 0.0
        )
    return result


def run_conversations_bench(repeats: int = 3) -> dict:
    """Measure all scenarios; the ``BENCH_conversations.json`` blob.

    Each scenario runs ``repeats`` times; the simulated side is
    asserted identical across repeats (it cannot legally vary) and the
    minimum wall clock is kept.
    """
    import gc
    import time

    scenarios: dict[str, dict] = {}
    total_ops = 0
    total_wall = 0.0
    for name, knobs in SCENARIOS.items():
        best_wall = float("inf")
        result = None
        for _ in range(max(1, repeats)):
            gc.collect()
            start = time.perf_counter()
            run = run_conversations_scenario(**knobs)
            wall = time.perf_counter() - start
            best_wall = min(best_wall, wall)
            if result is not None and run != result:
                raise AssertionError(
                    f"conversations scenario {name!r} was not "
                    "deterministic across repeats"
                )
            result = run
        result["wall_s"] = round(best_wall, 6)
        scenarios[name] = result
        total_ops += result["delivered"] + result["mail_counts"].get(
            "read", 0
        )
        total_wall += best_wall

    conv_ops_per_sec = (
        round(total_ops / total_wall, 1) if total_wall else 0.0
    )
    identical = all(
        all(
            scenarios[name][key] == value
            for key, value in expected.items()
            if key != "wall_s"
        )
        for name, expected in BASELINE["scenarios"].items()
    )
    return {
        "baseline": BASELINE,
        "current": {
            "scenarios": scenarios,
            "conv_ops_per_sec": conv_ops_per_sec,
        },
        "vs_baseline": {
            "conv_ops_ratio": round(
                conv_ops_per_sec / BASELINE["conv_ops_per_sec"], 4
            ) if BASELINE["conv_ops_per_sec"] else 1.0,
            "simulated_identical": identical,
        },
    }
